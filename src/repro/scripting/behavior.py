"""Behavior trees for character AI.

Behavior trees are the dominant data-driven AI formalism in games: a tree
of composites (sequence/selector/parallel), decorators, and leaves
(conditions/actions) ticked every frame (or every Nth).  They are a
natural fit for the content pipeline — designers author them as data —
and :func:`tree_from_dict` loads exactly that representation, which the
content package validates.

Statuses follow the standard trichotomy: SUCCESS, FAILURE, RUNNING.
RUNNING memory in composites resumes the in-flight child next tick.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Iterable

from repro.errors import ScriptError


class Status(Enum):
    """Result of ticking a behavior node."""

    SUCCESS = "success"
    FAILURE = "failure"
    RUNNING = "running"


class Blackboard:
    """Per-agent key/value memory shared across the tree."""

    def __init__(self, entity_id: int | None = None):
        self.entity_id = entity_id
        self._data: dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        """Read a key with a default."""
        return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        """Write a key."""
        self._data[key] = value

    def clear(self, key: str) -> None:
        """Delete a key if present."""
        self._data.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._data


class BehaviorNode:
    """Base class; subclasses implement :meth:`tick`."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.ticks = 0

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        """Advance this node one tick."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear RUNNING memory (recursively for composites)."""


class Action(BehaviorNode):
    """Leaf running ``fn(world, blackboard) -> Status | bool | None``.

    ``True``/``None`` map to SUCCESS, ``False`` to FAILURE, so simple
    callbacks stay simple.
    """

    def __init__(self, name: str, fn: Callable[[Any, Blackboard], Any]):
        super().__init__(name)
        self.fn = fn

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        result = self.fn(world, blackboard)
        if isinstance(result, Status):
            return result
        if result is False:
            return Status.FAILURE
        return Status.SUCCESS


class Condition(BehaviorNode):
    """Leaf checking ``fn(world, blackboard) -> bool``."""

    def __init__(self, name: str, fn: Callable[[Any, Blackboard], bool]):
        super().__init__(name)
        self.fn = fn

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        return Status.SUCCESS if self.fn(world, blackboard) else Status.FAILURE


class Sequence(BehaviorNode):
    """Run children in order; fail fast; remember the RUNNING child."""

    def __init__(self, children: Iterable[BehaviorNode], name: str = "Sequence"):
        super().__init__(name)
        self.children = list(children)
        self._current = 0

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        while self._current < len(self.children):
            status = self.children[self._current].tick(world, blackboard)
            if status == Status.RUNNING:
                return Status.RUNNING
            if status == Status.FAILURE:
                self.reset()
                return Status.FAILURE
            self._current += 1
        self.reset()
        return Status.SUCCESS

    def reset(self) -> None:
        self._current = 0
        for child in self.children:
            child.reset()


class Selector(BehaviorNode):
    """Run children in order until one succeeds; remember RUNNING child."""

    def __init__(self, children: Iterable[BehaviorNode], name: str = "Selector"):
        super().__init__(name)
        self.children = list(children)
        self._current = 0

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        while self._current < len(self.children):
            status = self.children[self._current].tick(world, blackboard)
            if status == Status.RUNNING:
                return Status.RUNNING
            if status == Status.SUCCESS:
                self.reset()
                return Status.SUCCESS
            self._current += 1
        self.reset()
        return Status.FAILURE

    def reset(self) -> None:
        self._current = 0
        for child in self.children:
            child.reset()


class Inverter(BehaviorNode):
    """Decorator flipping SUCCESS and FAILURE (RUNNING passes through)."""

    def __init__(self, child: BehaviorNode, name: str = "Inverter"):
        super().__init__(name)
        self.child = child

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        status = self.child.tick(world, blackboard)
        if status == Status.SUCCESS:
            return Status.FAILURE
        if status == Status.FAILURE:
            return Status.SUCCESS
        return Status.RUNNING

    def reset(self) -> None:
        self.child.reset()


class Repeat(BehaviorNode):
    """Decorator re-running its child up to ``times`` successes per tick
    sequence; RUNNING suspends, FAILURE aborts."""

    def __init__(self, child: BehaviorNode, times: int, name: str = "Repeat"):
        super().__init__(name)
        if times < 1:
            raise ScriptError("Repeat times must be >= 1")
        self.child = child
        self.times = times
        self._done = 0

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        while self._done < self.times:
            status = self.child.tick(world, blackboard)
            if status == Status.RUNNING:
                return Status.RUNNING
            if status == Status.FAILURE:
                self._done = 0
                return Status.FAILURE
            self._done += 1
        self._done = 0
        return Status.SUCCESS

    def reset(self) -> None:
        self._done = 0
        self.child.reset()


class Succeeder(BehaviorNode):
    """Decorator that always reports SUCCESS (unless RUNNING)."""

    def __init__(self, child: BehaviorNode, name: str = "Succeeder"):
        super().__init__(name)
        self.child = child

    def tick(self, world: Any, blackboard: Blackboard) -> Status:
        self.ticks += 1
        status = self.child.tick(world, blackboard)
        return Status.RUNNING if status == Status.RUNNING else Status.SUCCESS

    def reset(self) -> None:
        self.child.reset()


class BehaviorTree:
    """A root node plus per-agent blackboard management."""

    def __init__(self, root: BehaviorNode, name: str = "tree"):
        self.root = root
        self.name = name
        self._blackboards: dict[int, Blackboard] = {}

    def blackboard_for(self, entity_id: int) -> Blackboard:
        """The (lazily created) blackboard of one agent."""
        bb = self._blackboards.get(entity_id)
        if bb is None:
            bb = Blackboard(entity_id)
            self._blackboards[entity_id] = bb
        return bb

    def tick_entity(self, world: Any, entity_id: int) -> Status:
        """Tick the tree for one agent."""
        return self.root.tick(world, self.blackboard_for(entity_id))

    def forget(self, entity_id: int) -> None:
        """Drop an agent's blackboard (on despawn)."""
        self._blackboards.pop(entity_id, None)


def tree_from_dict(
    spec: dict, leaves: dict[str, Callable[..., Any]]
) -> BehaviorTree:
    """Build a tree from the data-driven dict representation.

    ``spec`` format (what the content pipeline produces)::

        {"type": "selector", "children": [
            {"type": "sequence", "children": [
                {"type": "condition", "name": "enemy_near"},
                {"type": "action", "name": "attack"}]},
            {"type": "action", "name": "wander"}]}

    ``leaves`` maps condition/action names to python callables.
    """

    def build(node: dict) -> BehaviorNode:
        ntype = node.get("type")
        if ntype in ("sequence", "selector"):
            children = [build(c) for c in node.get("children", [])]
            if not children:
                raise ScriptError(f"{ntype} node needs children")
            cls = Sequence if ntype == "sequence" else Selector
            return cls(children, name=node.get("name", ntype))
        if ntype in ("action", "condition"):
            name = node.get("name")
            if name not in leaves:
                raise ScriptError(f"unknown leaf {name!r}")
            cls2 = Action if ntype == "action" else Condition
            return cls2(name, leaves[name])
        if ntype == "inverter":
            return Inverter(build(node["child"]))
        if ntype == "succeeder":
            return Succeeder(build(node["child"]))
        if ntype == "repeat":
            return Repeat(build(node["child"]), int(node.get("times", 1)))
        raise ScriptError(f"unknown behavior node type {ntype!r}")

    return BehaviorTree(build(spec), name=spec.get("name", "tree"))
