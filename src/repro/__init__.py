"""repro — database-style data management for computer games.

A full reproduction of the system landscape described in *Database
Research in Computer Games* (Demers, Gehrke, Koch, Sowell, White —
SIGMOD 2009 tutorial): a declarative, indexed, transactional in-memory
game database with a scripting language, content pipeline, spatial
substrate, MMO consistency machinery, network simulation, and a
persistence/checkpointing tier.

Quickstart::

    from repro import GameWorld, schema, F

    world = GameWorld()
    world.catalog.define(schema("Position", x="float", y="float"))
    world.catalog.define(schema("Health", hp=("int", 100)))
    eid = world.spawn(Position={"x": 1.0, "y": 2.0}, Health={})
    hurt = world.query("Health").where("Health", F.hp < 50).execute().ids
"""

from repro.cluster import (
    BubbleAwarePlacement,
    ClusterCoordinator,
    ClusterStats,
    DynamicRebalancer,
    ShardHost,
    ShardStats,
    StaticGridPlacement,
)
from repro.core import (
    F,
    GameWorld,
    ComponentSchema,
    FieldDef,
    ResultSet,
    SystemSpec,
    schema,
    system,
)
from repro.errors import ClusterError, ObsError, ReplicationError, ReproError
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Observability,
    StatsRow,
    Tracer,
)
from repro.parallel import (
    EffectBuffer,
    ParallelTickExecutor,
    ProcessShardExecutor,
    build_tick_plan,
)
from repro.replication import (
    ReplicatedClusterCoordinator,
    ReplicatedShardHost,
    ReplicaHost,
)

__version__ = "1.0.0"

__all__ = [
    "F",
    "GameWorld",
    "ComponentSchema",
    "FieldDef",
    "ResultSet",
    "SystemSpec",
    "schema",
    "system",
    "EffectBuffer",
    "ParallelTickExecutor",
    "ProcessShardExecutor",
    "build_tick_plan",
    "StatsRow",
    "BubbleAwarePlacement",
    "ClusterCoordinator",
    "ClusterStats",
    "DynamicRebalancer",
    "ShardHost",
    "ShardStats",
    "StaticGridPlacement",
    "ReplicatedClusterCoordinator",
    "ReplicatedShardHost",
    "ReplicaHost",
    "FlightRecorder",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "ClusterError",
    "ObsError",
    "ReplicationError",
    "ReproError",
    "__version__",
]
