"""Schema migrations for live game databases.

    "Schema migrations on a live system can be very painful for game
    developers. … Until game developers have better migration tools,
    they constantly have to balance database support with sustainability."

This module is that better tool, scaled down.  A :class:`Migration` is a
list of declarative steps (add/drop/rename column, transform); a
:class:`MigrationRunner` applies chains of them to structured tables in
two modes:

* **offline** — rewrite every row while the table is locked; downtime is
  proportional to row count (the painful status quo); and
* **online** — dual-version reads with background backfill in bounded
  batches per tick; writes stay available, at the cost of version checks
  per access.

Both report a :class:`MigrationReport` with downtime ticks and rows
rewritten, which experiment E9 compares against the blob approach (zero
migration, per-read upgrade cost instead).

The step vocabulary itself lives in :mod:`repro.schema.steps` and is
shared with the live-world schema catalog (E22): E9's persistence tables
and E22's ticking component tables speak one migration language.  The
names re-exported here (``AddColumn`` etc.) are the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import MigrationError, SchemaError
from repro.schema.steps import (  # noqa: F401  (re-exported vocabulary)
    AddColumn,
    DropColumn,
    RenameColumn,
    RetypeColumn,
    SplitColumn,
    Step,
    TransformColumn,
    apply_steps_to_row,
)


@dataclass(frozen=True)
class Migration:
    """One schema version bump: steps taking version v to v+1."""

    from_version: int
    steps: tuple[Step, ...]
    description: str = ""

    def apply_to_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Run every step over one row, returning the new row."""
        try:
            return apply_steps_to_row(self.steps, row)
        except SchemaError as exc:
            raise MigrationError(str(exc)) from None


@dataclass
class MigrationReport:
    """Cost accounting for one migration run."""

    mode: str
    from_version: int
    to_version: int
    rows_rewritten: int = 0
    downtime_ticks: int = 0
    background_ticks: int = 0


class VersionedTable:
    """A table whose rows each carry a schema version.

    This is the structured-columns side of E9; the blob side lives in
    :mod:`repro.persistence.blob`.
    """

    def __init__(self, name: str, version: int = 1):
        self.name = name
        self.version = version
        self._rows: dict[Any, dict[str, Any]] = {}
        self._row_version: dict[Any, int] = {}
        self.reads = 0
        self.writes = 0

    def put(self, key: Any, row: Mapping[str, Any]) -> None:
        """Write a row at the current schema version."""
        self._rows[key] = dict(row)
        self._row_version[key] = self.version
        self.writes += 1

    def get(self, key: Any) -> dict[str, Any]:
        """Read a row (must already be at the current version in offline
        mode; online mode upgrades through the runner)."""
        self.reads += 1
        try:
            return dict(self._rows[key])
        except KeyError:
            raise MigrationError(f"{self.name}: no row {key!r}") from None

    def keys(self) -> list[Any]:
        return sorted(self._rows, key=repr)

    def row_version(self, key: Any) -> int:
        return self._row_version.get(key, self.version)

    def __len__(self) -> int:
        return len(self._rows)


class MigrationRunner:
    """Applies migration chains to :class:`VersionedTable` objects."""

    def __init__(self) -> None:
        self._migrations: dict[int, Migration] = {}

    def register(self, migration: Migration) -> None:
        """Register the migration from ``migration.from_version``."""
        if migration.from_version in self._migrations:
            raise MigrationError(
                f"migration from v{migration.from_version} already registered"
            )
        self._migrations[migration.from_version] = migration

    def chain(self, from_version: int, to_version: int) -> list[Migration]:
        """The migration chain between two versions (validates gaps)."""
        if to_version < from_version:
            raise MigrationError("downgrades are not supported")
        chain = []
        v = from_version
        while v < to_version:
            m = self._migrations.get(v)
            if m is None:
                raise MigrationError(f"no migration registered from v{v}")
            chain.append(m)
            v += 1
        return chain

    # -- offline -----------------------------------------------------------------------

    def migrate_offline(
        self, table: VersionedTable, to_version: int
    ) -> MigrationReport:
        """Lock the table, rewrite every row.  Downtime = rows rewritten.

        One simulated downtime tick per row rewritten per version step —
        the linear cost that makes 10-million-character tables scary.
        """
        chain = self.chain(table.version, to_version)
        report = MigrationReport(
            "offline", table.version, to_version
        )
        for migration in chain:
            for key in table.keys():
                table._rows[key] = migration.apply_to_row(table._rows[key])
                table._row_version[key] = migration.from_version + 1
                report.rows_rewritten += 1
                report.downtime_ticks += 1
        table.version = to_version
        return report

    # -- online ------------------------------------------------------------------------

    def start_online(
        self, table: VersionedTable, to_version: int, batch_size: int = 64
    ) -> "OnlineMigration":
        """Begin an online migration; drive it with :meth:`OnlineMigration.tick`."""
        self.chain(table.version, to_version)  # validate up front
        return OnlineMigration(self, table, to_version, batch_size)

    def upgrade_row(
        self, row: dict[str, Any], from_version: int, to_version: int
    ) -> dict[str, Any]:
        """Apply the chain to a single row (read-path upgrades)."""
        for migration in self.chain(from_version, to_version):
            row = migration.apply_to_row(row)
        return row


class OnlineMigration:
    """An in-flight online migration: dual-version reads + backfill."""

    def __init__(
        self,
        runner: MigrationRunner,
        table: VersionedTable,
        to_version: int,
        batch_size: int,
    ):
        if batch_size < 1:
            raise MigrationError("batch_size must be >= 1")
        self.runner = runner
        self.table = table
        self.to_version = to_version
        self.batch_size = batch_size
        self.report = MigrationReport("online", table.version, to_version)
        self._pending = [
            key
            for key in table.keys()
            if table.row_version(key) < to_version
        ]
        # Writes from now on land at the target version.
        table.version = to_version

    @property
    def done(self) -> bool:
        """Whether the backfill has finished."""
        return not self._pending

    def tick(self) -> int:
        """Backfill one batch; returns rows upgraded this tick."""
        if not self._pending:
            return 0
        self.report.background_ticks += 1
        batch = self._pending[: self.batch_size]
        self._pending = self._pending[self.batch_size:]
        for key in batch:
            self._upgrade_in_place(key)
        return len(batch)

    def read(self, key: Any) -> dict[str, Any]:
        """Version-aware read: upgrades the row on access if needed."""
        if self.table.row_version(key) < self.to_version:
            self._upgrade_in_place(key)
            if key in self._pending:
                self._pending.remove(key)
        return self.table.get(key)

    def _upgrade_in_place(self, key: Any) -> None:
        from_v = self.table.row_version(key)
        row = self.runner.upgrade_row(
            dict(self.table._rows[key]), from_v, self.to_version
        )
        self.table._rows[key] = row
        self.table._row_version[key] = self.to_version
        self.report.rows_rewritten += 1
