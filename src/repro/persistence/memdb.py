"""The in-memory database layer between the game and the backing store.

    "Most games have an in-memory database layer that processes all
    actions, and only writes to the database periodically."

:class:`InMemoryGameDB` is that layer: named tables of records keyed by
id, every mutation journaled to the WAL *before* it is applied
(write-ahead), importance-tagged actions feeding the intelligent
checkpointer, and snapshot/restore hooks the checkpoint manager drives.

Actions are the unit of journaling — a named mutation with a table, key,
and field updates — because recovery semantics in games are phrased in
player actions ("lost the boss kill"), not row images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import PersistenceError
from repro.persistence.wal import WriteAheadLog


@dataclass(frozen=True)
class Action:
    """One journaled game action.

    ``op`` is ``put`` (upsert fields), ``delete``, or ``set_row``
    (replace the whole row).  ``importance`` ∈ [0, 1] is the designer
    weight the intelligent checkpointer accumulates.
    """

    op: str
    table: str
    key: int | str
    fields: dict[str, Any] | None = None
    importance: float = 0.0
    tick: int = 0

    def to_payload(self) -> dict[str, Any]:
        """Encode for the WAL."""
        return {
            "op": self.op,
            "t": self.table,
            "k": self.key,
            "f": self.fields,
            "i": self.importance,
            "tick": self.tick,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Action":
        """Decode from a WAL record payload."""
        return cls(
            op=payload["op"],
            table=payload["t"],
            key=payload["k"],
            fields=payload["f"],
            importance=payload.get("i", 0.0),
            tick=payload.get("tick", 0),
        )


class InMemoryGameDB:
    """Journaled in-memory tables.

    All mutation goes through :meth:`apply`, which journals first and
    mutates second — so a crash can lose *recent* actions (bounded by the
    WAL flush policy) but can never apply an unjournaled one.
    """

    def __init__(self, wal: WriteAheadLog):
        self.wal = wal
        self._tables: dict[str, dict[Any, dict[str, Any]]] = {}
        self.actions_applied = 0
        self.applied_lsn = 0

    # -- schema-ish ------------------------------------------------------------------

    def create_table(self, name: str) -> None:
        """Create an empty table (idempotent)."""
        self._tables.setdefault(name, {})

    def tables(self) -> list[str]:
        """All table names."""
        return sorted(self._tables)

    # -- mutation ----------------------------------------------------------------------

    def apply(self, action: Action) -> int:
        """Journal then apply one action; returns its LSN."""
        if action.table not in self._tables:
            raise PersistenceError(f"no table {action.table!r}")
        lsn = self.wal.append(action.to_payload())
        self._apply_unlogged(action)
        self.applied_lsn = lsn
        return lsn

    def put(
        self,
        table: str,
        key: Any,
        fields: Mapping[str, Any],
        importance: float = 0.0,
        tick: int = 0,
    ) -> int:
        """Upsert fields into a row (journaled)."""
        return self.apply(
            Action("put", table, key, dict(fields), importance, tick)
        )

    def delete(self, table: str, key: Any, importance: float = 0.0, tick: int = 0) -> int:
        """Delete a row (journaled)."""
        return self.apply(Action("delete", table, key, None, importance, tick))

    def _apply_unlogged(self, action: Action) -> None:
        table = self._tables[action.table]
        if action.op == "put":
            row = table.setdefault(action.key, {})
            row.update(action.fields or {})
        elif action.op == "set_row":
            table[action.key] = dict(action.fields or {})
        elif action.op == "delete":
            table.pop(action.key, None)
        else:
            raise PersistenceError(f"unknown action op {action.op!r}")
        self.actions_applied += 1

    # -- reads ------------------------------------------------------------------------------

    def get(self, table: str, key: Any) -> dict[str, Any] | None:
        """Row copy, or None."""
        t = self._tables.get(table)
        if t is None:
            raise PersistenceError(f"no table {table!r}")
        row = t.get(key)
        return dict(row) if row is not None else None

    def keys(self, table: str) -> list[Any]:
        """All keys of a table."""
        t = self._tables.get(table)
        if t is None:
            raise PersistenceError(f"no table {table!r}")
        return sorted(t, key=repr)

    def rows(self, table: str) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Iterate (key, row copy)."""
        t = self._tables.get(table)
        if t is None:
            raise PersistenceError(f"no table {table!r}")
        for key in list(t):
            yield key, dict(t[key])

    def row_count(self, table: str | None = None) -> int:
        """Row count for one table or all."""
        if table is not None:
            return len(self._tables.get(table, {}))
        return sum(len(t) for t in self._tables.values())

    # -- snapshot / restore --------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Full-state snapshot for checkpointing.

        Tables are encoded as ``[key, row]`` pair lists rather than dicts
        so JSON-encoding checkpoint stores preserve integer keys.
        """
        return {
            "tables": {
                name: [[k, dict(row)] for k, row in t.items()]
                for name, t in self._tables.items()
            },
            "applied_lsn": self.applied_lsn,
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replace all state from a snapshot."""
        self._tables = {
            name: {k: dict(row) for k, row in pairs}
            for name, pairs in snapshot["tables"].items()
        }
        self.applied_lsn = snapshot.get("applied_lsn", 0)

    def replay(self, actions: Iterable[Action]) -> int:
        """Apply recovered actions without re-journaling; returns count."""
        n = 0
        for action in actions:
            if action.table not in self._tables:
                self._tables[action.table] = {}
            self._apply_unlogged(action)
            n += 1
        return n
