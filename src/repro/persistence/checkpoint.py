"""Checkpoint policies: interval vs intelligent (event-driven) vs hybrid.

    "In some games, these checkpoints can be as far as 10 minutes apart.
    Recoveries may force a player to repeat a difficult fight or lose a
    particularly desirable reward.  As a result, games need ways to
    checkpoint intelligently, writing to the database when important
    events are completed, and not just at regular intervals."

A :class:`CheckpointPolicy` decides, per action, whether to checkpoint
now.  Three policies:

* :class:`IntervalPolicy` — the status quo: every N ticks.
* :class:`EventDrivenPolicy` — the tutorial's proposal: checkpoint when
  accumulated action *importance* crosses a threshold (boss kill, epic
  drop) or a safety interval expires.
* :class:`HybridPolicy` — importance-triggered plus the interval backstop
  (what you would actually deploy).

:class:`CheckpointManager` wires a policy to the in-memory DB, a backing
store, and the WAL (snapshot → durable store → truncate log).
Experiment E8 measures lost work at crash time under each policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from repro.errors import PersistenceError
from repro.persistence.memdb import Action, InMemoryGameDB


class BackingStore(Protocol):
    """Anything that can hold checkpoints durably (SQL bridge, snapshot store)."""

    def store_checkpoint(self, snapshot: Mapping[str, Any]) -> int:
        """Persist a snapshot; returns bytes written."""
        ...

    def load_checkpoint(self) -> dict[str, Any] | None:
        """Latest persisted snapshot, or None."""
        ...


class SnapshotStore:
    """Minimal durable checkpoint store (JSON-encoded, size-accounted)."""

    def __init__(self) -> None:
        self._latest: str | None = None
        self.checkpoints_stored = 0
        self.bytes_written = 0

    def store_checkpoint(self, snapshot: Mapping[str, Any]) -> int:
        encoded = json.dumps(snapshot, sort_keys=True, default=_bytes_default)
        self._latest = encoded
        self.checkpoints_stored += 1
        self.bytes_written += len(encoded)
        return len(encoded)

    def load_checkpoint(self) -> dict[str, Any] | None:
        if self._latest is None:
            return None
        return json.loads(self._latest, object_hook=_bytes_hook)


def _bytes_default(obj: Any) -> Any:
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    raise TypeError(f"not serializable: {type(obj).__name__}")


def _bytes_hook(obj: dict) -> Any:
    if set(obj) == {"__bytes__"}:
        return bytes.fromhex(obj["__bytes__"])
    return obj


class CheckpointPolicy:
    """Base class: observe actions, decide when to checkpoint."""

    name = "base"

    def observe(self, action: Action) -> bool:
        """Called per applied action; True means checkpoint now."""
        raise NotImplementedError

    def on_checkpoint(self, tick: int) -> None:
        """Called after a checkpoint completes (reset accumulators)."""


class IntervalPolicy(CheckpointPolicy):
    """Checkpoint every ``interval_ticks`` regardless of content."""

    name = "interval"

    def __init__(self, interval_ticks: int):
        if interval_ticks < 1:
            raise PersistenceError("interval must be >= 1")
        self.interval_ticks = interval_ticks
        self._last_checkpoint_tick = 0

    def observe(self, action: Action) -> bool:
        return action.tick - self._last_checkpoint_tick >= self.interval_ticks

    def on_checkpoint(self, tick: int) -> None:
        self._last_checkpoint_tick = tick


class EventDrivenPolicy(CheckpointPolicy):
    """Checkpoint when accumulated importance crosses a threshold.

    ``instant_threshold`` lets a single monumental event (importance ≥
    that value) force an immediate checkpoint even when the accumulator
    is otherwise low — "the raid boss died, persist NOW".
    """

    name = "event"

    def __init__(
        self,
        importance_threshold: float = 1.0,
        instant_threshold: float = 0.9,
        max_interval_ticks: int | None = None,
    ):
        if importance_threshold <= 0:
            raise PersistenceError("importance_threshold must be positive")
        self.importance_threshold = importance_threshold
        self.instant_threshold = instant_threshold
        self.max_interval_ticks = max_interval_ticks
        self._accumulated = 0.0
        self._last_checkpoint_tick = 0

    def observe(self, action: Action) -> bool:
        self._accumulated += action.importance
        if action.importance >= self.instant_threshold:
            return True
        if self._accumulated >= self.importance_threshold:
            return True
        if (
            self.max_interval_ticks is not None
            and action.tick - self._last_checkpoint_tick >= self.max_interval_ticks
        ):
            return True
        return False

    def on_checkpoint(self, tick: int) -> None:
        self._accumulated = 0.0
        self._last_checkpoint_tick = tick


class HybridPolicy(CheckpointPolicy):
    """Event-driven with an interval backstop — the deployable policy."""

    name = "hybrid"

    def __init__(
        self,
        importance_threshold: float = 1.0,
        interval_ticks: int = 18_000,
        instant_threshold: float = 0.9,
    ):
        self._event = EventDrivenPolicy(
            importance_threshold,
            instant_threshold,
            max_interval_ticks=interval_ticks,
        )

    def observe(self, action: Action) -> bool:
        return self._event.observe(action)

    def on_checkpoint(self, tick: int) -> None:
        self._event.on_checkpoint(tick)


@dataclass
class CheckpointStats:
    """Manager accounting."""

    checkpoints: int = 0
    bytes_written: int = 0
    wal_records_truncated: int = 0
    last_checkpoint_tick: int = 0
    last_checkpoint_lsn: int = 0


class CheckpointManager:
    """Drives a policy against the memdb/WAL/backing-store triple."""

    def __init__(
        self,
        db: InMemoryGameDB,
        store: BackingStore,
        policy: CheckpointPolicy,
    ):
        self.db = db
        self.store = store
        self.policy = policy
        self.stats = CheckpointStats()

    def record(self, action: Action) -> bool:
        """Apply an action through the manager; checkpoint if policy says.

        Returns True when a checkpoint was taken.
        """
        self.db.apply(action)
        if self.policy.observe(action):
            self.checkpoint(action.tick)
            return True
        return False

    def checkpoint(self, tick: int) -> None:
        """Take a checkpoint now: flush WAL, snapshot, store, truncate."""
        self.db.wal.flush()
        snapshot = self.db.snapshot()
        snapshot["tick"] = tick
        written = self.store.store_checkpoint(snapshot)
        self.stats.checkpoints += 1
        self.stats.bytes_written += written
        self.stats.last_checkpoint_tick = tick
        self.stats.last_checkpoint_lsn = snapshot["applied_lsn"]
        # Records at or below the snapshot LSN are now redundant.
        self.stats.wal_records_truncated += self.db.wal.truncate_until(
            snapshot["applied_lsn"] + 1
        )
        self.policy.on_checkpoint(tick)
