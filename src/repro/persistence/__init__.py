"""Persistence tier: WAL, in-memory DB, checkpoint policies, recovery,
blob codecs, schema migrations, and the mini-SQL backing store."""

from repro.persistence.blob import (
    BlobCodec,
    blob_size,
    decode_record,
    encode_record,
)
from repro.persistence.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    CheckpointStats,
    EventDrivenPolicy,
    HybridPolicy,
    IntervalPolicy,
    SnapshotStore,
)
from repro.persistence.memdb import Action, InMemoryGameDB
from repro.persistence.pages import (
    PAGE_SIZE,
    BufferPool,
    PagedBackingStore,
    PagedRecordStore,
    Pager,
)
from repro.persistence.migration import (
    AddColumn,
    DropColumn,
    Migration,
    MigrationReport,
    MigrationRunner,
    OnlineMigration,
    RenameColumn,
    TransformColumn,
    VersionedTable,
)
from repro.persistence.recovery import RecoveryReport, recover, verify_recovery
from repro.persistence.sqlbridge import MiniSQL, SQLBackingStore
from repro.persistence.wal import WALRecord, WriteAheadLog
from repro.persistence.worldbridge import WorldPersistence, recover_world

__all__ = [
    "BlobCodec",
    "blob_size",
    "decode_record",
    "encode_record",
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointStats",
    "EventDrivenPolicy",
    "HybridPolicy",
    "IntervalPolicy",
    "SnapshotStore",
    "Action",
    "InMemoryGameDB",
    "PAGE_SIZE",
    "BufferPool",
    "PagedBackingStore",
    "PagedRecordStore",
    "Pager",
    "AddColumn",
    "DropColumn",
    "Migration",
    "MigrationReport",
    "MigrationRunner",
    "OnlineMigration",
    "RenameColumn",
    "TransformColumn",
    "VersionedTable",
    "RecoveryReport",
    "recover",
    "verify_recovery",
    "MiniSQL",
    "SQLBackingStore",
    "WALRecord",
    "WriteAheadLog",
    "WorldPersistence",
    "recover_world",
]
