"""WorldPersistence: wire a GameWorld to the persistence tier.

The glue the tutorial's Engineering section describes: the game runs
against the in-memory world; every logical change is journaled through
the WAL-backed :class:`~repro.persistence.memdb.InMemoryGameDB`; a
checkpoint policy decides when the world snapshot flows to the backing
store; after a crash, :meth:`recover_world` rebuilds a GameWorld equal to
the last durable state.

Importance plumbing: gameplay code marks the *next* change important
(``bridge.mark_importance(0.95)`` right before applying a boss-kill
reward), which is what lets the event-driven checkpointer fire at the
right moment.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.component import ComponentSchema, FieldDef
from repro.core.world import GameWorld
from repro.errors import RecoveryError
from repro.persistence.checkpoint import (
    BackingStore,
    CheckpointManager,
    CheckpointPolicy,
)
from repro.persistence.memdb import Action, InMemoryGameDB
from repro.persistence.recovery import recover
from repro.persistence.wal import WriteAheadLog

#: memdb table names used by the bridge.
_ENTITY_TABLE = "entities"
_COMPONENT_TABLE_PREFIX = "component:"
_META_TABLE = "meta"


class WorldPersistence:
    """Journals a live GameWorld and drives checkpointing.

    Parameters
    ----------
    world:
        The world to persist.  The bridge registers a change hook; call
        :meth:`close` to detach.
    store:
        Any :class:`BackingStore` (SQL bridge, snapshot store).
    policy:
        Checkpoint policy (interval / event-driven / hybrid).
    group_commit:
        WAL group-commit factor (1 = every action durable immediately).
    """

    def __init__(
        self,
        world: GameWorld,
        store: BackingStore,
        policy: CheckpointPolicy,
        group_commit: int = 1,
    ):
        self.world = world
        self.wal = WriteAheadLog(group_commit=group_commit)
        self.db = InMemoryGameDB(self.wal)
        self.db.create_table(_ENTITY_TABLE)
        self.db.create_table(_META_TABLE)
        for comp in world.component_names():
            self.db.create_table(_COMPONENT_TABLE_PREFIX + comp)
        self.manager = CheckpointManager(self.db, store, policy)
        self._pending_importance = 0.0
        self._schemas = {
            comp: world.table(comp).schema for comp in world.component_names()
        }
        self._record_schemas()
        world.add_change_hook(self._on_change)
        self._closed = False

    # -- public API ------------------------------------------------------------

    def mark_importance(self, importance: float) -> None:
        """Tag the *next* world change with designer importance.

        Call immediately before applying an important change (boss kill,
        epic loot); the event-driven checkpointer accumulates it.
        """
        self._pending_importance = max(self._pending_importance, importance)

    def checkpoint_now(self) -> None:
        """Force a checkpoint (zone transition, scheduled maintenance)."""
        self.manager.checkpoint(self.world.clock.tick)

    def close(self) -> None:
        """Detach from the world; idempotent."""
        if not self._closed:
            self.world.remove_change_hook(self._on_change)
            self._closed = True

    @property
    def checkpoints_taken(self) -> int:
        """Checkpoints written so far."""
        return self.manager.stats.checkpoints

    # -- change capture -----------------------------------------------------------

    def _on_change(
        self,
        op: str,
        entity_id: int,
        component: str | None,
        payload: Mapping[str, Any] | None,
    ) -> None:
        importance = self._pending_importance
        self._pending_importance = 0.0
        tick = self.world.clock.tick
        if op == "spawn":
            action = Action("put", _ENTITY_TABLE, entity_id, {"alive": True},
                            importance, tick)
        elif op == "destroy":
            action = Action("delete", _ENTITY_TABLE, entity_id, None,
                            importance, tick)
        elif op == "attach":
            action = Action(
                "set_row", _COMPONENT_TABLE_PREFIX + component,
                entity_id, dict(payload or {}), importance, tick,
            )
        elif op == "detach":
            action = Action(
                "delete", _COMPONENT_TABLE_PREFIX + component,
                entity_id, None, importance, tick,
            )
        elif op == "update":
            action = Action(
                "put", _COMPONENT_TABLE_PREFIX + component,
                entity_id, dict(payload or {}), importance, tick,
            )
        else:  # pragma: no cover - future ops
            return
        self.manager.record(action)

    def _record_schemas(self) -> None:
        """Persist component schemas so recovery can rebuild the world."""
        for comp, schema in self._schemas.items():
            spec = {
                fdef.name: [
                    fdef.type_name,
                    fdef.default,
                    fdef.indexable,
                    fdef.nullable,
                ]
                for fdef in schema.fields.values()
            }
            self.db.put(_META_TABLE, f"schema:{comp}", {"fields": spec})


def recover_world(
    wal: WriteAheadLog, store: BackingStore
) -> tuple[GameWorld, Any]:
    """Rebuild a GameWorld from (checkpoint, WAL) after a crash.

    Returns ``(world, recovery_report)``.  Entity ids are preserved
    exactly, so references stored in component fields remain valid.
    """
    db, report = recover(wal, store)
    world = GameWorld()
    # 1. rebuild component schemas
    for key in db.keys(_META_TABLE) if _META_TABLE in db.tables() else []:
        if not str(key).startswith("schema:"):
            continue
        comp = str(key).split(":", 1)[1]
        spec = db.get(_META_TABLE, key)["fields"]
        fields = [
            FieldDef(name, type_name, default=default,
                     indexable=indexable, nullable=nullable)
            for name, (type_name, default, indexable, nullable) in spec.items()
        ]
        world.catalog.define(ComponentSchema(comp, fields))
    # 2. rebuild entities with their original ids
    if _ENTITY_TABLE not in db.tables():
        raise RecoveryError("persistence log contains no entity table")
    entity_rows = {eid: row for eid, row in db.rows(_ENTITY_TABLE)}
    snapshot = {
        "entities": {int(eid): [] for eid in entity_rows},
        "tables": {},
        "tick": report.recovered_tick,
    }
    world.restore(snapshot)
    # 3. reattach components
    for table_name in db.tables():
        if not table_name.startswith(_COMPONENT_TABLE_PREFIX):
            continue
        comp = table_name[len(_COMPONENT_TABLE_PREFIX):]
        for eid, row in db.rows(table_name):
            eid = int(eid)
            if world.exists(eid):
                world.attach(eid, comp, **row)
    return world, report
