"""Write-ahead log with explicit durability boundaries.

The in-memory game tier journals every action here before applying it;
the WAL is what makes "checkpoint every 10 minutes" survivable at all.
Durability is modelled honestly: :meth:`append` buffers, :meth:`flush`
makes records durable (one simulated fsync), and :meth:`crash` discards
the unflushed tail — so recovery tests exercise the real torn-tail case.

Records are dicts serialized as JSON lines with an LSN and a CRC; the
reader detects and stops at corruption, which is how a real log handles a
torn final write.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import WalCorruptionError, WALError


@dataclass(frozen=True)
class WALRecord:
    """One durable log record."""

    lsn: int
    payload: dict[str, Any]


class WriteAheadLog:
    """An in-memory WAL with honest flush/crash semantics.

    ``group_commit`` > 1 batches appends per fsync (the standard latency/
    durability trade); ``auto_flush`` False means the caller controls
    flush boundaries entirely.
    """

    def __init__(self, group_commit: int = 1, auto_flush: bool = True):
        if group_commit < 1:
            raise WALError("group_commit must be >= 1")
        self.group_commit = group_commit
        self.auto_flush = auto_flush
        self._durable: list[str] = []  # encoded lines, the "disk"
        self._buffer: list[str] = []
        self._next_lsn = 1
        self._truncated_below = 1
        self.fsyncs = 0
        self.bytes_written = 0
        #: Set by :meth:`records` when a read hit a corrupt record and
        #: stopped early; recovery checks it to trigger a flight dump.
        self.corruption_detected = False
        self._tracer = None
        self._c_appends = None
        self._c_fsyncs = None
        self._c_bytes = None

    def bind_obs(self, obs: Any, **labels: str) -> "WriteAheadLog":
        """Attach an observability bundle: spans + ``wal.*`` counters.

        ``labels`` (e.g. ``wal="shard:0"``) distinguish multiple logs
        sharing one registry.  Returns self for chaining.  Unbound logs
        pay nothing.
        """
        tracer = getattr(obs, "tracer", None)
        if tracer is not None and tracer.enabled:
            self._tracer = tracer
        metrics = getattr(obs, "metrics", None)
        if metrics is not None:
            self._c_appends = metrics.counter("wal.appends", **labels)
            self._c_fsyncs = metrics.counter("wal.fsyncs", **labels)
            self._c_bytes = metrics.counter("wal.bytes_written", **labels)
        return self

    # -- writing ------------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """LSN the next append will receive."""
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        """Highest LSN that is durable (0 when none)."""
        return self._next_lsn - 1 - len(self._buffer)

    def append(self, payload: dict[str, Any]) -> int:
        """Append a record; returns its LSN.  Durability needs flush."""
        if self._tracer is not None and self._tracer.enabled:
            with self._tracer.span("wal.append", cat="wal", lsn=self._next_lsn):
                return self._append_impl(payload)
        return self._append_impl(payload)

    def _append_impl(self, payload: dict[str, Any]) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        line = _encode(lsn, payload)
        self._buffer.append(line)
        if self._c_appends is not None:
            self._c_appends.inc()
        if self.auto_flush and len(self._buffer) >= self.group_commit:
            self.flush()
        return lsn

    def flush(self) -> int:
        """Force the buffer to durable storage; returns records flushed."""
        if not self._buffer:
            return 0
        if self._tracer is not None and self._tracer.enabled:
            with self._tracer.span(
                "wal.fsync", cat="wal", records=len(self._buffer)
            ):
                return self._flush_impl()
        return self._flush_impl()

    def _flush_impl(self) -> int:
        flushed = len(self._buffer)
        written = 0
        for line in self._buffer:
            self._durable.append(line)
            written += len(line)
        self.bytes_written += written
        self._buffer.clear()
        self.fsyncs += 1
        if self._c_fsyncs is not None:
            self._c_fsyncs.inc()
            self._c_bytes.inc(written)
        return flushed

    def crash(self) -> int:
        """Simulate a crash: the unflushed tail is lost.

        Returns the number of records lost.  The WAL object remains
        usable for recovery reads (it *is* the disk).
        """
        lost = len(self._buffer)
        self._buffer.clear()
        self._next_lsn -= lost
        return lost

    def corrupt_tail(self) -> None:
        """Damage the final durable record (torn-write simulation)."""
        self.corrupt_at(-1)

    def corrupt_at(self, index: int) -> None:
        """Damage the durable record at ``index`` (bit-rot simulation).

        Unlike a torn tail, mid-file corruption cuts recovery short:
        :meth:`records` stops at the bad record and everything after it
        is unreachable — the case checksums exist to detect.
        """
        if not self._durable:
            raise WALError("nothing to corrupt")
        try:
            line = self._durable[index]
        except IndexError:
            raise WALError(f"no durable record at index {index}") from None
        self._durable[index] = line[:-4] + "XXXX"

    # -- truncation ---------------------------------------------------------------------

    def truncate_until(self, lsn: int) -> int:
        """Drop durable records with LSN < ``lsn`` (post-checkpoint GC).

        Returns records removed.
        """
        kept: list[str] = []
        removed = 0
        for line in self._durable:
            rec = _try_decode(line)
            if rec is not None and rec.lsn < lsn:
                removed += 1
            else:
                kept.append(line)
        self._durable = kept
        self._truncated_below = max(self._truncated_below, lsn)
        return removed

    # -- reading ---------------------------------------------------------------------------

    def records(
        self, from_lsn: int = 0, strict: bool = False
    ) -> Iterator[WALRecord]:
        """Durable records with LSN >= ``from_lsn``.

        A record that fails its checksum ends the scan: by default the
        reader stops silently (sets :attr:`corruption_detected`, the
        torn-tail convention), while ``strict=True`` raises a
        :class:`~repro.errors.WalCorruptionError` carrying the bad
        record's offset in the durable log and the last LSN that decoded
        cleanly — the error contract the durable serving tier catches to
        refuse serving from a log it cannot trust.
        """
        last_good = 0
        for offset, line in enumerate(self._durable):
            rec = _try_decode(line)
            if rec is None:
                # Torn tail: everything after the first bad record is
                # untrustworthy; stop exactly like a real recovery pass.
                self.corruption_detected = True
                if strict:
                    raise WalCorruptionError(
                        f"WAL record at offset {offset} failed its "
                        f"checksum (last good LSN {last_good})",
                        offset=offset,
                        last_good_lsn=last_good,
                    )
                return
            last_good = rec.lsn
            if rec.lsn >= from_lsn:
                yield rec

    def durable_count(self) -> int:
        """Number of durable records currently retained."""
        return len(self._durable)

    def pending_count(self) -> int:
        """Records buffered but not yet durable."""
        return len(self._buffer)


def _encode(lsn: int, payload: dict[str, Any]) -> str:
    body = json.dumps({"lsn": lsn, "p": payload}, sort_keys=True, default=_json_default)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{body}|{crc:08x}"


def _json_default(obj: Any) -> Any:
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    raise TypeError(f"not serializable: {type(obj).__name__}")


def _json_revive(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {"__bytes__"}:
            return bytes.fromhex(obj["__bytes__"])
        return {k: _json_revive(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_json_revive(v) for v in obj]
    return obj


def _try_decode(line: str) -> WALRecord | None:
    body, sep, crc_hex = line.rpartition("|")
    if not sep:
        return None
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        doc = json.loads(body)
    except json.JSONDecodeError:
        return None
    return WALRecord(lsn=doc["lsn"], payload=_json_revive(doc["p"]))
