"""Blob codecs: the "unstructured blob" schema-evolution escape hatch.

    "They often choose to write data as an unstructured 'blobs' into a
    single attribute, so that they can preserve their old schemas."

A :class:`BlobCodec` packs a character record into one bytes value, with
a version byte up front so old blobs remain readable forever (the whole
point of the technique).  Decoding applies registered *upgraders* —
lazily, per read — which is how blob schemas "migrate" without downtime.

The encoding is a deliberately simple self-describing binary format
(struct-packed, not pickle: untrusted save data must never execute).
:func:`blob_size` and the codec's counters feed experiment E9's
storage/query-cost comparison against structured columns.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Mapping

from repro.errors import PersistenceError

_TYPE_INT = 0
_TYPE_FLOAT = 1
_TYPE_STR = 2
_TYPE_BOOL = 3
_TYPE_NONE = 4

#: Upgrader signature: fn(record_dict) -> record_dict at version+1.
Upgrader = Callable[[dict[str, Any]], dict[str, Any]]


def _pack_value(value: Any) -> bytes:
    if value is None:
        return struct.pack("<B", _TYPE_NONE)
    if isinstance(value, bool):
        return struct.pack("<BB", _TYPE_BOOL, 1 if value else 0)
    if isinstance(value, int):
        return struct.pack("<Bq", _TYPE_INT, value)
    if isinstance(value, float):
        return struct.pack("<Bd", _TYPE_FLOAT, value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return struct.pack("<BI", _TYPE_STR, len(raw)) + raw
    raise PersistenceError(
        f"blob codec cannot pack {type(value).__name__}"
    )


def _unpack_value(buf: bytes, offset: int) -> tuple[Any, int]:
    (tag,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    if tag == _TYPE_NONE:
        return None, offset
    if tag == _TYPE_BOOL:
        (b,) = struct.unpack_from("<B", buf, offset)
        return bool(b), offset + 1
    if tag == _TYPE_INT:
        (v,) = struct.unpack_from("<q", buf, offset)
        return v, offset + 8
    if tag == _TYPE_FLOAT:
        (v,) = struct.unpack_from("<d", buf, offset)
        return v, offset + 8
    if tag == _TYPE_STR:
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        raw = buf[offset: offset + length]
        if len(raw) != length:
            raise PersistenceError("truncated blob string")
        return raw.decode("utf-8"), offset + length
    raise PersistenceError(f"unknown blob value tag {tag}")


def encode_record(record: Mapping[str, Any], version: int) -> bytes:
    """Pack a flat record into a versioned blob."""
    if not 0 <= version <= 255:
        raise PersistenceError("blob version must fit in one byte")
    parts = [struct.pack("<BH", version, len(record))]
    for key in sorted(record):
        raw_key = key.encode("utf-8")
        parts.append(struct.pack("<H", len(raw_key)))
        parts.append(raw_key)
        parts.append(_pack_value(record[key]))
    return b"".join(parts)


def decode_record(blob: bytes) -> tuple[dict[str, Any], int]:
    """Unpack a blob into (record, version)."""
    if len(blob) < 3:
        raise PersistenceError("blob too short")
    version, count = struct.unpack_from("<BH", blob, 0)
    offset = 3
    record: dict[str, Any] = {}
    for _ in range(count):
        (key_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        key = blob[offset: offset + key_len].decode("utf-8")
        offset += key_len
        value, offset = _unpack_value(blob, offset)
        record[key] = value
    return record, version


class BlobCodec:
    """Versioned blob encode/decode with lazy upgrade-on-read.

    Register an upgrader per version step; decoding a v2 blob with
    ``current_version=5`` runs upgraders 2→3→4→5 before returning.
    """

    def __init__(self, current_version: int = 1):
        self.current_version = current_version
        self._upgraders: dict[int, Upgrader] = {}
        self.encodes = 0
        self.decodes = 0
        self.upgrades_run = 0

    def register_upgrader(self, from_version: int, fn: Upgrader) -> None:
        """Install the ``from_version → from_version+1`` upgrader."""
        if from_version in self._upgraders:
            raise PersistenceError(
                f"upgrader from v{from_version} already registered"
            )
        self._upgraders[from_version] = fn

    def bump_version(self) -> int:
        """Declare a new current version (after registering its upgrader)."""
        self.current_version += 1
        return self.current_version

    def encode(self, record: Mapping[str, Any]) -> bytes:
        """Pack at the current version."""
        self.encodes += 1
        return encode_record(record, self.current_version)

    def decode(self, blob: bytes) -> dict[str, Any]:
        """Unpack, upgrading old versions to current lazily."""
        self.decodes += 1
        record, version = decode_record(blob)
        while version < self.current_version:
            upgrader = self._upgraders.get(version)
            if upgrader is None:
                raise PersistenceError(
                    f"no upgrader from blob version {version} "
                    f"(current {self.current_version})"
                )
            record = upgrader(record)
            version += 1
            self.upgrades_run += 1
        return record

    def read_field(self, blob: bytes, field_name: str) -> Any:
        """Read one field — requires decoding the *whole* blob.

        This method exists to make E9's point measurable: per-field
        access cost under blobs is O(record), versus O(1) for a real
        column.
        """
        record = self.decode(blob)
        if field_name not in record:
            raise PersistenceError(f"blob has no field {field_name!r}")
        return record[field_name]


def blob_size(record: Mapping[str, Any], version: int = 1) -> int:
    """Encoded size of a record, in bytes."""
    return len(encode_record(record, version))
