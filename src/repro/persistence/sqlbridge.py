"""A miniature SQL engine — the stand-in for the commercial backend.

    "MMOs use commercial databases for persistence and to recover from
    server crashes. … they need to ensure that the bridge between the
    client software and the SQL code is robust enough to handle changes
    in each."

Since the sandbox has no commercial database, we build the smallest SQL
engine that exercises the same bridge code paths: typed tables with an
optional primary key, parameterized statements (``?`` placeholders — the
robust half of the bridge), and the subset of SQL a game persistence tier
actually issues:

    CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, gold INTEGER)
    INSERT INTO t (id, name, gold) VALUES (?, ?, ?)
    SELECT name, gold FROM t WHERE gold >= ? ORDER BY gold DESC LIMIT 10
    UPDATE t SET gold = ? WHERE id = ?
    DELETE FROM t WHERE id = ?

The engine also implements the :class:`~repro.persistence.checkpoint.
BackingStore` protocol via :class:`SQLBackingStore`, so checkpoints
genuinely flow through SQL — as the tutorial describes.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import SQLError

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|\?|\(|\)|,|\*)"
    r")"
)

_KEYWORDS = {
    "CREATE", "TABLE", "PRIMARY", "KEY", "INSERT", "INTO", "VALUES",
    "SELECT", "FROM", "WHERE", "AND", "ORDER", "BY", "DESC", "ASC",
    "LIMIT", "UPDATE", "SET", "DELETE", "INTEGER", "REAL", "TEXT", "BLOB",
    "COUNT", "NULL",
}

_COLUMN_TYPES = {"INTEGER": int, "REAL": float, "TEXT": str, "BLOB": bytes}


def _tokenize(sql: str) -> list[tuple[str, Any]]:
    tokens: list[tuple[str, Any]] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise SQLError(f"cannot tokenize near {rest[:20]!r}")
        pos = m.end()
        if m.lastgroup == "number":
            text = m.group("number")
            tokens.append(("num", float(text) if "." in text else int(text)))
        elif m.lastgroup == "string":
            raw = m.group("string")[1:-1].replace("''", "'")
            tokens.append(("str", raw))
        elif m.lastgroup == "ident":
            word = m.group("ident")
            upper = word.upper()
            if upper in _KEYWORDS:
                tokens.append(("kw", upper))
            else:
                tokens.append(("ident", word))
        else:
            tokens.append(("op", m.group("op")))
    tokens.append(("eof", None))
    return tokens


@dataclass
class _Column:
    name: str
    type_name: str
    primary_key: bool = False

    def check(self, value: Any) -> Any:
        if value is None:
            return None
        py = _COLUMN_TYPES[self.type_name]
        if self.type_name == "REAL" and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if isinstance(value, bool) or not isinstance(value, py):
            raise SQLError(
                f"column {self.name} ({self.type_name}) rejects "
                f"{type(value).__name__} value {value!r}"
            )
        return value


class _Table:
    def __init__(self, name: str, columns: list[_Column]):
        self.name = name
        self.columns = columns
        self.by_name = {c.name: c for c in columns}
        self.rows: list[dict[str, Any]] = []
        pk = [c.name for c in columns if c.primary_key]
        self.pk = pk[0] if pk else None
        self._pk_index: dict[Any, int] = {}


class MiniSQL:
    """The engine: ``execute(sql, params)`` returns affected/result rows."""

    def __init__(self) -> None:
        self._tables: dict[str, _Table] = {}
        self.statements_executed = 0
        #: Rows affected by the most recent INSERT/UPDATE/DELETE (rows
        #: returned, for SELECT) — the signal optimistic CAS reads to
        #: learn whether its guarded UPDATE actually landed.
        self.rowcount = 0

    # -- public API ---------------------------------------------------------------

    def execute(
        self, sql: str, params: Iterable[Any] = ()
    ) -> list[dict[str, Any]]:
        """Run one statement; SELECTs return rows, others return []."""
        self.statements_executed += 1
        tokens = _tokenize(sql)
        parser = _Parser(tokens, list(params))
        kind = parser.peek_kw()
        if kind == "CREATE":
            self._create(parser)
            self.rowcount = 0
            return []
        if kind == "INSERT":
            self._insert(parser)
            self.rowcount = 1
            return []
        if kind == "SELECT":
            rows = self._select(parser)
            self.rowcount = len(rows)
            return rows
        if kind == "UPDATE":
            self.rowcount = self._update(parser)
            return []
        if kind == "DELETE":
            self.rowcount = self._delete(parser)
            return []
        raise SQLError(f"unsupported statement start: {kind!r}")

    def table_names(self) -> list[str]:
        """All table names."""
        return sorted(self._tables)

    def row_count(self, table: str) -> int:
        """Rows in one table."""
        return len(self._require(table).rows)

    # -- statement implementations ---------------------------------------------------

    def _create(self, p: "_Parser") -> None:
        p.expect_kw("CREATE")
        p.expect_kw("TABLE")
        name = p.expect_ident()
        if name in self._tables:
            raise SQLError(f"table {name!r} already exists")
        p.expect_op("(")
        columns: list[_Column] = []
        while True:
            col_name = p.expect_ident()
            type_kw = p.expect_any_kw("INTEGER", "REAL", "TEXT", "BLOB")
            primary = False
            if p.try_kw("PRIMARY"):
                p.expect_kw("KEY")
                primary = True
            if primary and any(c.primary_key for c in columns):
                raise SQLError("multiple primary keys")
            columns.append(_Column(col_name, type_kw, primary))
            if p.try_op(")"):
                break
            p.expect_op(",")
        if len({c.name for c in columns}) != len(columns):
            raise SQLError("duplicate column name")
        self._tables[name] = _Table(name, columns)

    def _insert(self, p: "_Parser") -> None:
        p.expect_kw("INSERT")
        p.expect_kw("INTO")
        table = self._require(p.expect_ident())
        p.expect_op("(")
        cols = [p.expect_ident()]
        while p.try_op(","):
            cols.append(p.expect_ident())
        p.expect_op(")")
        p.expect_kw("VALUES")
        p.expect_op("(")
        values = [p.value()]
        while p.try_op(","):
            values.append(p.value())
        p.expect_op(")")
        if len(cols) != len(values):
            raise SQLError("column/value count mismatch")
        row = {c.name: None for c in table.columns}
        for col, value in zip(cols, values):
            cdef = table.by_name.get(col)
            if cdef is None:
                raise SQLError(f"no column {col!r} in {table.name}")
            row[col] = cdef.check(value)
        if table.pk is not None:
            pk_value = row[table.pk]
            if pk_value is None:
                raise SQLError(f"primary key {table.pk} cannot be NULL")
            if pk_value in table._pk_index:
                raise SQLError(
                    f"duplicate primary key {pk_value!r} in {table.name}"
                )
            table._pk_index[pk_value] = len(table.rows)
        table.rows.append(row)

    def _select(self, p: "_Parser") -> list[dict[str, Any]]:
        p.expect_kw("SELECT")
        count_star = False
        cols: list[str] = []
        if p.try_kw("COUNT"):
            p.expect_op("(")
            p.expect_op("*")
            p.expect_op(")")
            count_star = True
        elif p.try_op("*"):
            pass  # all columns
        else:
            cols.append(p.expect_ident())
            while p.try_op(","):
                cols.append(p.expect_ident())
        p.expect_kw("FROM")
        table = self._require(p.expect_ident())
        predicate = self._where(p, table)
        order_col: str | None = None
        descending = False
        if p.try_kw("ORDER"):
            p.expect_kw("BY")
            order_col = p.expect_ident()
            if order_col not in table.by_name:
                raise SQLError(f"no column {order_col!r}")
            if p.try_kw("DESC"):
                descending = True
            else:
                p.try_kw("ASC")
        limit: int | None = None
        if p.try_kw("LIMIT"):
            limit_val = p.value()
            if not isinstance(limit_val, int) or limit_val < 0:
                raise SQLError("LIMIT must be a non-negative integer")
            limit = limit_val
        p.expect_eof()
        matched = self._match_rows(table, predicate)
        if count_star:
            return [{"count": len(matched)}]
        if order_col is not None:
            matched.sort(
                key=lambda r: (r[order_col] is None, r[order_col]),
                reverse=descending,
            )
        if limit is not None:
            matched = matched[:limit]
        if not cols:
            return [dict(r) for r in matched]
        for col in cols:
            if col not in table.by_name:
                raise SQLError(f"no column {col!r} in {table.name}")
        return [{c: r[c] for c in cols} for r in matched]

    def _update(self, p: "_Parser") -> int:
        p.expect_kw("UPDATE")
        table = self._require(p.expect_ident())
        p.expect_kw("SET")
        updates: list[tuple[str, Any]] = []
        while True:
            col = p.expect_ident()
            cdef = table.by_name.get(col)
            if cdef is None:
                raise SQLError(f"no column {col!r} in {table.name}")
            p.expect_op("=")
            updates.append((col, cdef.check(p.value())))
            if not p.try_op(","):
                break
        predicate = self._where(p, table)
        p.expect_eof()
        matched = self._match_rows(table, predicate)
        for row in matched:
            for col, value in updates:
                if col == table.pk and value != row[col]:
                    raise SQLError("updating primary keys is not supported")
                row[col] = value
        return len(matched)

    def _delete(self, p: "_Parser") -> int:
        p.expect_kw("DELETE")
        p.expect_kw("FROM")
        table = self._require(p.expect_ident())
        predicate = self._where(p, table)
        p.expect_eof()
        doomed = self._match_rows(table, predicate)
        doomed_ids = {id(r) for r in doomed}
        table.rows = [r for r in table.rows if id(r) not in doomed_ids]
        if table.pk is not None:
            table._pk_index = {
                row[table.pk]: i for i, row in enumerate(table.rows)
            }
        return len(doomed)

    # -- where handling -------------------------------------------------------------------

    def _where(self, p: "_Parser", table: _Table) -> list[tuple[str, str, Any]]:
        conds: list[tuple[str, str, Any]] = []
        if p.try_kw("WHERE"):
            while True:
                col = p.expect_ident()
                if col not in table.by_name:
                    raise SQLError(f"no column {col!r} in {table.name}")
                op = p.expect_comparison()
                conds.append((col, op, p.value()))
                if not p.try_kw("AND"):
                    break
        return conds

    def _match_rows(
        self, table: _Table, conds: list[tuple[str, str, Any]]
    ) -> list[dict[str, Any]]:
        # Primary-key equality takes the index path.
        for col, op, value in conds:
            if op == "=" and col == table.pk:
                idx = table._pk_index.get(value)
                candidates = [table.rows[idx]] if idx is not None else []
                break
        else:
            candidates = list(table.rows)
        out = []
        for row in candidates:
            if all(_cmp(row[c], op, v) for c, op, v in conds):
                out.append(row)
        return out

    def _require(self, name: str) -> _Table:
        table = self._tables.get(name)
        if table is None:
            raise SQLError(f"no table {name!r}")
        return table


def _cmp(lhs: Any, op: str, rhs: Any) -> bool:
    if lhs is None:
        return False
    if op == "=":
        return lhs == rhs
    if op in ("!=", "<>"):
        return lhs != rhs
    try:
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
    except TypeError as exc:
        raise SQLError(f"cannot compare {lhs!r} {op} {rhs!r}") from exc
    raise SQLError(f"unknown comparison {op!r}")


class _Parser:
    """Token-stream helper shared by the statement parsers."""

    def __init__(self, tokens: list[tuple[str, Any]], params: list[Any]):
        self.tokens = tokens
        self.pos = 0
        self.params = params
        self.param_index = 0

    def _peek(self) -> tuple[str, Any]:
        return self.tokens[self.pos]

    def _advance(self) -> tuple[str, Any]:
        tok = self.tokens[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def peek_kw(self) -> str | None:
        kind, value = self._peek()
        return value if kind == "kw" else None

    def expect_kw(self, word: str) -> None:
        kind, value = self._advance()
        if kind != "kw" or value != word:
            raise SQLError(f"expected {word}, found {value!r}")

    def expect_any_kw(self, *words: str) -> str:
        kind, value = self._advance()
        if kind != "kw" or value not in words:
            raise SQLError(f"expected one of {words}, found {value!r}")
        return value

    def try_kw(self, word: str) -> bool:
        kind, value = self._peek()
        if kind == "kw" and value == word:
            self._advance()
            return True
        return False

    def expect_ident(self) -> str:
        kind, value = self._advance()
        if kind != "ident":
            raise SQLError(f"expected identifier, found {value!r}")
        return value

    def expect_op(self, op: str) -> None:
        kind, value = self._advance()
        if kind != "op" or value != op:
            raise SQLError(f"expected {op!r}, found {value!r}")

    def try_op(self, op: str) -> bool:
        kind, value = self._peek()
        if kind == "op" and value == op:
            self._advance()
            return True
        return False

    def expect_comparison(self) -> str:
        kind, value = self._advance()
        if kind == "op" and value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            return value
        raise SQLError(f"expected comparison operator, found {value!r}")

    def value(self) -> Any:
        kind, value = self._advance()
        if kind in ("num", "str"):
            return value
        if kind == "kw" and value == "NULL":
            return None
        if kind == "op" and value == "?":
            if self.param_index >= len(self.params):
                raise SQLError("not enough parameters for placeholders")
            param = self.params[self.param_index]
            self.param_index += 1
            return param
        raise SQLError(f"expected a value, found {value!r}")

    def expect_eof(self) -> None:
        kind, value = self._peek()
        if kind != "eof":
            raise SQLError(f"unexpected trailing input at {value!r}")


class SQLBackingStore:
    """Checkpoint store writing through the SQL engine.

    Snapshots are stored as rows in a ``checkpoints`` table, newest wins —
    the shape of a real game's persistence bridge (serialize, INSERT,
    SELECT latest on recovery).
    """

    def __init__(self, engine: MiniSQL | None = None):
        self.engine = engine or MiniSQL()
        if "checkpoints" not in self.engine.table_names():
            self.engine.execute(
                "CREATE TABLE checkpoints (seq INTEGER PRIMARY KEY, body TEXT)"
            )
        self._seq = 0

    def store_checkpoint(self, snapshot: dict[str, Any]) -> int:
        """Serialize + INSERT; returns bytes written."""
        self._seq += 1
        body = json.dumps(snapshot, sort_keys=True, default=_store_default)
        self.engine.execute(
            "INSERT INTO checkpoints (seq, body) VALUES (?, ?)",
            (self._seq, body),
        )
        return len(body)

    def load_checkpoint(self) -> dict[str, Any] | None:
        """SELECT the newest snapshot and deserialize it."""
        rows = self.engine.execute(
            "SELECT body FROM checkpoints ORDER BY seq DESC LIMIT 1"
        )
        if not rows:
            return None
        return json.loads(rows[0]["body"], object_hook=_store_hook)


def _store_default(obj: Any) -> Any:
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    raise TypeError(f"not serializable: {type(obj).__name__}")


def _store_hook(obj: dict) -> Any:
    if set(obj) == {"__bytes__"}:
        return bytes.fromhex(obj["__bytes__"])
    return obj
