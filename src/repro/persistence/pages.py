"""Page-based storage: pager, buffer pool, and slotted record pages.

The bottom of the persistence stack — the layer a commercial database
would call the storage engine.  Three pieces:

* :class:`Pager` — fixed-size pages over a simulated disk (a file on
  request, an in-memory byte store by default), counting physical reads
  and writes so benchmarks can reason about I/O.
* :class:`BufferPool` — an LRU cache of frames over the pager with pin
  counts, dirty tracking, and write-back eviction; the knob that turns
  "10-minute checkpoints" from a latency statement into an I/O budget.
* :class:`PagedRecordStore` — slotted-page record storage (insert returns
  a (page, slot) RID; delete leaves a tombstone; records must fit one
  page), plus :class:`PagedBackingStore`, a checkpoint store that chains
  large snapshots across pages — so checkpoints genuinely flow through
  the buffer pool.
"""

from __future__ import annotations

import json
import struct
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterator

from repro.errors import PersistenceError

PAGE_SIZE = 4096

#: slotted-page header: record_count (H), free_space_offset (H)
_PAGE_HEADER = struct.Struct("<HH")
#: per-slot entry: offset (H), length (H); offset 0xFFFF == tombstone
#: (valid offsets are < PAGE_SIZE, so the sentinel can never collide;
#: length stays meaningful for zero-byte records)
_SLOT = struct.Struct("<HH")
_TOMBSTONE_OFFSET = 0xFFFF


class Pager:
    """Fixed-size page allocator over a byte store.

    ``path=None`` keeps pages in memory (tests, benchmarks); a real path
    makes them durable on disk.  All I/O is whole-page and counted.
    """

    def __init__(self, path: str | Path | None = None):
        self._path = Path(path) if path is not None else None
        self._pages: dict[int, bytes] = {}
        self._page_count = 0
        self.physical_reads = 0
        self.physical_writes = 0
        if self._path is not None and self._path.exists():
            data = self._path.read_bytes()
            self._page_count = len(data) // PAGE_SIZE
            for i in range(self._page_count):
                self._pages[i] = data[i * PAGE_SIZE:(i + 1) * PAGE_SIZE]

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return self._page_count

    def allocate(self) -> int:
        """Allocate a zeroed page; returns its page id."""
        page_id = self._page_count
        self._page_count += 1
        self._pages[page_id] = bytes(PAGE_SIZE)
        return page_id

    def read(self, page_id: int) -> bytes:
        """Read one page (counted)."""
        self._check(page_id)
        self.physical_reads += 1
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        """Write one page (counted); data must be exactly PAGE_SIZE."""
        self._check(page_id)
        if len(data) != PAGE_SIZE:
            raise PersistenceError(
                f"page write must be {PAGE_SIZE} bytes, got {len(data)}"
            )
        self.physical_writes += 1
        self._pages[page_id] = bytes(data)

    def sync(self) -> None:
        """Flush the whole store to disk when file-backed."""
        if self._path is not None:
            payload = b"".join(
                self._pages[i] for i in range(self._page_count)
            )
            self._path.write_bytes(payload)

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._page_count:
            raise PersistenceError(f"page {page_id} not allocated")


class BufferPool:
    """LRU frame cache over a :class:`Pager` with pins and write-back.

    The game-server deployment story: the in-memory tier wants the hot
    pages resident; eviction is where checkpoint write amplification
    becomes visible.
    """

    def __init__(self, pager: Pager, capacity: int = 64):
        if capacity < 1:
            raise PersistenceError("buffer pool capacity must be >= 1")
        self.pager = pager
        self.capacity = capacity
        self._frames: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- access -------------------------------------------------------------------

    def get(self, page_id: int, pin: bool = False) -> bytearray:
        """Fetch a page frame (LRU-bumped); optionally pin it."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(page_id)
        else:
            self.misses += 1
            self._ensure_room()
            frame = bytearray(self.pager.read(page_id))
            self._frames[page_id] = frame
        if pin:
            self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return frame

    def unpin(self, page_id: int) -> None:
        """Release one pin."""
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise PersistenceError(f"page {page_id} is not pinned")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def mark_dirty(self, page_id: int) -> None:
        """Record that the cached frame diverges from disk."""
        if page_id not in self._frames:
            raise PersistenceError(f"page {page_id} not resident")
        self._dirty.add(page_id)

    def new_page(self) -> int:
        """Allocate a page and make it resident (dirty, unpinned)."""
        page_id = self.pager.allocate()
        self._ensure_room()
        self._frames[page_id] = bytearray(PAGE_SIZE)
        self._dirty.add(page_id)
        return page_id

    # -- flushing --------------------------------------------------------------------

    def flush_page(self, page_id: int) -> bool:
        """Write one dirty frame back; returns True if a write happened."""
        if page_id in self._dirty and page_id in self._frames:
            self.pager.write(page_id, bytes(self._frames[page_id]))
            self._dirty.discard(page_id)
            return True
        return False

    def flush_all(self) -> int:
        """Write back every dirty frame; returns pages written."""
        written = 0
        for page_id in sorted(self._dirty & set(self._frames)):
            self.pager.write(page_id, bytes(self._frames[page_id]))
            written += 1
        self._dirty.clear()
        return written

    @property
    def dirty_count(self) -> int:
        """Dirty resident pages."""
        return len(self._dirty)

    @property
    def resident_count(self) -> int:
        """Resident frames."""
        return len(self._frames)

    # -- internals ----------------------------------------------------------------------

    def _ensure_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = None
            for page_id in self._frames:  # LRU order
                if self._pins.get(page_id, 0) == 0:
                    victim = page_id
                    break
            if victim is None:
                raise PersistenceError(
                    "buffer pool exhausted: every frame is pinned"
                )
            if victim in self._dirty:
                self.pager.write(victim, bytes(self._frames[victim]))
                self._dirty.discard(victim)
            del self._frames[victim]
            self.evictions += 1


class PagedRecordStore:
    """Slotted-page record storage over a buffer pool.

    Records are opaque byte strings addressed by RID ``(page_id, slot)``.
    Each page: header (count, free offset), slot directory growing from
    the front, record data growing from the back.
    """

    _MAX_RECORD = PAGE_SIZE - _PAGE_HEADER.size - _SLOT.size

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._pages: list[int] = []

    def insert(self, record: bytes) -> tuple[int, int]:
        """Store a record; returns its RID."""
        if len(record) > self._MAX_RECORD:
            raise PersistenceError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"{self._MAX_RECORD}"
            )
        for page_id in self._pages:
            rid = self._try_insert(page_id, record)
            if rid is not None:
                return rid
        page_id = self.pool.new_page()
        frame = self.pool.get(page_id)
        _PAGE_HEADER.pack_into(frame, 0, 0, PAGE_SIZE)
        self.pool.mark_dirty(page_id)
        self._pages.append(page_id)
        rid = self._try_insert(page_id, record)
        assert rid is not None
        return rid

    def read(self, rid: tuple[int, int]) -> bytes:
        """Fetch the record at ``rid``."""
        page_id, slot = rid
        frame = self.pool.get(page_id)
        count, _free = _PAGE_HEADER.unpack_from(frame, 0)
        if not 0 <= slot < count:
            raise PersistenceError(f"no slot {slot} on page {page_id}")
        offset, length = _SLOT.unpack_from(
            frame, _PAGE_HEADER.size + slot * _SLOT.size
        )
        if offset == _TOMBSTONE_OFFSET:
            raise PersistenceError(f"record {rid} was deleted")
        return bytes(frame[offset: offset + length])

    def delete(self, rid: tuple[int, int]) -> None:
        """Tombstone the record at ``rid``."""
        page_id, slot = rid
        frame = self.pool.get(page_id)
        count, _free = _PAGE_HEADER.unpack_from(frame, 0)
        if not 0 <= slot < count:
            raise PersistenceError(f"no slot {slot} on page {page_id}")
        slot_at = _PAGE_HEADER.size + slot * _SLOT.size
        offset, _length = _SLOT.unpack_from(frame, slot_at)
        if offset == _TOMBSTONE_OFFSET:
            raise PersistenceError(f"record {rid} already deleted")
        _SLOT.pack_into(frame, slot_at, _TOMBSTONE_OFFSET, 0)
        self.pool.mark_dirty(page_id)

    def scan(self) -> Iterator[tuple[tuple[int, int], bytes]]:
        """Iterate all live records as ``(rid, bytes)``."""
        for page_id in self._pages:
            frame = self.pool.get(page_id)
            count, _free = _PAGE_HEADER.unpack_from(frame, 0)
            for slot in range(count):
                offset, length = _SLOT.unpack_from(
                    frame, _PAGE_HEADER.size + slot * _SLOT.size
                )
                if offset != _TOMBSTONE_OFFSET:
                    yield (page_id, slot), bytes(frame[offset: offset + length])

    def _try_insert(self, page_id: int, record: bytes) -> tuple[int, int] | None:
        frame = self.pool.get(page_id)
        count, free = _PAGE_HEADER.unpack_from(frame, 0)
        slots_end = _PAGE_HEADER.size + (count + 1) * _SLOT.size
        new_free = free - len(record)
        if new_free < slots_end:
            return None
        frame[new_free: free] = record
        _SLOT.pack_into(
            frame, _PAGE_HEADER.size + count * _SLOT.size, new_free, len(record)
        )
        _PAGE_HEADER.pack_into(frame, 0, count + 1, new_free)
        self.pool.mark_dirty(page_id)
        return (page_id, count)


class PagedBackingStore:
    """Checkpoint store that chains snapshots across slotted pages.

    Implements the :class:`~repro.persistence.checkpoint.BackingStore`
    protocol, so checkpoint write amplification becomes measurable in
    pages (``pager.physical_writes``).
    """

    _CHUNK = PagedRecordStore._MAX_RECORD - 64  # leave room for framing

    def __init__(self, pool: BufferPool | None = None):
        self.pool = pool or BufferPool(Pager(), capacity=64)
        self.records = PagedRecordStore(self.pool)
        self._latest: list[tuple[int, int]] = []
        self.checkpoints_stored = 0

    def store_checkpoint(self, snapshot: dict[str, Any]) -> int:
        encoded = json.dumps(
            snapshot, sort_keys=True, default=_bytes_default
        ).encode("utf-8")
        rids = []
        for start in range(0, max(1, len(encoded)), self._CHUNK):
            rids.append(self.records.insert(encoded[start: start + self._CHUNK]))
        # retire the previous checkpoint's chain
        for rid in self._latest:
            self.records.delete(rid)
        self._latest = rids
        self.checkpoints_stored += 1
        self.pool.flush_all()
        return len(encoded)

    def load_checkpoint(self) -> dict[str, Any] | None:
        if not self._latest:
            return None
        payload = b"".join(self.records.read(rid) for rid in self._latest)
        return json.loads(payload.decode("utf-8"), object_hook=_bytes_hook)


def _bytes_default(obj: Any) -> Any:
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    raise TypeError(f"not serializable: {type(obj).__name__}")


def _bytes_hook(obj: dict) -> Any:
    if set(obj) == {"__bytes__"}:
        return bytes.fromhex(obj["__bytes__"])
    return obj
