"""Crash recovery and lost-work measurement.

Recovery is the standard two-step: load the latest checkpoint snapshot,
then replay WAL records past the snapshot's LSN.  What games care about
beyond correctness is *what the player lost*: actions between the last
durable point and the crash.  :class:`RecoveryReport` itemises that —
count, total importance, and the most important lost action — which is
exactly the metric experiment E8 compares across checkpoint policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import RecoveryError
from repro.obs import Observability, resolve_obs
from repro.persistence.checkpoint import BackingStore
from repro.persistence.memdb import Action, InMemoryGameDB
from repro.persistence.wal import WriteAheadLog


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass."""

    checkpoint_tick: int
    checkpoint_lsn: int
    replayed_actions: int
    recovered_tick: int
    lost_actions: int
    lost_importance: float
    worst_lost_importance: float

    @property
    def clean(self) -> bool:
        """True when nothing was lost."""
        return self.lost_actions == 0


def recover(
    wal: WriteAheadLog,
    store: BackingStore,
    expected_actions: list[Action] | None = None,
    obs: "Observability | None" = None,
) -> tuple[InMemoryGameDB, RecoveryReport]:
    """Rebuild an in-memory DB from checkpoint + log.

    ``expected_actions`` (what the live server had applied before the
    crash, in order) enables exact lost-work accounting; without it the
    loss fields are zeroed.  When ``obs`` (or the session default)
    traces, the replay runs under a ``recovery.replay`` span, and a WAL
    read that stops at corruption emits a ``wal.corruption`` event and
    dumps the flight recorder.
    """
    obs = resolve_obs(obs)
    tracer = obs.tracer
    if not tracer.enabled:
        return _recover_impl(wal, store, expected_actions, obs)
    with tracer.span("recovery.replay", cat="persistence") as sp:
        db, report = _recover_impl(wal, store, expected_actions, obs)
        sp.set(
            replayed=report.replayed_actions,
            recovered_tick=report.recovered_tick,
            lost=report.lost_actions,
        )
    return db, report


def _recover_impl(
    wal: WriteAheadLog,
    store: BackingStore,
    expected_actions: list[Action] | None,
    obs: "Observability",
) -> tuple[InMemoryGameDB, RecoveryReport]:
    snapshot = store.load_checkpoint()
    fresh_wal = WriteAheadLog()
    db = InMemoryGameDB(fresh_wal)
    checkpoint_lsn = 0
    checkpoint_tick = 0
    if snapshot is not None:
        db.restore(snapshot)
        checkpoint_lsn = snapshot.get("applied_lsn", 0)
        checkpoint_tick = snapshot.get("tick", 0)
    replayed = 0
    recovered_tick = checkpoint_tick
    recovered_lsns: set[int] = set()
    wal.corruption_detected = False
    for record in wal.records(from_lsn=checkpoint_lsn + 1):
        action = Action.from_payload(record.payload)
        if action.table not in db.tables():
            db.create_table(action.table)
        db._apply_unlogged(action)
        db.applied_lsn = record.lsn
        recovered_lsns.add(record.lsn)
        recovered_tick = max(recovered_tick, action.tick)
        replayed += 1
    if wal.corruption_detected:
        if obs.tracer.enabled:
            obs.tracer.event(
                "wal.corruption", cat="persistence", last_good_lsn=db.applied_lsn
            )
        obs.flight_dump("wal.corruption")
    lost = 0
    lost_importance = 0.0
    worst = 0.0
    if expected_actions is not None:
        durable_count = checkpoint_lsn + len(recovered_lsns)
        if durable_count > len(expected_actions):
            raise RecoveryError(
                "recovered more actions than the server ever applied — "
                "WAL and expectation are out of sync"
            )
        for action in expected_actions[durable_count:]:
            lost += 1
            lost_importance += action.importance
            worst = max(worst, action.importance)
    report = RecoveryReport(
        checkpoint_tick=checkpoint_tick,
        checkpoint_lsn=checkpoint_lsn,
        replayed_actions=replayed,
        recovered_tick=recovered_tick,
        lost_actions=lost,
        lost_importance=lost_importance,
        worst_lost_importance=worst,
    )
    return db, report


def verify_recovery(
    recovered: InMemoryGameDB, reference: InMemoryGameDB
) -> list[str]:
    """Compare a recovered DB against a reference; returns differences.

    Used by tests: recovery from (checkpoint, full WAL) must equal the
    pre-crash state exactly; recovery from a crashed WAL must equal the
    pre-crash state *minus a suffix of actions*.
    """
    problems: list[str] = []
    if set(recovered.tables()) - set(reference.tables()):
        problems.append(
            f"extra tables: {set(recovered.tables()) - set(reference.tables())}"
        )
    for table in reference.tables():
        if table not in recovered.tables():
            # A table no recovered action referenced is only a problem if
            # the reference actually holds rows in it — table *schemas*
            # live in checkpoints, not the log.
            if reference.row_count(table):
                problems.append(f"missing table {table!r}")
            continue
        ref_rows = dict(reference.rows(table))
        got_rows = dict(recovered.rows(table))
        for key in set(ref_rows) | set(got_rows):
            if ref_rows.get(key) != got_rows.get(key):
                problems.append(
                    f"{table}[{key}]: expected {ref_rows.get(key)!r}, "
                    f"got {got_rows.get(key)!r}"
                )
    return problems
