"""Primary/replica shard fault tolerance: WAL shipping and failover.

Each shard of the clustered world becomes a replication group — a
primary :class:`ReplicatedShardHost` that journals every change to a
:class:`ShardJournal` and ships the durable tail to ``k``
:class:`ReplicaHost` standbys, and a
:class:`ReplicatedClusterCoordinator` that detects dead primaries by
missed heartbeats and promotes the most-caught-up replica.  Semi-sync
acknowledgement (:data:`ACK_SEMISYNC`) guarantees acknowledged writes
survive a primary crash; async (:data:`ACK_ASYNC`) trades a bounded
loss window for less shipping.  Experiment E15 measures both.
"""

from repro.replication.coordinator import (
    FailoverReport,
    GroupStatus,
    ReplicatedClusterCoordinator,
)
from repro.replication.journal import ShardJournal, apply_record
from repro.replication.primary import (
    ACK_ASYNC,
    ACK_SEMISYNC,
    ReplicatedShardHost,
)
from repro.replication.replica import ReplicaHost, replica_endpoint

__all__ = [
    "FailoverReport",
    "GroupStatus",
    "ReplicatedClusterCoordinator",
    "ShardJournal",
    "apply_record",
    "ACK_ASYNC",
    "ACK_SEMISYNC",
    "ReplicatedShardHost",
    "ReplicaHost",
    "replica_endpoint",
]
