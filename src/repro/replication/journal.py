"""The primary's replication journal: logical change records over a WAL.

A :class:`ShardJournal` wraps a :class:`~repro.persistence.wal.WriteAheadLog`
and records every logical state change a primary shard makes — world
mutations (observed through the ``GameWorld`` change hook), ownership
changes, transaction decisions, and a per-frame tick marker.  The
journal is flushed once per global tick (one simulated fsync per frame,
the group-commit boundary), and the durable tail is what log shipping
sends to replicas.

:func:`apply_record` is the other half of the contract: given one
journal payload it replays the change against a standby world.  A
replica that applies a primary's records in LSN order reconstructs the
primary's exact state — ``GameWorld.state_hash()`` equality is the
invariant the replication tests pin down.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.world import GameWorld
from repro.errors import ReplicationError
from repro.persistence.wal import WriteAheadLog


class ShardJournal:
    """Journals a primary shard's logical changes for log shipping.

    Built on :class:`~repro.persistence.wal.WriteAheadLog` with
    ``auto_flush`` off: the shard host calls :meth:`flush` exactly once
    per tick, so a crash loses at most the current frame's records —
    the tick-granular atomicity the failover protocol relies on.
    """

    def __init__(self, obs: Any = None, name: str = "") -> None:
        self.wal = WriteAheadLog(auto_flush=False)
        if obs is not None:
            self.wal.bind_obs(obs, wal=name or "journal")

    # -- writing ------------------------------------------------------------------

    def log_change(
        self,
        op: str,
        entity: int,
        component: str | None,
        payload: Mapping[str, Any] | None,
    ) -> int:
        """Record one world mutation (the ``GameWorld`` change-hook feed)."""
        record: dict[str, Any] = {"op": op, "e": entity}
        if component is not None:
            record["c"] = component
        if op in ("attach", "update") and payload is not None:
            record["v"] = dict(payload)
        return self.wal.append(record)

    def log_own(self, entity: int) -> int:
        """Record that this shard took ownership of an entity."""
        return self.wal.append({"op": "own", "e": entity})

    def log_disown(self, entity: int) -> int:
        """Record that this shard released ownership of an entity."""
        return self.wal.append({"op": "disown", "e": entity})

    def log_tick(self, tick: int) -> int:
        """Record the end of one world frame (the commit boundary)."""
        return self.wal.append({"op": "tick", "t": tick})

    def log_txn(self, txn_id: int, commit: bool) -> int:
        """Record a transaction decision applied at this shard.

        Replicas collect these markers into their ``applied_txns`` set,
        which is how failover knows whether a committed decision's
        writes survived or must be re-applied.
        """
        return self.wal.append({"op": "txn", "id": txn_id, "commit": commit})

    def log_schema(self, kind: str, record: Mapping[str, Any]) -> int:
        """Record one catalog event (alter begin/batch/commit).

        ``alter_batch`` records name the exact entity ids the primary
        backfilled that step, so a replica replaying the journal
        migrates the same rows in the same order — catalog state is
        part of the ``state_hash`` equality contract.
        """
        return self.wal.append({"op": "schema", "k": kind, "r": dict(record)})

    def flush(self) -> int:
        """Make this tick's records durable; returns records flushed."""
        return self.wal.flush()

    @property
    def flushed_lsn(self) -> int:
        """Highest durable LSN (0 when nothing is durable yet)."""
        return self.wal.flushed_lsn

    def stats(self) -> "StatsRow":
        """Durable/pending record counts as a :class:`StatsRow` snapshot."""
        from repro.obs.metrics import StatsRow

        return StatsRow(
            ("durable", "pending", "flushed_lsn"),
            durable=self.wal.durable_count(),
            pending=self.wal.pending_count(),
            flushed_lsn=self.flushed_lsn,
        )

    # -- shipping -----------------------------------------------------------------

    def ship_since(self, after_lsn: int) -> tuple[tuple[int, dict[str, Any]], ...]:
        """Durable ``(lsn, payload)`` pairs with LSN > ``after_lsn``."""
        return tuple(
            (rec.lsn, rec.payload)
            for rec in self.wal.records(from_lsn=after_lsn + 1)
        )


def apply_record(
    payload: Mapping[str, Any],
    world: GameWorld,
    owned: set[int],
    applied_txns: set[int],
) -> None:
    """Replay one journal payload against a standby world.

    Mutates ``world`` (the replica's state), ``owned`` (its view of the
    primary's ownership set), and ``applied_txns`` (decision markers).
    Raises :class:`~repro.errors.ReplicationError` on an unknown op —
    a record from a newer protocol version, which a standby must not
    silently skip.
    """
    op = payload["op"]
    if op == "spawn":
        world.restore_entity(payload["e"], {})
    elif op == "destroy":
        world.destroy(payload["e"])
    elif op == "attach":
        world.attach(payload["e"], payload["c"], **payload.get("v", {}))
    elif op == "detach":
        world.detach(payload["e"], payload["c"])
    elif op == "update":
        world.set(payload["e"], payload["c"], **payload.get("v", {}))
    elif op == "own":
        owned.add(payload["e"])
    elif op == "disown":
        owned.discard(payload["e"])
    elif op == "tick":
        world.clock.rewind_to(payload["t"])
    elif op == "txn":
        applied_txns.add(payload["id"])
    elif op == "schema":
        world.catalog.apply_journal_record(payload["k"], payload["r"])
    else:
        raise ReplicationError(f"unknown journal op {op!r}")
