"""Replica host: a standby world that replays a primary's journal.

A :class:`ReplicaHost` holds a standby :class:`~repro.core.world.GameWorld`
for one shard.  It never runs systems and never originates writes; its
only inputs are :class:`~repro.net.protocol.WalShip` batches from its
primary, which it applies in strict LSN order (buffering nothing — a
gap means the batch is ignored and the stagnating ack tells the primary
to re-ship).  Each applied batch is also appended to the replica's own
WAL, so "applied" means *durable at the replica*, which is exactly the
guarantee semi-sync acknowledgement claims.

Because the standby world is a faithful copy, a replica can serve
read-only interest queries (who is near this point?) while the primary
does the writing — the classic read-scaling use of log shipping, and
the freshness the E15 benchmark measures.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.component import ComponentSchema
from repro.core.world import GameWorld
from repro.errors import ReplicationError
from repro.net.protocol import WalAck, WalShip
from repro.net.simnet import Message, SimNetwork
from repro.persistence.wal import WriteAheadLog
from repro.replication.journal import apply_record


def replica_endpoint(shard_id: int, idx: int) -> str:
    """Network endpoint name for replica ``idx`` of a shard."""
    return f"replica:{shard_id}:{idx}"


class ReplicaHost:
    """One replica of a shard: standby world + local WAL + ack stream."""

    def __init__(
        self,
        shard_id: int,
        idx: int,
        net: SimNetwork,
        schemas: Iterable[ComponentSchema],
        dt: float = 1.0 / 30.0,
    ):
        self.shard_id = shard_id
        self.idx = idx
        self.endpoint = replica_endpoint(shard_id, idx)
        self.net = net
        self.dt = dt
        self._schemas = list(schemas)
        self.world = self._fresh_world()
        self.owned: set[int] = set()
        self.wal = WriteAheadLog(auto_flush=False)
        self.applied_lsn = 0
        self.applied_txns: set[int] = set()
        self.crashed = False
        self.batches_applied = 0
        self.gaps_detected = 0
        net.add_endpoint(self.endpoint)

    def _fresh_world(self) -> GameWorld:
        world = GameWorld(self.dt)
        for schema in self._schemas:
            world.catalog.define(schema)
        return world

    # -- log application ----------------------------------------------------------

    def process_inbox(self, messages: Iterable[Message]) -> None:
        """Apply this tick's shipped batches and acknowledge progress."""
        got_ship = False
        for msg in messages:
            payload = msg.payload
            if not isinstance(payload, WalShip):
                raise ReplicationError(
                    f"replica {self.endpoint}: unexpected message {msg!r}"
                )
            self._apply_batch(payload)
            got_ship = True
        if got_ship:
            self._ack()

    def _apply_batch(self, ship: WalShip) -> None:
        """Apply a shipped batch in LSN order; ignore gaps and overlaps.

        Records at or below ``applied_lsn`` are duplicates from a
        re-ship and are skipped; a record that would skip an LSN is a
        gap (an earlier batch was dropped), so the rest of the batch is
        discarded — the primary re-ships from our acked watermark.
        """
        applied_any = False
        for lsn, payload in ship.records:
            if lsn <= self.applied_lsn:
                continue
            if lsn != self.applied_lsn + 1:
                self.gaps_detected += 1
                break
            self.wal.append(payload)
            apply_record(payload, self.world, self.owned, self.applied_txns)
            self.applied_lsn = lsn
            applied_any = True
        if applied_any:
            self.wal.flush()
            self.batches_applied += 1

    def _ack(self) -> None:
        ack = WalAck(
            shard=self.shard_id,
            replica=self.idx,
            applied_lsn=self.applied_lsn,
            tick=self.net.now,
        )
        self.net.send(self.endpoint, f"shard:{self.shard_id}", ack, ack.wire_size())

    # -- read-only queries --------------------------------------------------------

    def entities_near(self, cx: float, cy: float, radius: float) -> list[int]:
        """Interest query served from the standby: entity ids in range."""
        return (
            self.world.query("Position").within(cx, cy, radius).execute().ids
        )

    def entity_count(self) -> int:
        """Live entities in the standby world."""
        return self.world.entity_count

    def state_hash(self) -> str:
        """Digest of the standby world (compared against the primary's)."""
        return self.world.state_hash()

    # -- lifecycle ----------------------------------------------------------------

    def reset(self) -> None:
        """Discard all standby state and re-sync from LSN zero.

        Used after a failover: the promoted primary starts a fresh
        journal (a new epoch), so surviving replicas drop their old
        state and rebuild from the new journal's first record.
        """
        self.world = self._fresh_world()
        self.owned = set()
        self.wal = WriteAheadLog(auto_flush=False)
        self.applied_lsn = 0
        self.applied_txns = set()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReplicaHost({self.endpoint}, applied_lsn={self.applied_lsn}, "
            f"entities={self.world.entity_count})"
        )
