"""Fault-tolerant cluster coordinator: heartbeats, failover, re-sync.

:class:`ReplicatedClusterCoordinator` extends the sharded-world
:class:`~repro.cluster.coordinator.ClusterCoordinator` so that every
shard is a **replication group**: a
:class:`~repro.replication.primary.ReplicatedShardHost` primary that
journals and ships its WAL, plus ``replication_factor`` standby
:class:`~repro.replication.replica.ReplicaHost` copies.

The global tick gains four phases: scheduled faults are applied (via an
optional :class:`~repro.net.faults.FaultInjector`), dead primaries are
detected by missed heartbeats, live primaries tick and ship their logs,
and replicas apply what arrived.  All ordering is fixed, so a run with
a fault plan replays tick-for-tick under the same seed.

**Failover** (single failure per group at a time): when a primary's
heartbeats go silent past ``heartbeat_timeout`` ticks, the coordinator
fences the old endpoint, promotes the most-caught-up surviving replica
(highest applied LSN; ties to the lowest index), rebuilds a fresh
primary from its standby state — re-journaling everything as a new
epoch — and repairs the cluster control plane: in-flight handoffs are
cancelled or re-driven from retained eviction payloads, transactions
interrupted mid-2PC are aborted (or their committed decisions
re-applied, guarded by the replica's ``txn`` markers), entities whose
records never shipped are declared lost (impossible in semi-sync), and
the replica group is reset and re-provisioned to full strength.  The
entity directory needs no rewrite — it names shard *ids*, and the
promoted host takes over the dead primary's id and endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.shard import ShardHost, shard_endpoint
from repro.core.component import ComponentSchema
from repro.errors import ReplicationError
from repro.net.faults import FaultInjector
from repro.net.protocol import HandoffResend, Heartbeat, TxnDecision
from repro.net.simnet import Message
from repro.obs import accept_context
from repro.replication.primary import (
    ACK_ASYNC,
    ACK_SEMISYNC,
    ReplicatedShardHost,
)
from repro.replication.replica import ReplicaHost


@dataclass(frozen=True)
class FailoverReport:
    """What one failover cost: detection latency, loss, and repairs."""

    shard: int
    last_heartbeat_tick: int
    detected_tick: int
    promoted_replica: int
    promoted_applied_lsn: int
    promoted_state_hash: str
    records_lost: int
    entities_lost: int
    stale_copies_dropped: int
    handoffs_cancelled: int
    handoffs_resent: int
    txns_aborted: int
    txns_recovered: int

    @property
    def unavailable_ticks(self) -> int:
        """Ticks the shard was dark: last heartbeat until promotion."""
        return self.detected_tick - self.last_heartbeat_tick


@dataclass
class GroupStatus:
    """Observability snapshot of one replication group."""

    shard: int
    flushed_lsn: int
    acknowledged_lsn: int
    replica_lsns: dict[str, int] = field(default_factory=dict)
    bytes_shipped: int = 0


class ReplicatedClusterCoordinator(ClusterCoordinator):
    """A sharded world where every shard survives its primary's crash."""

    def __init__(
        self,
        shards: int,
        placement: Any,
        schemas: Any,
        *,
        replication_factor: int = 1,
        ack_mode: str = ACK_SEMISYNC,
        ship_interval: int = 4,
        heartbeat_timeout: int = 4,
        injector: FaultInjector | None = None,
        **kwargs: Any,
    ):
        if replication_factor < 0:
            raise ReplicationError("replication_factor must be >= 0")
        if ack_mode not in (ACK_ASYNC, ACK_SEMISYNC):
            raise ReplicationError(f"unknown ack mode {ack_mode!r}")
        if ship_interval < 1:
            raise ReplicationError("ship_interval must be positive")
        if heartbeat_timeout < 2:
            raise ReplicationError("heartbeat_timeout must be >= 2")
        if ack_mode == ACK_SEMISYNC and replication_factor < 1:
            raise ReplicationError("semi-sync needs at least one replica")
        self.replication_factor = replication_factor
        self.ack_mode = ack_mode
        self.ship_interval = ship_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.injector = injector
        self.failovers: list[FailoverReport] = []
        #: Called with each FailoverReport right after promotion — the
        #: durable tier registers its promote-then-replay-outbox step
        #: here, so event redelivery rides the same control path as the
        #: world-state failover itself.
        self.failover_hooks: list[Any] = []
        self._last_heartbeat: dict[int, int] = {}
        self._last_flushed: dict[int, int] = {}
        super().__init__(shards, placement, schemas, **kwargs)
        self.replicas: dict[int, list[ReplicaHost]] = {}
        self._replica_counter: dict[int, int] = {}
        for host in self.shards:
            group: list[ReplicaHost] = []
            for idx in range(replication_factor):
                group.append(self._provision_replica(host, idx))
            self.replicas[host.shard_id] = group
            self._replica_counter[host.shard_id] = replication_factor - 1
            self._last_heartbeat[host.shard_id] = 0
            self._last_flushed[host.shard_id] = 0

    # -- topology -----------------------------------------------------------------

    def _make_shard(
        self, shard_id: int, schemas: list[ComponentSchema]
    ) -> ShardHost:
        return ReplicatedShardHost(
            shard_id, self.net, schemas, self.dt, obs=self.obs
        )

    def _provision_replica(
        self, host: ReplicatedShardHost, idx: int
    ) -> ReplicaHost:
        replica = ReplicaHost(
            host.shard_id, idx, self.net, self._schemas, self.dt
        )
        self.net.connect(host.endpoint, replica.endpoint, self._link)
        host.attach_replica(replica.endpoint)
        return replica

    def replica(self, shard_id: int, idx: int) -> ReplicaHost:
        """The replica with the given index in a shard's group."""
        for rep in self.replicas[shard_id]:
            if rep.idx == idx:
                return rep
        raise ReplicationError(f"shard {shard_id} has no replica {idx}")

    # -- the replicated tick ------------------------------------------------------

    def _on_coord_message(self, msg: Message) -> None:
        payload = msg.payload
        if isinstance(payload, Heartbeat):
            if msg.ctx is not None:
                accept_context(self.obs.tracer, msg.ctx, name="net.Heartbeat")
            self._last_heartbeat[payload.shard] = self.net.now
            self._last_flushed[payload.shard] = payload.flushed_lsn
        else:
            super()._on_coord_message(msg)

    def _step_shards(self) -> None:
        now = self.net.now
        if self.injector is not None:
            for endpoint in self.injector.apply(self.net, now):
                self._mark_crashed(endpoint)
        self._detect_failures()
        ship_now = (
            self.ack_mode == ACK_SEMISYNC or now % self.ship_interval == 0
        )
        for host in self.shards:
            if host.crashed:
                continue
            host.process_inbox(self.net.receive(host.endpoint))
            if self._may_tick(host.shard_id):
                host.tick()
            host.replicate(ship_now)
        for host in self.shards:
            for rep in self.replicas[host.shard_id]:
                if rep.crashed:
                    continue
                rep.process_inbox(self.net.receive(rep.endpoint))

    def _mark_crashed(self, endpoint: str) -> None:
        """Record an injected crash; the network side is already down."""
        for host in self.shards:
            if host.endpoint == endpoint:
                host.crashed = True
                self.net.receive(endpoint)  # discard undelivered inbox
                self._record_crash(endpoint)
                return
        for group in self.replicas.values():
            for rep in group:
                if rep.endpoint == endpoint:
                    rep.crashed = True
                    self.net.receive(endpoint)
                    self._record_crash(endpoint)
                    return
        raise ReplicationError(f"crash fault on unknown endpoint {endpoint!r}")

    def _record_crash(self, endpoint: str) -> None:
        """Flight-record an injected crash (event + automatic dump)."""
        if self.obs.tracer.enabled:
            self.obs.tracer.event(
                "fault.crash", cat="fault", endpoint=endpoint, tick=self.net.now
            )
        self.obs.flight_dump(f"crash:{endpoint}")

    def _maybe_repartition(self) -> None:
        # Rebalancing against a dead shard would strand handoffs; hold
        # still until failover restores the group.
        if any(host.crashed for host in self.shards):
            return
        super()._maybe_repartition()

    def _quiet(self) -> bool:
        # Steady-state replication keeps the wire busy forever, so the
        # empty-network condition of the base class can never hold here.
        return (
            not self._in_flight
            and not self._pending_specs
            and all(r.finished for r in self._txns.values())
            and not any(host.deferred_handoffs for host in self.shards)
            and not any(host.crashed for host in self.shards)
            and not self._schema_rollouts
        )

    # -- failure detection and failover -------------------------------------------

    def _detect_failures(self) -> None:
        for host in list(self.shards):
            silent = self.net.now - self._last_heartbeat[host.shard_id]
            if silent > self.heartbeat_timeout:
                self._failover(host.shard_id)

    def _failover(self, shard_id: int) -> FailoverReport:
        """Promote the most-caught-up replica over a silent primary.

        When tracing, the whole promotion runs under a ``failover`` span
        and the flight recorder dumps right after it closes — the span
        is in the dump, which is the artifact the E16 bench validates.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._failover_impl(shard_id)
        with tracer.span("failover", cat="replication", shard=shard_id) as sp:
            report = self._failover_impl(shard_id)
            sp.set(
                promoted_replica=report.promoted_replica,
                records_lost=report.records_lost,
                entities_lost=report.entities_lost,
                unavailable_ticks=report.unavailable_ticks,
            )
        self.obs.flight_dump(f"failover:shard{shard_id}")
        return report

    def _failover_impl(self, shard_id: int) -> FailoverReport:
        old = self.shards[shard_id]
        endpoint = old.endpoint
        detected_tick = self.net.now
        last_heartbeat = self._last_heartbeat[shard_id]
        # Fence: the old primary never takes another tick, even if it
        # was merely partitioned rather than dead.
        self.net.set_down(endpoint)
        old.crashed = True
        group = [r for r in self.replicas[shard_id] if not r.crashed]
        if not group:
            raise ReplicationError(
                f"shard {shard_id} lost its primary and every replica"
            )
        best = max(group, key=lambda r: (r.applied_lsn, -r.idx))
        snapshot = best.world.snapshot()
        # Rebuild a fresh primary on the dead shard's id and endpoint;
        # restoring the standby state re-journals it as a new epoch.
        self.net.set_up(endpoint)
        self.net.receive(endpoint)  # discard messages addressed to the dead
        host = self._make_shard(shard_id, self._schemas)
        assert isinstance(host, ReplicatedShardHost)
        # Catalog first, then state: the replica may have applied schema
        # alters (even be mid-backfill) that the fresh host's seed
        # schemas predate.  Catching up journals the alters into the new
        # epoch *before* the restored rows, so the re-journaled state is
        # replayable — and the restored snapshot, whose rows the standby
        # serialized at its catalog version, lands on matching shapes.
        host.world.catalog.catch_up(best.world.catalog.schema_state())
        host.world.restore(snapshot)
        promoted_hash = host.world.state_hash()
        host.owned = set(best.owned)
        host.stats.entities_owned = len(host.owned)
        for entity in sorted(host.owned):
            host.journal.log_own(entity)
        host.applied_txns = set(best.applied_txns)
        self.shards[shard_id] = host
        cancelled, resent = self._reconcile_handoffs(shard_id, host)
        aborted, recovered = self._reconcile_txns(shard_id, host)
        lost, stale = self._reconcile_directory(shard_id, host)
        self._reconcile_schema(shard_id, host)
        self._rebuild_group(shard_id, host, best)
        self._last_heartbeat[shard_id] = self.net.now
        report = FailoverReport(
            shard=shard_id,
            last_heartbeat_tick=last_heartbeat,
            detected_tick=detected_tick,
            promoted_replica=best.idx,
            promoted_applied_lsn=best.applied_lsn,
            promoted_state_hash=promoted_hash,
            records_lost=max(
                0, self._last_flushed[shard_id] - best.applied_lsn
            ),
            entities_lost=lost,
            stale_copies_dropped=stale,
            handoffs_cancelled=cancelled,
            handoffs_resent=resent,
            txns_aborted=aborted,
            txns_recovered=recovered,
        )
        self._last_flushed[shard_id] = 0
        self.failovers.append(report)
        for hook in self.failover_hooks:
            hook(report)
        return report

    def _reconcile_handoffs(
        self, shard_id: int, host: ReplicatedShardHost
    ) -> tuple[int, int]:
        """Repair in-flight handoffs that touched the dead primary.

        Source died still owning the entity (per the replica): the
        eviction never happened, so the handoff simply never started —
        cancel it.  Destination died before the install survived: the
        source still retains the eviction payload (it drops it only on
        ``HandoffComplete``), so ask it to re-send to the promoted host.
        """
        cancelled = resent = 0
        for entity in sorted(self._in_flight):
            rec = self._in_flight[entity]
            if rec.src_shard == shard_id and entity in host.owned:
                del self._in_flight[entity]
                cancelled += 1
            elif rec.dst_shard == shard_id and entity not in host.owned:
                self._send(
                    shard_endpoint(rec.src_shard),
                    HandoffResend(
                        entity=entity, dst_shard=shard_id, tick=self.net.now
                    ),
                )
                resent += 1
        return cancelled, resent

    def _reconcile_txns(
        self, shard_id: int, host: ReplicatedShardHost
    ) -> tuple[int, int]:
        """Resolve transactions interrupted by the primary's crash.

        Unfinished transactions involving the dead shard abort (other
        participants get an abort decision to release their prepare
        locks), except a single-shard fast path whose execution provably
        survived (its ``txn`` marker reached the replica).  Committed
        decisions that died on the wire are re-applied at the promoted
        host — the marker's absence is the proof they never landed, and
        decision writes are absolute values, so this is idempotent.
        """
        aborted = recovered = 0
        for txn_id in sorted(self._txns):
            record = self._txns[txn_id]
            if record.finished:
                if (
                    record.committed
                    and shard_id in record.writes_by_shard
                    and txn_id not in host.applied_txns
                ):
                    host.apply_recovered_writes(
                        txn_id, record.writes_by_shard[shard_id]
                    )
                    recovered += 1
                continue
            if shard_id not in record.shard_keys:
                continue
            if record.local and txn_id in host.applied_txns:
                self._finish(record, committed=True)
                continue
            for other in sorted(record.shard_keys):
                if other != shard_id:
                    self._send(
                        shard_endpoint(other),
                        TxnDecision(
                            txn_id=txn_id,
                            commit=False,
                            writes={},
                            tick=self.net.now,
                        ),
                    )
            self._finish(record, committed=False)
            aborted += 1
        return aborted, recovered

    def _reconcile_directory(
        self, shard_id: int, host: ReplicatedShardHost
    ) -> tuple[int, int]:
        """Settle ownership against what actually survived the crash.

        Entities the directory placed at the dead shard but whose
        records never reached the replica are lost (async's loss
        window; semi-sync keeps this at zero).  Conversely a stale
        surviving copy of an entity the directory has already moved
        elsewhere is dropped — otherwise two shards would own it.
        """
        lost = 0
        for entity in sorted(self.directory):
            if self.directory[entity] != shard_id or entity in self._in_flight:
                continue
            if entity not in host.owned:
                del self.directory[entity]
                lost += 1
        stale = 0
        for entity in sorted(host.owned):
            owner = self.directory.get(entity)
            in_flight = entity in self._in_flight
            if owner is not None and owner != shard_id and not in_flight:
                host.world.destroy(entity)
                host.owned.discard(entity)
                host.journal.log_disown(entity)
                stale += 1
        host.stats.entities_owned = len(host.owned)
        return lost, stale

    def _rebuild_group(
        self, shard_id: int, host: ReplicatedShardHost, promoted: ReplicaHost
    ) -> None:
        """Reset survivors to the new epoch and restore the group size."""
        survivors = [
            r
            for r in self.replicas[shard_id]
            if r is not promoted and not r.crashed
        ]
        for rep in survivors:
            rep.reset()
            host.attach_replica(rep.endpoint)
        self._replica_counter[shard_id] += 1
        fresh = self._provision_replica(host, self._replica_counter[shard_id])
        self.replicas[shard_id] = survivors + [fresh]

    # -- observability ------------------------------------------------------------

    def replication_stats(self) -> dict[int, GroupStatus]:
        """Per-group progress: flushed/acked LSNs and bytes shipped."""
        out: dict[int, GroupStatus] = {}
        for host in self.shards:
            assert isinstance(host, ReplicatedShardHost)
            status = GroupStatus(
                shard=host.shard_id,
                flushed_lsn=host.journal.flushed_lsn,
                acknowledged_lsn=host.acknowledged_lsn,
            )
            for rep in self.replicas[host.shard_id]:
                status.replica_lsns[rep.endpoint] = rep.applied_lsn
                link = self.net.link_stats.get((host.endpoint, rep.endpoint))
                if link is not None:
                    status.bytes_shipped += link.bytes_sent
            out[host.shard_id] = status
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReplicatedClusterCoordinator(shards={len(self.shards)}, "
            f"k={self.replication_factor}, mode={self.ack_mode}, "
            f"failovers={len(self.failovers)})"
        )
