"""Primary shard host: a `ShardHost` that journals and ships its log.

:class:`ReplicatedShardHost` extends the cluster's
:class:`~repro.cluster.shard.ShardHost` with a write-ahead
:class:`~repro.replication.journal.ShardJournal`.  Every world mutation
(via the ``GameWorld`` change hook), ownership change, and transaction
decision is journaled; once per global tick the journal is flushed (one
fsync per frame) and the durable tail is shipped to the shard's
replicas over the simulated network.

Two acknowledgement modes, chosen by the coordinator:

* **async** — ship every ``ship_interval`` ticks; a write is
  "acknowledged" as soon as it is locally durable.  Cheap, but a crash
  loses the unshipped window.
* **semi-sync** — ship every tick; :attr:`acknowledged_lsn` is the
  highest LSN some replica has applied *and made durable*.  Failover
  promotes the most-caught-up replica, so acknowledged writes survive
  a primary crash — the zero-loss guarantee the acceptance tests pin.

Re-shipping is ack-driven: a replica whose ack stagnates below what we
shipped (a dropped batch) gets the tail re-sent from its acked
watermark, and replicas apply idempotently.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.cluster.shard import COORD_ENDPOINT, ShardHost
from repro.net.protocol import Heartbeat, WalAck, WalShip
from repro.net.simnet import Message
from repro.obs import emit_context
from repro.replication.journal import ShardJournal

#: Ship-every-interval mode: acknowledged == locally durable.
ACK_ASYNC = "async"
#: Ship-every-tick mode: acknowledged == durable on some replica.
ACK_SEMISYNC = "semisync"

#: Ticks an ack may stagnate below the shipped watermark before the
#: primary assumes a dropped batch and re-ships from the acked LSN.
RESHIP_AFTER_TICKS = 3


class ReplicatedShardHost(ShardHost):
    """A shard primary that journals every change and ships its WAL."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.journal = ShardJournal(obs=self.obs, name=f"shard:{self.shard_id}")
        self.applied_txns: set[int] = set()
        self.crashed = False
        self.replica_endpoints: list[str] = []
        self._acked: dict[str, int] = {}
        self._shipped: dict[str, int] = {}
        self._ack_progress_tick: dict[str, int] = {}
        self.world.add_change_hook(self._journal_change)
        # Registered after construction on purpose: the constructor's
        # catalog defines are part of the shard's seed (replicas make
        # the same defines themselves), so only later catalog events —
        # alters and their backfill batches — are journaled.
        self.world.catalog.add_hook(self._journal_schema)

    # -- journaling hooks ---------------------------------------------------------

    def _journal_change(
        self,
        op: str,
        entity: int,
        component: str | None,
        payload: Mapping[str, Any] | None,
    ) -> None:
        self.journal.log_change(op, entity, component, payload)

    def _journal_schema(self, kind: str, record: Mapping[str, Any]) -> None:
        if kind == "define":
            return  # seed schemas are replicated by construction, not log
        self.journal.log_schema(kind, record)

    def install_entity(
        self, entity: int, components: Mapping[str, Mapping[str, Any]]
    ) -> None:
        """Install an entity and journal the ownership change."""
        super().install_entity(entity, components)
        self.journal.log_own(entity)

    def evict_entity(self, entity: int, dst_shard: int) -> dict[str, dict[str, Any]]:
        """Evict an entity and journal the ownership release."""
        payload = super().evict_entity(entity, dst_shard)
        self.journal.log_disown(entity)
        return payload

    def _on_decision(self, decision: Any) -> None:
        super()._on_decision(decision)
        self.journal.log_txn(decision.txn_id, decision.commit)
        self.applied_txns.add(decision.txn_id)

    def _vote(
        self,
        prepare: Any,
        commit: bool,
        reads: Mapping[Hashable, Any],
        applied: bool = False,
        ctx: Any = None,
    ) -> None:
        # Single-shard fast path: the transaction executed inside
        # _on_prepare, so the marker goes down with this tick's records.
        if applied and commit:
            self.journal.log_txn(prepare.txn_id, True)
            self.applied_txns.add(prepare.txn_id)
        super()._vote(prepare, commit, reads, applied, ctx)

    def apply_recovered_writes(
        self, txn_id: int, writes: Mapping[Hashable, Any]
    ) -> None:
        """Failover repair: apply a committed decision that died in flight.

        The coordinator computed and sent these writes to the old
        primary, which crashed before applying (the replica has no
        ``txn`` marker for them).  Values are absolute, so applying them
        here — journaled like any other change — is idempotent.
        """
        for key in sorted(writes, key=repr):
            entity, component, fieldname = key
            self.world.set(entity, component, **{fieldname: writes[key]})
        self.journal.log_txn(txn_id, True)
        self.applied_txns.add(txn_id)

    # -- ack handling -------------------------------------------------------------

    def process_inbox(self, messages: Iterable[Message]) -> None:
        """Absorb replica acks, then handle cluster protocol as usual."""
        rest = []
        for msg in messages:
            if isinstance(msg.payload, WalAck):
                self._on_wal_ack(msg.payload)
            else:
                rest.append(msg)
        super().process_inbox(rest)

    def _on_wal_ack(self, ack: WalAck) -> None:
        endpoint = f"replica:{self.shard_id}:{ack.replica}"
        if ack.applied_lsn > self._acked.get(endpoint, 0):
            self._acked[endpoint] = ack.applied_lsn
            self._ack_progress_tick[endpoint] = self.net.now

    @property
    def acknowledged_lsn(self) -> int:
        """Highest LSN durable on at least one replica (semi-sync watermark)."""
        if not self.replica_endpoints:
            return 0
        return max(self._acked.get(ep, 0) for ep in self.replica_endpoints)

    def replica_lag(self) -> dict[str, int]:
        """Per-replica records between our flushed LSN and their ack."""
        flushed = self.journal.flushed_lsn
        return {
            ep: flushed - self._acked.get(ep, 0)
            for ep in self.replica_endpoints
        }

    # -- log shipping -------------------------------------------------------------

    def attach_replica(self, endpoint: str) -> None:
        """Register a replica endpoint as a shipping target."""
        self.replica_endpoints.append(endpoint)
        self._acked.setdefault(endpoint, 0)
        self._shipped.setdefault(endpoint, 0)
        self._ack_progress_tick.setdefault(endpoint, self.net.now)

    def replicate(self, ship_now: bool) -> None:
        """Close this tick's journal window and ship/heartbeat.

        Called by the coordinator after :meth:`tick`: journal the frame
        boundary, flush (the one fsync per frame), ship the durable tail
        to each replica when ``ship_now``, and heartbeat the coordinator.
        Shipping restarts from a replica's acked LSN when its acks have
        stagnated — the dropped-batch repair path.
        """
        self.journal.log_tick(self.world.clock.tick)
        self.journal.flush()
        if ship_now:
            tracer = self.obs.tracer
            if tracer.enabled and self.replica_endpoints:
                with tracer.span(
                    "repl.ship",
                    cat="replication",
                    shard=self.shard_id,
                    replicas=len(self.replica_endpoints),
                ):
                    for endpoint in self.replica_endpoints:
                        self._ship_to(endpoint)
            else:
                for endpoint in self.replica_endpoints:
                    self._ship_to(endpoint)
        heartbeat = Heartbeat(
            shard=self.shard_id,
            tick=self.net.now,
            flushed_lsn=self.journal.flushed_lsn,
        )
        tracer = self.obs.tracer
        ctx = emit_context(tracer, name="net.Heartbeat") if tracer.enabled else None
        self.net.send(
            self.endpoint, COORD_ENDPOINT, heartbeat, heartbeat.wire_size(),
            ctx,
        )

    def _ship_to(self, endpoint: str) -> None:
        acked = self._acked.get(endpoint, 0)
        shipped = self._shipped.get(endpoint, 0)
        start = shipped
        if acked < shipped and (
            self.net.now - self._ack_progress_tick.get(endpoint, 0)
            > RESHIP_AFTER_TICKS
        ):
            start = acked
            self._ack_progress_tick[endpoint] = self.net.now
        records = self.journal.ship_since(start)
        if not records:
            return
        ship = WalShip(shard=self.shard_id, records=records, tick=self.net.now)
        tracer = self.obs.tracer
        ctx = emit_context(tracer, name="net.WalShip") if tracer.enabled else None
        self.net.send(self.endpoint, endpoint, ship, ship.wire_size(), ctx)
        self._shipped[endpoint] = max(shipped, records[-1][0])

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ReplicatedShardHost(id={self.shard_id}, "
            f"owned={len(self.owned)}, flushed={self.journal.flushed_lsn}, "
            f"acked={self.acknowledged_lsn})"
        )
