"""Exception hierarchy for the ``repro`` game-database library.

Every layer of the library raises exceptions derived from :class:`ReproError`
so callers can catch all library errors with a single except clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Core entity/table/query errors
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A component schema is malformed, or data violates the schema."""


class UnknownComponentError(ReproError):
    """The named component type has not been registered with the world."""


class UnknownEntityError(ReproError):
    """The entity id does not exist (never spawned or already destroyed)."""


class ComponentMissingError(ReproError):
    """The entity exists but does not carry the requested component."""


class DuplicateComponentError(ReproError):
    """An entity already has the component that is being attached."""


class QueryError(ReproError):
    """A declarative query is malformed or cannot be planned."""


class IndexError_(ReproError):
    """An index operation failed (duplicate index, unknown field, ...)."""


class AggregateError(ReproError):
    """An aggregate view is misconfigured or was queried inconsistently."""


# ---------------------------------------------------------------------------
# Scripting errors
# ---------------------------------------------------------------------------


class ScriptError(ReproError):
    """Base class for scripting-language failures."""


class LexError(ScriptError):
    """The script source contains an unrecognised token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ScriptError):
    """The script source is syntactically invalid."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class RestrictionError(ScriptError):
    """The script uses a construct forbidden by the language profile."""


class ScriptRuntimeError(ScriptError):
    """The script failed while executing."""


class BudgetExceededError(ScriptRuntimeError):
    """The script exceeded its per-frame instruction budget."""


# ---------------------------------------------------------------------------
# Content pipeline errors
# ---------------------------------------------------------------------------


class ContentError(ReproError):
    """Base class for content-pipeline failures."""


class ValidationError(ContentError):
    """Content data failed schema validation."""


class TemplateError(ContentError):
    """An entity template is malformed or has a broken inheritance chain."""


class UISpecError(ContentError):
    """An XML UI specification could not be parsed or validated."""


# ---------------------------------------------------------------------------
# Spatial errors
# ---------------------------------------------------------------------------


class SpatialError(ReproError):
    """A spatial structure was misused (bad bounds, degenerate geometry...)."""


class NavMeshError(SpatialError):
    """A navigation mesh is malformed, or a path query is unanswerable."""


# ---------------------------------------------------------------------------
# Consistency / transaction errors
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and must be retried by the caller."""

    def __init__(self, message: str, reason: str = "conflict"):
        super().__init__(message)
        self.reason = reason


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""

    def __init__(self, message: str):
        super().__init__(message, reason="deadlock")


class ValidationFailure(TransactionAborted):
    """Optimistic validation found a conflicting concurrent commit."""

    def __init__(self, message: str):
        super().__init__(message, reason="validation")


# ---------------------------------------------------------------------------
# Persistence errors
# ---------------------------------------------------------------------------


class PersistenceError(ReproError):
    """Base class for storage/WAL/checkpoint failures."""


class WALError(PersistenceError):
    """The write-ahead log is corrupt or was misused."""


class WalCorruptionError(WALError):
    """A durable WAL record failed its checksum during a strict read.

    ``offset`` is the index of the bad record within the durable log
    (0-based, in storage order) and ``last_good_lsn`` the LSN of the
    last record that decoded cleanly before it — everything a recovery
    pass needs to report exactly where the log went bad.
    """

    def __init__(self, message: str, offset: int, last_good_lsn: int = 0):
        super().__init__(message)
        self.offset = offset
        self.last_good_lsn = last_good_lsn


class RecoveryError(PersistenceError):
    """Crash recovery could not reconstruct a consistent state."""


class MigrationError(PersistenceError):
    """A schema migration is invalid or cannot be applied."""


class SQLError(PersistenceError):
    """The miniature SQL engine rejected a statement."""


# ---------------------------------------------------------------------------
# Durable serving-tier errors
# ---------------------------------------------------------------------------


class DurableError(PersistenceError):
    """Base class for the transactional serving tier."""


class ConflictError(DurableError):
    """Optimistic CAS found another commit got there first.

    Carries the losing write's coordinates so bounded-retry loops and
    conflict accounting can see exactly what collided.
    """

    def __init__(self, entity: int, expected: int, found: int):
        super().__init__(
            f"entity {entity}: expected row_version {expected}, "
            f"found {found}"
        )
        self.entity = entity
        self.expected = expected
        self.found = found


class RetriesExhaustedError(DurableError):
    """A unit of work kept conflicting past its retry budget."""

    def __init__(self, message: str, attempts: int, last: "ConflictError"):
        super().__init__(message)
        self.attempts = attempts
        self.last = last


class LeaseError(DurableError):
    """A lease operation was malformed or misused."""


class LeaseHeldError(LeaseError):
    """The lease is currently held by a live (unexpired) owner."""

    def __init__(self, key: str, owner: str, expires: int):
        super().__init__(
            f"lease {key!r} held by {owner!r} until tick {expires}"
        )
        self.key = key
        self.owner = owner
        self.expires = expires


class LeaseFencedError(LeaseError):
    """The caller's fencing token is stale: the lease moved on without it.

    Raised on commit or renew by a worker whose lease expired and was
    reclaimed — the mechanism that prevents a paused-but-alive worker
    from double-applying work it no longer owns.
    """

    def __init__(self, key: str, token: int, current: int):
        super().__init__(
            f"lease {key!r}: fencing token {token} is stale "
            f"(current {current})"
        )
        self.key = key
        self.token = token
        self.current = current


# ---------------------------------------------------------------------------
# Network simulation errors
# ---------------------------------------------------------------------------


class NetError(ReproError):
    """A network-simulation component was misconfigured."""


class GatewayError(NetError):
    """The network gateway was misconfigured or a session misbehaved."""


# ---------------------------------------------------------------------------
# Cluster runtime errors
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """The sharded world runtime was misconfigured or misused."""


class ReplicationError(ClusterError):
    """The primary/replica replication layer hit an unrecoverable state."""


# ---------------------------------------------------------------------------
# Observability errors
# ---------------------------------------------------------------------------


class ObsError(ReproError):
    """The observability layer was misconfigured or misused."""
