"""Typed column stores — the numeric storage plane under ComponentTable.

The seed stored every component field in a plain python list, which is
pointer-chasing storage: each float is a heap-boxed ``PyFloatObject``,
so a "columnar" scan still hops the heap per value.  This module gives
:class:`~repro.core.table.ComponentTable` real typed buffers for its
numeric fields:

* ``float`` fields (non-nullable) pack into C doubles (``array('d')``);
* ``int`` / ``entity`` fields (non-nullable) pack into C int64s
  (``array('q')``);
* everything else (``str``/``bool``/``blob``/nullable) stays an object
  list, same as before.

Two interchangeable backends sit behind one interface: the stdlib
``array`` module (always available) and an optional numpy backend that
is selected transparently when numpy imports.  Which one is active
never changes observable values — reads always hand back plain python
scalars, so ``state_hash`` and every equality test are bit-identical
across backends.  Force a backend with the ``REPRO_COLUMN_BACKEND``
environment variable (``auto`` | ``numpy`` | ``array`` | ``object``)
or :func:`set_default_backend` in tests.

A typed column also supports **zero-copy views**: :meth:`TypedColumn.view`
returns a read-only ``memoryview`` over the packed buffer, which is what
``ComponentTable.batch_rows(copy=False)`` hands to batch kernels and the
chunked parallel executor (slicing a memoryview is O(1) and copies
nothing).  Views are *live* — in-place cell writes show through — but
snapshot-stable across row growth: if the buffer must grow while a view
is exported, the column reallocates and the old view keeps the old
buffer alive (copy-on-grow), exactly the snapshot semantics
``column()`` promises.

Values that do not fit the packed representation (an int beyond 64
bits) demote the column to an object list in place; the table keeps
working, it just loses the packed fast path for that field.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.component import FieldDef

BACKENDS = ("auto", "numpy", "array", "object")

_forced_backend: str | None = None

try:  # the optional accelerated backend
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less host
    _np = None


def set_default_backend(name: str | None) -> None:
    """Force a storage backend (tests); ``None`` restores auto-selection."""
    global _forced_backend
    if name is not None and name not in BACKENDS:
        raise ValueError(f"unknown column backend {name!r}; expected {BACKENDS}")
    _forced_backend = name


def default_backend() -> str:
    """The backend new tables will use: forced > env > auto-detected."""
    name = _forced_backend or os.environ.get("REPRO_COLUMN_BACKEND", "auto")
    if name not in BACKENDS:
        raise ValueError(
            f"REPRO_COLUMN_BACKEND={name!r} invalid; expected one of {BACKENDS}"
        )
    if name == "auto":
        return "numpy" if _np is not None else "array"
    if name == "numpy" and _np is None:
        raise ValueError("REPRO_COLUMN_BACKEND=numpy but numpy is not importable")
    return name


def typecode_for(fdef: "FieldDef") -> str | None:
    """Packed typecode for a field, or None when it must stay an object list.

    Nullable fields store ``None`` and cannot pack; bools are kept as
    objects so identity-ish reads (``is True``) keep working.
    """
    if fdef.nullable:
        return None
    if fdef.type_name == "float":
        return "d"
    if fdef.type_name in ("int", "entity"):
        return "q"
    return None


def make_column(fdef: "FieldDef", backend: str | None = None) -> "list | TypedColumn":
    """Create the storage cell for one field under the active backend."""
    resolved = backend or default_backend()
    if resolved == "object":
        return []
    code = typecode_for(fdef)
    if code is None:
        return []
    if resolved == "numpy":
        return NumpyColumn(code)
    return ArrayColumn(code)


_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


class TypedColumn:
    """Base typed column: the list protocol ComponentTable mutates through.

    Subclasses implement packed storage; this base carries the shared
    demotion machinery.  After demotion (:attr:`demoted`) the column is
    backed by a plain list and :meth:`view` returns ``None`` — callers
    fall back to materialized reads, values stay correct.
    """

    __slots__ = ("typecode", "_data")

    def __init__(self, typecode: str):
        self.typecode = typecode
        self._data: Any = None  # set by subclass

    # -- demotion -----------------------------------------------------------

    @property
    def demoted(self) -> bool:
        """Whether the column fell back to object-list storage."""
        return isinstance(self._data, list)

    def _demote(self) -> list:
        """Copy packed storage into a plain list, in place."""
        self._data = self.tolist()
        return self._data

    def _fits(self, value: Any) -> bool:
        if self.typecode == "q":
            return _I64_MIN <= value <= _I64_MAX
        return True

    # -- list protocol (shared demoted paths) --------------------------------

    def __len__(self) -> int:
        return len(self._data) if self.demoted else self._packed_len()

    def __getitem__(self, i: int) -> Any:
        if self.demoted:
            return self._data[i]
        return self._packed_get(i)

    def __setitem__(self, i: int, value: Any) -> None:
        if self.demoted:
            self._data[i] = value
        elif self._fits(value):
            self._packed_set(i, value)
        else:
            self._demote()[i] = value

    def append(self, value: Any) -> None:
        if self.demoted:
            self._data.append(value)
        elif self._fits(value):
            self._packed_append(value)
        else:
            self._demote().append(value)

    def pop(self) -> Any:
        if self.demoted:
            return self._data.pop()
        return self._packed_pop()

    def __iter__(self) -> Iterator[Any]:
        if self.demoted:
            return iter(self._data)
        return iter(self.tolist())

    # -- bulk reads ----------------------------------------------------------

    def tolist(self) -> list:
        """All values as plain python scalars."""
        raise NotImplementedError

    def snapshot(self) -> tuple:
        """Immutable copy of the column (the ``column()`` contract)."""
        return tuple(self._data) if self.demoted else tuple(self.tolist())

    def gather(self, slots: Sequence[int]) -> list:
        """Values at the given row slots, as plain scalars."""
        data = self._data
        return [data[s] for s in slots] if self.demoted else self._packed_gather(slots)

    def view(self) -> "memoryview | None":
        """Read-only zero-copy view of the packed buffer (None if demoted)."""
        if self.demoted:
            return None
        return self._packed_view()

    def fill_from(self, values: Iterable[Any]) -> None:
        """Bulk-load initial contents (used when rebinding storage)."""
        for v in values:
            self.append(v)

    # -- bulk writes ---------------------------------------------------------

    def replace(self, values: Sequence[Any]) -> None:
        """Overwrite every cell with already-validated ``values``, in place.

        Length must equal the current row count; the caller (the table's
        ``update_column`` row-order fast path) has validated each value
        against the schema.  Packed backends convert and copy at C speed;
        an int that does not fit 64 bits demotes the column first.  The
        write is in place, so exported views observe the new values.
        """
        if len(values) != len(self):
            raise ValueError(
                f"replace: {len(values)} values for {len(self)} rows"
            )
        if self.demoted:
            self._data[:] = values
        else:
            self._packed_replace(values)

    # -- subclass hooks ------------------------------------------------------

    def _packed_len(self) -> int:
        raise NotImplementedError

    def _packed_get(self, i: int) -> Any:
        raise NotImplementedError

    def _packed_set(self, i: int, value: Any) -> None:
        raise NotImplementedError

    def _packed_append(self, value: Any) -> None:
        raise NotImplementedError

    def _packed_pop(self) -> Any:
        raise NotImplementedError

    def _packed_gather(self, slots: Sequence[int]) -> list:
        raise NotImplementedError

    def _packed_view(self) -> memoryview:
        raise NotImplementedError

    def _packed_replace(self, values: Sequence[Any]) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "demoted" if self.demoted else self.typecode
        return f"{type(self).__name__}({kind}, n={len(self)})"


class ArrayColumn(TypedColumn):
    """Stdlib ``array.array`` backend — always available, no dependencies.

    ``array`` refuses to resize while a memoryview is exported
    (``BufferError``); when that happens mid-append the column swaps in
    a fresh copy of the buffer (copy-on-grow), so outstanding views keep
    the old buffer alive with pre-growth contents.
    """

    __slots__ = ()

    def __init__(self, typecode: str, values: Iterable[Any] = ()):
        super().__init__(typecode)
        self._data = array(typecode, values)

    def _packed_len(self) -> int:
        return len(self._data)

    def _packed_get(self, i: int) -> Any:
        return self._data[i]

    def _packed_set(self, i: int, value: Any) -> None:
        self._data[i] = value

    def _packed_append(self, value: Any) -> None:
        try:
            self._data.append(value)
        except BufferError:  # exported views pin the buffer: copy-on-grow
            self._data = array(self.typecode, self._data)
            self._data.append(value)

    def _packed_pop(self) -> Any:
        try:
            return self._data.pop()
        except BufferError:
            self._data = array(self.typecode, self._data)
            return self._data.pop()

    def _packed_gather(self, slots: Sequence[int]) -> list:
        data = self._data
        return [data[s] for s in slots]

    def _packed_view(self) -> memoryview:
        return memoryview(self._data).toreadonly()

    def _packed_replace(self, values: Sequence[Any]) -> None:
        try:
            self._data[:] = array(self.typecode, values)
        except OverflowError:  # an int beyond 64 bits: demote, keep values
            self._demote()[:] = values

    def tolist(self) -> list:
        return self._data.tolist() if not self.demoted else list(self._data)


class NumpyColumn(TypedColumn):
    """Numpy backend: preallocated ndarray with amortized growth.

    Reads return plain python scalars (``.item()`` / ``.tolist()``) so
    hashes and reprs match the stdlib backend exactly; the numpy win is
    in bulk operations (``gather`` via fancy indexing, ``tolist`` in C).
    Growth allocates a new buffer and copies, which leaves any exported
    memoryview attached to the old buffer — same copy-on-grow snapshot
    semantics as :class:`ArrayColumn`.
    """

    __slots__ = ("_n",)

    _DTYPES = {"d": "float64", "q": "int64"}

    def __init__(self, typecode: str, values: Iterable[Any] = ()):
        super().__init__(typecode)
        self._n = 0
        self._data = _np.empty(16, dtype=self._DTYPES[typecode])
        for v in values:
            self.append(v)

    def _packed_len(self) -> int:
        return self._n

    def _norm(self, i: int) -> int:
        return i + self._n if i < 0 else i

    def _packed_get(self, i: int) -> Any:
        i = self._norm(i)
        if i >= self._n:
            raise IndexError("column index out of range")
        return self._data[i].item()

    def _packed_set(self, i: int, value: Any) -> None:
        i = self._norm(i)
        if i >= self._n:
            raise IndexError("column index out of range")
        self._data[i] = value

    def _packed_append(self, value: Any) -> None:
        if self._n == len(self._data):
            grown = _np.empty(max(16, self._n * 2), dtype=self._data.dtype)
            grown[: self._n] = self._data[: self._n]
            self._data = grown
        self._data[self._n] = value
        self._n += 1

    def _packed_pop(self) -> Any:
        if self._n == 0:
            raise IndexError("pop from empty column")
        self._n -= 1
        return self._data[self._n].item()

    def _packed_gather(self, slots: Sequence[int]) -> list:
        if not slots:
            return []
        return self._data[: self._n].take(list(slots)).tolist()

    def _packed_view(self) -> memoryview:
        return memoryview(self._data[: self._n]).toreadonly()

    def _fits(self, value: Any) -> bool:
        if self.typecode == "q":
            # numpy raises its own OverflowError lazily; check eagerly so
            # demotion happens before any partial write.
            return _I64_MIN <= value <= _I64_MAX
        return True

    def _demote(self) -> list:
        self._data = self._data[: self._n].tolist()
        return self._data

    def _packed_replace(self, values: Sequence[Any]) -> None:
        try:
            self._data[: self._n] = _np.asarray(values, dtype=self._data.dtype)
        except OverflowError:
            self._demote()[:] = values

    def tolist(self) -> list:
        return list(self._data) if self.demoted else self._data[: self._n].tolist()
