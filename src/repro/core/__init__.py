"""Core game-database engine: entities, columnar tables, declarative queries.

Public API re-exports the classes a downstream game would touch; the
submodules stay importable for power users.
"""

from repro.core.aggregates import AggregateView, TopKView
from repro.core.clock import FrameBudget, FrameClock
from repro.core.component import ComponentSchema, FieldDef, schema
from repro.core.entity import EntityAllocator, EntityHandle, pack_id, unpack_id
from repro.core.events import Event, EventBus, Subscription
from repro.core.indexes import HashIndex, IndexAdvisor, IndexManager, SortedIndex
from repro.core.plancache import PlanCache
from repro.core.planner import AccessPath, Planner, QueryPlan
from repro.core.predicates import (
    And,
    Between,
    Compare,
    Custom,
    F,
    IsIn,
    Not,
    Or,
    Predicate,
)
from repro.core.query import (
    EXECUTE_MODES,
    PreparedQuery,
    Query,
    ResultRow,
    ResultSet,
    nearest_neighbors,
)
from repro.core.systems import (
    BatchSystem,
    FunctionSystem,
    PerEntitySystem,
    System,
    SystemScheduler,
    SystemSpec,
    system,
)
from repro.core.table import ComponentTable
from repro.core.world import GameWorld, diff_worlds

__all__ = [
    "AggregateView",
    "TopKView",
    "FrameBudget",
    "FrameClock",
    "ComponentSchema",
    "FieldDef",
    "schema",
    "EntityAllocator",
    "EntityHandle",
    "pack_id",
    "unpack_id",
    "Event",
    "EventBus",
    "Subscription",
    "HashIndex",
    "IndexAdvisor",
    "IndexManager",
    "SortedIndex",
    "AccessPath",
    "PlanCache",
    "Planner",
    "QueryPlan",
    "And",
    "Between",
    "Compare",
    "Custom",
    "F",
    "IsIn",
    "Not",
    "Or",
    "Predicate",
    "EXECUTE_MODES",
    "PreparedQuery",
    "Query",
    "ResultRow",
    "ResultSet",
    "nearest_neighbors",
    "BatchSystem",
    "FunctionSystem",
    "PerEntitySystem",
    "System",
    "SystemScheduler",
    "SystemSpec",
    "system",
    "ComponentTable",
    "GameWorld",
    "diff_worlds",
]
