"""Component schemas: the typed "table definitions" of the game database.

Data-driven games separate *content* from *code*; the first step is giving
game state an explicit schema, exactly as a database would.  A
:class:`ComponentSchema` declares the named, typed fields a component carries
(e.g. ``Position(x: float, y: float)``), default values, and which fields are
indexable.  Component *instances* are plain dicts validated against the
schema; storage is columnar (see :mod:`repro.core.table`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import SchemaError

#: The python types a component field may take.  ``entity`` fields hold
#: references to other entities (by id) and participate in referential
#: integrity checks.
FIELD_TYPES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "entity": int,
    "blob": bytes,
}

_NUMERIC_TYPES = ("int", "float")


@dataclass(frozen=True)
class FieldDef:
    """Definition of a single component field.

    Parameters
    ----------
    name:
        Field name; must be a valid identifier not starting with ``_``.
    type_name:
        One of :data:`FIELD_TYPES`.
    default:
        Value used when a spawn omits the field.  ``None`` means required.
    indexable:
        Whether the index manager may build indexes over this field.
    nullable:
        Whether ``None`` is a legal stored value (used for optional
        entity references such as "current target").
    """

    name: str
    type_name: str
    default: Any = None
    indexable: bool = True
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier() or self.name.startswith("_"):
            raise SchemaError(f"illegal field name {self.name!r}")
        if self.type_name not in FIELD_TYPES:
            raise SchemaError(
                f"field {self.name!r} has unknown type {self.type_name!r}; "
                f"expected one of {sorted(FIELD_TYPES)}"
            )
        if self.default is not None:
            self.validate(self.default)

    @property
    def py_type(self) -> type:
        """The concrete python type stored for this field."""
        return FIELD_TYPES[self.type_name]

    @property
    def required(self) -> bool:
        """True when a value must be supplied at attach time."""
        return self.default is None and not self.nullable

    def validate(self, value: Any) -> Any:
        """Check ``value`` against this field, returning the coerced value.

        Ints are accepted for float fields (and coerced); everything else
        must match exactly.  Raises :class:`SchemaError` on mismatch.
        """
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"field {self.name!r} is not nullable")
        if self.type_name == "float":
            if isinstance(value, bool):
                raise SchemaError(f"field {self.name!r}: bool is not a float")
            if isinstance(value, int):
                return float(value)
            if isinstance(value, float):
                if math.isnan(value):
                    raise SchemaError(f"field {self.name!r}: NaN is not storable")
                return value
            raise SchemaError(
                f"field {self.name!r} expects float, got {type(value).__name__}"
            )
        if self.type_name in ("int", "entity"):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(
                    f"field {self.name!r} expects {self.type_name}, "
                    f"got {type(value).__name__}"
                )
            return value
        if not isinstance(value, self.py_type):
            raise SchemaError(
                f"field {self.name!r} expects {self.type_name}, "
                f"got {type(value).__name__}"
            )
        return value


class ComponentSchema:
    """Schema for one component type — the analogue of a table definition.

    Examples
    --------
    >>> Position = ComponentSchema("Position", [
    ...     FieldDef("x", "float", default=0.0),
    ...     FieldDef("y", "float", default=0.0),
    ... ])
    >>> Position.validate({"x": 1, "y": 2.5})
    {'x': 1.0, 'y': 2.5}
    """

    def __init__(self, name: str, fields: Iterable[FieldDef]):
        if not name.isidentifier():
            raise SchemaError(f"illegal component name {name!r}")
        self.name = name
        self.fields: dict[str, FieldDef] = {}
        for fdef in fields:
            if fdef.name in self.fields:
                raise SchemaError(
                    f"component {name!r} declares field {fdef.name!r} twice"
                )
            self.fields[fdef.name] = fdef
        if not self.fields:
            # Tag components (no payload) are legal: presence is the datum.
            pass

    # -- introspection ------------------------------------------------------

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(self.fields)

    def field(self, name: str) -> FieldDef:
        """Return the :class:`FieldDef` for ``name`` or raise SchemaError."""
        try:
            return self.fields[name]
        except KeyError:
            raise SchemaError(
                f"component {self.name!r} has no field {name!r}; "
                f"fields are {list(self.fields)}"
            ) from None

    def entity_fields(self) -> tuple[str, ...]:
        """Names of fields holding entity references."""
        return tuple(
            n for n, f in self.fields.items() if f.type_name == "entity"
        )

    def numeric_fields(self) -> tuple[str, ...]:
        """Names of int/float fields (candidates for range indexes)."""
        return tuple(
            n for n, f in self.fields.items() if f.type_name in _NUMERIC_TYPES
        )

    # -- validation ---------------------------------------------------------

    def validate(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a full component instance, filling in defaults.

        Returns a new dict with every schema field present and coerced.
        Raises :class:`SchemaError` for unknown fields, missing required
        fields, or type mismatches.
        """
        unknown = set(values) - set(self.fields)
        if unknown:
            raise SchemaError(
                f"component {self.name!r}: unknown fields {sorted(unknown)}"
            )
        row: dict[str, Any] = {}
        for fname, fdef in self.fields.items():
            if fname in values:
                row[fname] = fdef.validate(values[fname])
            elif fdef.default is not None:
                row[fname] = fdef.default
            elif fdef.nullable:
                row[fname] = None
            else:
                raise SchemaError(
                    f"component {self.name!r}: missing required field {fname!r}"
                )
        return row

    def validate_update(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a partial update (only the supplied fields)."""
        unknown = set(values) - set(self.fields)
        if unknown:
            raise SchemaError(
                f"component {self.name!r}: unknown fields {sorted(unknown)}"
            )
        return {
            fname: self.fields[fname].validate(v) for fname, v in values.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{f.name}:{f.type_name}" for f in self.fields.values())
        return f"ComponentSchema({self.name}[{cols}])"


def schema(name: str, /, **field_specs: str | tuple) -> ComponentSchema:
    """Concise schema constructor used throughout examples and tests.

    Each keyword is a field; the value is either a type name or a tuple
    ``(type_name, default)``.

    >>> Health = schema("Health", hp=("int", 100), max_hp=("int", 100))
    >>> sorted(Health.field_names)
    ['hp', 'max_hp']
    """
    fields = []
    for fname, spec in field_specs.items():
        if isinstance(spec, tuple):
            type_name, default = spec
            fields.append(FieldDef(fname, type_name, default=default))
        else:
            fields.append(FieldDef(fname, spec))
    return ComponentSchema(name, fields)
