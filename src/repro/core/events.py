"""In-engine event bus — the substrate for data-driven triggers.

Game designers attach behaviour to *events* ("boss died", "player entered
region") rather than polling state each frame.  The :class:`EventBus`
provides typed topics, synchronous dispatch with deterministic handler
order, deferred queues (events raised mid-tick delivered at a frame
boundary), and a bounded history for debugging and for the intelligent
checkpointer, which watches event importance.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

#: Handler signature; returning anything is allowed and ignored.
Handler = Callable[["Event"], Any]


@dataclass(frozen=True)
class Event:
    """A single game event.

    Attributes
    ----------
    topic:
        Dotted topic name, e.g. ``combat.death`` or ``zone.enter``.
    data:
        Arbitrary payload mapping.
    source:
        Entity id that caused the event, or ``None`` for engine events.
    tick:
        Frame number when the event was raised (stamped by the world).
    importance:
        0.0–1.0 designer-assigned weight; the intelligent checkpointer
        flushes when accumulated importance crosses a threshold.
    """

    topic: str
    data: dict = field(default_factory=dict)
    source: int | None = None
    tick: int = 0
    importance: float = 0.0


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; call
    :meth:`cancel` to stop receiving events."""

    def __init__(self, bus: "EventBus", topic: str, handler: Handler):
        self._bus = bus
        self.topic = topic
        self.handler = handler
        self.active = True

    def cancel(self) -> None:
        """Unsubscribe; idempotent."""
        if self.active:
            self._bus._unsubscribe(self)
            self.active = False


class EventBus:
    """Topic-based publish/subscribe with exact and prefix matching.

    A subscription to ``combat`` receives ``combat.death`` and
    ``combat.hit``; a subscription to ``combat.death`` receives only
    exact matches.  The wildcard topic ``*`` receives everything.
    """

    def __init__(self, history_limit: int = 256):
        self._subs: dict[str, list[Subscription]] = {}
        self._deferred: deque[Event] = deque()
        self.history: deque[Event] = deque(maxlen=history_limit)
        self.published_count = 0

    # -- subscription management ------------------------------------------------

    def subscribe(self, topic: str, handler: Handler) -> Subscription:
        """Register ``handler`` for ``topic`` (exact or prefix)."""
        sub = Subscription(self, topic, handler)
        self._subs.setdefault(topic, []).append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic, [])
        if sub in subs:
            subs.remove(sub)
            if not subs:
                del self._subs[sub.topic]

    def topics(self) -> list[str]:
        """Topics that currently have at least one subscriber."""
        return sorted(self._subs)

    # -- publication ------------------------------------------------------------

    def publish(self, event: Event) -> int:
        """Dispatch ``event`` synchronously; returns handler count invoked."""
        self.published_count += 1
        self.history.append(event)
        invoked = 0
        for sub in self._matching(event.topic):
            sub.handler(event)
            invoked += 1
        return invoked

    def emit(
        self,
        topic: str,
        data: dict | None = None,
        source: int | None = None,
        tick: int = 0,
        importance: float = 0.0,
    ) -> int:
        """Convenience wrapper building an :class:`Event` and publishing it."""
        return self.publish(
            Event(topic, data or {}, source=source, tick=tick, importance=importance)
        )

    def defer(self, event: Event) -> None:
        """Queue an event for delivery at the next :meth:`flush_deferred`.

        Systems raise deferred events mid-tick so that handler side effects
        (spawns, despawns) never mutate tables another system is scanning.
        """
        self._deferred.append(event)

    def flush_deferred(self) -> int:
        """Deliver all deferred events in FIFO order; returns count delivered.

        Events deferred *by handlers during the flush* are delivered in the
        same flush (a fixpoint), which is what trigger chains expect.
        """
        delivered = 0
        while self._deferred:
            event = self._deferred.popleft()
            self.publish(event)
            delivered += 1
        return delivered

    def pending(self) -> int:
        """Number of deferred events awaiting delivery."""
        return len(self._deferred)

    # -- matching ----------------------------------------------------------------

    def _matching(self, topic: str) -> list[Subscription]:
        matches: list[Subscription] = []
        matches.extend(self._subs.get("*", ()))
        parts = topic.split(".")
        for i in range(1, len(parts) + 1):
            prefix = ".".join(parts[:i])
            if prefix != topic:
                matches.extend(self._subs.get(prefix, ()))
        matches.extend(self._subs.get(topic, ()))
        # Deterministic order: subscription insertion order within each
        # bucket, wildcard first, most-specific last.
        return matches
