"""Entity identity: id allocation with generation counters.

Entity ids are the primary keys of the game database.  Games recycle ids
aggressively (entities churn every few seconds), which creates the classic
dangling-reference bug: a script holds id 42, the entity dies, a new
entity reuses 42, and the script silently acts on the wrong object.  The
standard fix — also used here — is *generational* ids: the public 64-bit
id packs a slot index and a generation; stale handles fail validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownEntityError

_GEN_BITS = 20
_GEN_MASK = (1 << _GEN_BITS) - 1


def pack_id(slot: int, generation: int) -> int:
    """Pack (slot, generation) into one public entity id."""
    return (slot << _GEN_BITS) | (generation & _GEN_MASK)


def unpack_id(entity_id: int) -> tuple[int, int]:
    """Inverse of :func:`pack_id` -> (slot, generation)."""
    return entity_id >> _GEN_BITS, entity_id & _GEN_MASK


class EntityAllocator:
    """Allocates and validates generational entity ids.

    Freed slots go to a free list; reallocation bumps the generation so
    stale ids referencing the old incarnation are detectable in O(1).
    """

    def __init__(self) -> None:
        self._generations: list[int] = []
        self._free: list[int] = []
        self._live: set[int] = set()

    def allocate(self) -> int:
        """Allocate a fresh entity id."""
        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._generations)
            self._generations.append(0)
        entity_id = pack_id(slot, self._generations[slot])
        self._live.add(entity_id)
        return entity_id

    def adopt(self, entity_id: int) -> None:
        """Register an externally-allocated id as live.

        Used by cluster shards installing a migrated entity: the id was
        allocated by the coordinator's allocator and must be preserved
        exactly so references in component data stay valid.  Raises when
        the slot is already occupied by a different incarnation.
        """
        if entity_id in self._live:
            raise UnknownEntityError(f"entity id {entity_id} is already live")
        slot, gen = unpack_id(entity_id)
        while len(self._generations) <= slot:
            self._free.append(len(self._generations))
            self._generations.append(0)
        # While an entity occupies a slot, ``_generations[slot]`` holds
        # its generation, so occupancy is one O(1) membership probe.
        if pack_id(slot, self._generations[slot]) in self._live:
            raise UnknownEntityError(
                f"slot {slot} already holds a live entity of another generation"
            )
        self._generations[slot] = gen
        if slot in self._free:
            self._free.remove(slot)
        self._live.add(entity_id)

    def free(self, entity_id: int) -> None:
        """Release an id; the slot's generation is bumped for reuse."""
        self.require(entity_id)
        slot, _gen = unpack_id(entity_id)
        self._live.discard(entity_id)
        self._generations[slot] = (self._generations[slot] + 1) & _GEN_MASK
        self._free.append(slot)

    def is_live(self, entity_id: int) -> bool:
        """True when the id refers to a currently-live entity."""
        return entity_id in self._live

    def require(self, entity_id: int) -> None:
        """Raise :class:`UnknownEntityError` unless the id is live."""
        if entity_id not in self._live:
            slot, gen = unpack_id(entity_id)
            raise UnknownEntityError(
                f"entity id {entity_id} (slot {slot}, gen {gen}) is not live"
            )

    @property
    def live_count(self) -> int:
        """Number of live entities."""
        return len(self._live)

    def live_ids(self) -> tuple[int, ...]:
        """Snapshot of all live ids (unordered)."""
        return tuple(self._live)


@dataclass(frozen=True)
class EntityHandle:
    """Convenience wrapper bundling an id with its world.

    Handles are sugar over the world API — all state lives in component
    tables; the handle stores nothing but the id.
    """

    world: "object"
    id: int

    def __getitem__(self, component: str) -> dict:
        return self.world.get(self.id, component)  # type: ignore[attr-defined]

    def get(self, component: str, field: str):
        """Read one component field."""
        return self.world.get_field(self.id, component, field)  # type: ignore[attr-defined]

    def set(self, component: str, **values) -> dict:
        """Update component fields."""
        return self.world.set(self.id, component, **values)  # type: ignore[attr-defined]

    def attach(self, component: str, **values) -> dict:
        """Attach a new component."""
        return self.world.attach(self.id, component, **values)  # type: ignore[attr-defined]

    def detach(self, component: str) -> dict:
        """Remove a component."""
        return self.world.detach(self.id, component)  # type: ignore[attr-defined]

    def destroy(self) -> None:
        """Destroy the whole entity."""
        self.world.destroy(self.id)  # type: ignore[attr-defined]

    @property
    def alive(self) -> bool:
        """Whether the entity still exists."""
        return self.world.exists(self.id)  # type: ignore[attr-defined]

    def components(self) -> tuple[str, ...]:
        """Names of components currently attached."""
        return self.world.components_of(self.id)  # type: ignore[attr-defined]
