"""Rule-based query planner for declarative entity queries.

The planner turns a :class:`~repro.core.query.Query` into an access plan:

1. Pick a **driver component** and an access path for it — spatial index
   (for ``within`` clauses), hash index (equality / IN), sorted index
   (range), or full scan — preferring paths with the lowest estimated
   candidate count.
2. The remaining components become **existence probes** (an entity must
   have all queried components — the ECS equivalent of a key/foreign-key
   join, O(1) per probe via the table's slot map).
3. Unserved predicates become a **residual filter**.

``explain()`` renders the chosen plan, which the tests assert on: the whole
point of the reproduction is showing *when* the planner avoids the Ω(n²)
naive strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.core.predicates import (
    Between,
    Compare,
    IsIn,
    Predicate,
    compile_batch_fn,
    compile_row_fn,
    contains_custom,
    split_sargable,
)
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.world import GameWorld


@dataclass
class AccessPath:
    """How the driver component's candidate entities are produced.

    The path stores only its *parameters* (kind, field, constants); the
    actual index is resolved by :meth:`fetch` at execute time.  This makes
    paths safe to cache: a plan built ten thousand ticks ago still reads
    live index state, and if its index was dropped in the meantime it
    degrades to a scan that re-applies the served predicates.
    """

    kind: str  # "scan" | "hash_eq" | "hash_in" | "sorted_range" | "spatial"
    component: str
    field: str | None = None
    detail: str = ""
    estimated_rows: float = 0.0
    #: execute-time parameters; interpretation depends on ``kind``
    params: tuple = ()
    #: sargable predicates fully answered by this path (excluded from residual)
    served: tuple = ()

    def describe(self) -> str:
        """One-line plan rendering, e.g. ``hash_eq(Faction.name='orc')``."""
        target = f"{self.component}.{self.field}" if self.field else self.component
        if self.detail:
            return f"{self.kind}({target} {self.detail})"
        return f"{self.kind}({target})"

    def fetch(self, world: "GameWorld") -> list[int]:
        """Produce candidate entity ids against *current* world state."""
        if self.kind == "scan":
            return world.table(self.component).scan()
        manager = world.index_manager(self.component)
        if self.kind == "hash_eq":
            index = manager.hash_index(self.field)
            if index is not None:
                return list(index.lookup(self.params[0]))
        elif self.kind == "hash_in":
            index = manager.hash_index(self.field)
            if index is not None:
                return list(index.lookup_in(self.params[0]))
        elif self.kind == "sorted_range":
            index = manager.sorted_index(self.field)
            if index is not None:
                lo, hi, lo_inc, hi_inc = self.params
                return index.range(lo, hi, lo_inc, hi_inc)
        elif self.kind == "spatial":
            x_field, y_field, cx, cy, radius = self.params
            structure = manager.spatial_index(x_field, y_field)
            if structure is not None:
                return list(structure.query_circle(cx, cy, radius))
        else:
            raise QueryError(f"unknown access path kind {self.kind!r}")
        return self._fallback_scan(world)

    def _fallback_scan(self, world: "GameWorld") -> list[int]:
        # The index this path was planned against no longer exists (dropped
        # after the plan was cached).  Degrade to a scan, but re-apply the
        # predicates the index would have served — dropping them would
        # silently widen the result set.
        preds = [
            p.as_predicate() if hasattr(p, "as_predicate") else p
            for p in self.served
        ]
        table = world.table(self.component)
        if not preds:
            return table.scan()
        return table.scan(compile_row_fn(preds))


@dataclass
class QueryPlan:
    """A fully-resolved plan: driver access path + probes + residual."""

    access: AccessPath
    probe_components: tuple[str, ...]
    residual_count: int
    residual: Callable[[int], bool]
    #: per-component residual conjuncts, the input to the batch compiler
    residual_specs: tuple[tuple[str, tuple[Predicate, ...]], ...] = ()
    #: ("hit" | "scan", component, field) advisor observations captured at
    #: plan time; the plan cache replays them on every hit so index advice
    #: stays proportional to workload executions, not to distinct shapes
    advisor_events: tuple[tuple[str, str, str], ...] = ()
    _batch_filters: list | None = field(default=None, repr=False, compare=False)

    def describe(self) -> str:
        """Multi-line EXPLAIN output."""
        lines = [f"driver: {self.access.describe()} (est {self.access.estimated_rows:.0f} rows)"]
        for comp in self.probe_components:
            lines.append(f"probe:  has_component({comp})")
        lines.append(f"filter: {self.residual_count} residual predicate(s)")
        return "\n".join(lines)

    def replay_advisor(self, advisor: Any) -> None:
        """Re-emit the advisor observations recorded at plan time."""
        for event, comp, fname in self.advisor_events:
            if event == "hit":
                advisor.record_index_hit(comp, fname)
            else:
                advisor.record_scan(comp, fname)

    def execute_batch(self, world: "GameWorld") -> list[int]:
        """Set-at-a-time execution of this plan; returns unordered ids.

        Instead of evaluating the residual row-by-row (a dict build plus
        interpreted predicate walk per candidate), the batch path gathers
        the referenced columns once per component and runs compiled vector
        filters over a shrinking selection vector.  Results are exactly
        the scalar path's set; ordering/limit are applied by the caller.
        """
        obs = getattr(world, "obs", None)
        tracer = obs.tracer if obs is not None else None
        if tracer is None or not tracer.enabled:
            return self._execute_batch(world)
        with tracer.span("query.batch", cat="query") as sp:
            ids = self._execute_batch(world)
            sp.set(driver=self.access.kind, rows=len(ids))
            return ids

    def _execute_batch(self, world: "GameWorld") -> list[int]:
        driver_table = world.table(self.access.component)
        ids = [e for e in self.access.fetch(world) if e in driver_table]
        for comp in self.probe_components:
            table = world.table(comp)
            ids = [e for e in ids if e in table]
        for comp, fields, batch_fn in self._filters(world):
            if not ids:
                break
            _, columns = world.table(comp).batch_rows(fields, ids, copy=False)
            keep = batch_fn(columns, range(len(ids)))
            if len(keep) != len(ids):
                ids = [ids[i] for i in keep]
        return ids

    def _filters(self, world: "GameWorld") -> list:
        cached = self._batch_filters
        if cached is None:
            cached = []
            for comp, conjuncts in self.residual_specs:
                schema = world.table(comp).schema
                if any(contains_custom(c) for c in conjuncts):
                    # Custom predicates may read beyond their declared
                    # fields; gather the whole schema to stay exact.
                    fields = tuple(schema.field_names)
                else:
                    names: set[str] = set()
                    for c in conjuncts:
                        names.update(c.fields())
                    fields = tuple(sorted(names))
                cached.append((comp, fields, compile_batch_fn(conjuncts)))
            self._batch_filters = cached
        return cached


class Planner:
    """Chooses access paths using index availability and simple statistics.

    Selectivity model (deliberately crude, like early commercial
    optimizers): equality on a hash index returns ``n / distinct``;
    a range on a sorted index returns ``n / 3``; a spatial ``within``
    returns ``n * (query_area / world_area)`` when the structure knows its
    bounds, else ``n / 4``; a scan returns ``n``.
    """

    def __init__(self, world: "GameWorld"):
        self.world = world
        self.plans_built = 0

    def plan(self, query: Any) -> QueryPlan:
        """Build a :class:`QueryPlan` for a Query (see repro.core.query)."""
        self.plans_built += 1
        components = query.component_names()
        if not components:
            raise QueryError("query references no components")
        events: list[tuple[str, str, str]] = []
        candidates: list[AccessPath] = []
        for comp in components:
            candidates.extend(self._paths_for(query, comp, events))
        best = min(candidates, key=lambda p: p.estimated_rows)
        probe_components = tuple(c for c in components if c != best.component)
        residual_fn, residual_count, residual_specs = self._residual(query, best)
        plan = QueryPlan(
            access=best,
            probe_components=probe_components,
            residual_count=residual_count,
            residual=residual_fn,
            residual_specs=residual_specs,
            advisor_events=tuple(events),
        )
        plan.replay_advisor(self.world.index_advisor)
        return plan

    # -- access-path enumeration -------------------------------------------------

    def _paths_for(
        self, query: Any, comp: str, events: list[tuple[str, str, str]]
    ) -> list[AccessPath]:
        table = self.world.table(comp)
        manager = self.world.index_manager(comp)
        n = len(table)
        paths: list[AccessPath] = [
            AccessPath(
                kind="scan",
                component=comp,
                estimated_rows=float(n),
            )
        ]
        sargable, _ = split_sargable(query.predicate_for(comp))
        spatial = query.spatial_for(comp)
        if spatial is not None:
            structure = manager.spatial_index(spatial.x_field, spatial.y_field)
            if structure is not None:
                est = self._estimate_spatial(structure, spatial, n)
                paths.append(
                    AccessPath(
                        kind="spatial",
                        component=comp,
                        field=f"{spatial.x_field},{spatial.y_field}",
                        detail=f"within r={spatial.radius:g}",
                        estimated_rows=est,
                        params=(
                            spatial.x_field,
                            spatial.y_field,
                            spatial.cx,
                            spatial.cy,
                            spatial.radius,
                        ),
                        served=(spatial,),
                    )
                )
        for pred in sargable:
            pfield = next(iter(pred.fields()))
            hash_idx = manager.hash_index(pfield)
            sorted_idx = manager.sorted_index(pfield)
            if isinstance(pred, Compare) and pred.op == "==":
                if hash_idx is not None:
                    distinct = max(1, len(hash_idx.distinct_values()))
                    paths.append(
                        AccessPath(
                            kind="hash_eq",
                            component=comp,
                            field=pfield,
                            detail=f"== {pred.value!r}",
                            estimated_rows=n / distinct,
                            params=(pred.value,),
                            served=(pred,),
                        )
                    )
                    events.append(("hit", comp, pfield))
                else:
                    events.append(("scan", comp, pfield))
            elif isinstance(pred, IsIn):
                if hash_idx is not None:
                    distinct = max(1, len(hash_idx.distinct_values()))
                    paths.append(
                        AccessPath(
                            kind="hash_in",
                            component=comp,
                            field=pfield,
                            detail=f"in {len(pred.values)} values",
                            estimated_rows=n * len(pred.values) / distinct,
                            params=(pred.values,),
                            served=(pred,),
                        )
                    )
                    events.append(("hit", comp, pfield))
                else:
                    events.append(("scan", comp, pfield))
            else:
                # range-shaped predicate (<, <=, >, >=, between)
                if sorted_idx is not None:
                    paths.append(
                        AccessPath(
                            kind="sorted_range",
                            component=comp,
                            field=pfield,
                            detail=_range_detail(pred),
                            estimated_rows=max(1.0, n / 3.0),
                            params=_range_bounds(pred),
                            served=(pred,),
                        )
                    )
                    events.append(("hit", comp, pfield))
                else:
                    events.append(("scan", comp, pfield))
        return paths

    def _estimate_spatial(self, structure: Any, spatial: Any, n: int) -> float:
        bounds = getattr(structure, "bounds", None)
        area = None
        if bounds is not None:
            area = getattr(bounds, "area", None)
            if callable(area):  # AABB.area may be a method
                area = area()
        if area:
            import math

            qarea = math.pi * spatial.radius ** 2
            return max(1.0, n * min(1.0, qarea / area))
        return max(1.0, n / 4.0)

    # -- residual assembly ---------------------------------------------------------

    def _residual(
        self, query: Any, access: AccessPath
    ) -> tuple[
        Callable[[int], bool],
        int,
        tuple[tuple[str, tuple[Predicate, ...]], ...],
    ]:
        served = set(id(p) for p in access.served)
        checks: list[tuple[str, Callable[[dict], bool]]] = []
        specs: list[tuple[str, tuple[Predicate, ...]]] = []
        count = 0
        for comp in query.component_names():
            pred = query.predicate_for(comp)
            conjuncts = [] if pred is None else pred.conjuncts()
            remaining = [p for p in conjuncts if id(p) not in served]
            spatial = query.spatial_for(comp)
            if spatial is not None and id(spatial) not in served:
                remaining.append(spatial.as_predicate())
            if remaining:
                count += len(remaining)
                checks.append((comp, compile_row_fn(remaining)))
                specs.append((comp, tuple(remaining)))
        world = self.world

        def residual(entity_id: int) -> bool:
            for comp, fn in checks:
                if not fn(world.table(comp).get(entity_id)):
                    return False
            return True

        return residual, count, tuple(specs)


def _range_bounds(pred: Predicate) -> tuple[Any, Any, bool, bool]:
    """Translate a range-shaped predicate to (lo, hi, lo_inc, hi_inc)."""
    if isinstance(pred, Between):
        return pred.lo, pred.hi, True, True
    if isinstance(pred, Compare):
        if pred.op == "<":
            return None, pred.value, True, False
        if pred.op == "<=":
            return None, pred.value, True, True
        if pred.op == ">":
            return pred.value, None, False, True
        if pred.op == ">=":
            return pred.value, None, True, True
    raise QueryError(f"not a range predicate: {pred!r}")


def _range_detail(pred: Predicate) -> str:
    if isinstance(pred, Between):
        return f"between {pred.lo!r} and {pred.hi!r}"
    if isinstance(pred, Compare):
        return f"{pred.op} {pred.value!r}"
    return repr(pred)
