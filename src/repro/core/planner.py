"""Rule-based query planner for declarative entity queries.

The planner turns a :class:`~repro.core.query.Query` into an access plan:

1. Pick a **driver component** and an access path for it — spatial index
   (for ``within`` clauses), hash index (equality / IN), sorted index
   (range), or full scan — preferring paths with the lowest estimated
   candidate count.
2. The remaining components become **existence probes** (an entity must
   have all queried components — the ECS equivalent of a key/foreign-key
   join, O(1) per probe via the table's slot map).
3. Unserved predicates become a **residual filter**.

``explain()`` renders the chosen plan, which the tests assert on: the whole
point of the reproduction is showing *when* the planner avoids the Ω(n²)
naive strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.core.predicates import (
    Between,
    Compare,
    IsIn,
    Predicate,
    compile_row_fn,
    split_sargable,
)
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.world import GameWorld


@dataclass
class AccessPath:
    """How the driver component's candidate entities are produced."""

    kind: str  # "scan" | "hash_eq" | "hash_in" | "sorted_range" | "spatial"
    component: str
    field: str | None = None
    detail: str = ""
    estimated_rows: float = 0.0
    #: zero-arg callable producing candidate entity ids
    fetch: Callable[[], list[int]] | None = None
    #: sargable predicates fully answered by this path (excluded from residual)
    served: tuple = ()

    def describe(self) -> str:
        """One-line plan rendering, e.g. ``hash_eq(Faction.name='orc')``."""
        target = f"{self.component}.{self.field}" if self.field else self.component
        if self.detail:
            return f"{self.kind}({target} {self.detail})"
        return f"{self.kind}({target})"


@dataclass
class QueryPlan:
    """A fully-resolved plan: driver access path + probes + residual."""

    access: AccessPath
    probe_components: tuple[str, ...]
    residual_count: int
    residual: Callable[[int], bool]

    def describe(self) -> str:
        """Multi-line EXPLAIN output."""
        lines = [f"driver: {self.access.describe()} (est {self.access.estimated_rows:.0f} rows)"]
        for comp in self.probe_components:
            lines.append(f"probe:  has_component({comp})")
        lines.append(f"filter: {self.residual_count} residual predicate(s)")
        return "\n".join(lines)


class Planner:
    """Chooses access paths using index availability and simple statistics.

    Selectivity model (deliberately crude, like early commercial
    optimizers): equality on a hash index returns ``n / distinct``;
    a range on a sorted index returns ``n / 3``; a spatial ``within``
    returns ``n * (query_area / world_area)`` when the structure knows its
    bounds, else ``n / 4``; a scan returns ``n``.
    """

    def __init__(self, world: "GameWorld"):
        self.world = world
        self.plans_built = 0

    def plan(self, query: Any) -> QueryPlan:
        """Build a :class:`QueryPlan` for a Query (see repro.core.query)."""
        self.plans_built += 1
        components = query.component_names()
        if not components:
            raise QueryError("query references no components")
        candidates: list[AccessPath] = []
        for comp in components:
            candidates.extend(self._paths_for(query, comp))
        best = min(candidates, key=lambda p: p.estimated_rows)
        probe_components = tuple(c for c in components if c != best.component)
        residual = self._residual(query, best)
        return QueryPlan(
            access=best,
            probe_components=probe_components,
            residual_count=residual[1],
            residual=residual[0],
        )

    # -- access-path enumeration -------------------------------------------------

    def _paths_for(self, query: Any, comp: str) -> list[AccessPath]:
        table = self.world.table(comp)
        manager = self.world.index_manager(comp)
        advisor = self.world.index_advisor
        n = len(table)
        paths: list[AccessPath] = [
            AccessPath(
                kind="scan",
                component=comp,
                estimated_rows=float(n),
                fetch=lambda t=table: t.scan(),
            )
        ]
        sargable, _ = split_sargable(query.predicate_for(comp))
        spatial = query.spatial_for(comp)
        if spatial is not None:
            structure = manager.spatial_index(spatial.x_field, spatial.y_field)
            if structure is not None:
                est = self._estimate_spatial(structure, spatial, n)
                paths.append(
                    AccessPath(
                        kind="spatial",
                        component=comp,
                        field=f"{spatial.x_field},{spatial.y_field}",
                        detail=f"within r={spatial.radius:g}",
                        estimated_rows=est,
                        fetch=lambda s=structure, sp=spatial: list(
                            s.query_circle(sp.cx, sp.cy, sp.radius)
                        ),
                        served=(spatial,),
                    )
                )
        for pred in sargable:
            pfield = next(iter(pred.fields()))
            hash_idx = manager.hash_index(pfield)
            sorted_idx = manager.sorted_index(pfield)
            if isinstance(pred, Compare) and pred.op == "==":
                if hash_idx is not None:
                    distinct = max(1, len(hash_idx.distinct_values()))
                    paths.append(
                        AccessPath(
                            kind="hash_eq",
                            component=comp,
                            field=pfield,
                            detail=f"== {pred.value!r}",
                            estimated_rows=n / distinct,
                            fetch=lambda i=hash_idx, p=pred: list(i.lookup(p.value)),
                            served=(pred,),
                        )
                    )
                    advisor.record_index_hit(comp, pfield)
                else:
                    advisor.record_scan(comp, pfield)
            elif isinstance(pred, IsIn):
                if hash_idx is not None:
                    distinct = max(1, len(hash_idx.distinct_values()))
                    paths.append(
                        AccessPath(
                            kind="hash_in",
                            component=comp,
                            field=pfield,
                            detail=f"in {len(pred.values)} values",
                            estimated_rows=n * len(pred.values) / distinct,
                            fetch=lambda i=hash_idx, p=pred: list(
                                i.lookup_in(p.values)
                            ),
                            served=(pred,),
                        )
                    )
                    advisor.record_index_hit(comp, pfield)
                else:
                    advisor.record_scan(comp, pfield)
            else:
                # range-shaped predicate (<, <=, >, >=, between)
                if sorted_idx is not None:
                    lo, hi, lo_inc, hi_inc = _range_bounds(pred)
                    paths.append(
                        AccessPath(
                            kind="sorted_range",
                            component=comp,
                            field=pfield,
                            detail=_range_detail(pred),
                            estimated_rows=max(1.0, n / 3.0),
                            fetch=lambda i=sorted_idx, b=(lo, hi, lo_inc, hi_inc): i.range(
                                b[0], b[1], b[2], b[3]
                            ),
                            served=(pred,),
                        )
                    )
                    advisor.record_index_hit(comp, pfield)
                else:
                    advisor.record_scan(comp, pfield)
        return paths

    def _estimate_spatial(self, structure: Any, spatial: Any, n: int) -> float:
        bounds = getattr(structure, "bounds", None)
        area = None
        if bounds is not None:
            area = getattr(bounds, "area", None)
            if callable(area):  # AABB.area may be a method
                area = area()
        if area:
            import math

            qarea = math.pi * spatial.radius ** 2
            return max(1.0, n * min(1.0, qarea / area))
        return max(1.0, n / 4.0)

    # -- residual assembly ---------------------------------------------------------

    def _residual(
        self, query: Any, access: AccessPath
    ) -> tuple[Callable[[int], bool], int]:
        served = set(id(p) for p in access.served)
        checks: list[tuple[str, Callable[[dict], bool]]] = []
        count = 0
        for comp in query.component_names():
            pred = query.predicate_for(comp)
            conjuncts = [] if pred is None else pred.conjuncts()
            remaining = [p for p in conjuncts if id(p) not in served]
            spatial = query.spatial_for(comp)
            if spatial is not None and id(spatial) not in served:
                remaining.append(spatial.as_predicate())
            if remaining:
                count += len(remaining)
                checks.append((comp, compile_row_fn(remaining)))
        world = self.world

        def residual(entity_id: int) -> bool:
            for comp, fn in checks:
                if not fn(world.table(comp).get(entity_id)):
                    return False
            return True

        return residual, count


def _range_bounds(pred: Predicate) -> tuple[Any, Any, bool, bool]:
    """Translate a range-shaped predicate to (lo, hi, lo_inc, hi_inc)."""
    if isinstance(pred, Between):
        return pred.lo, pred.hi, True, True
    if isinstance(pred, Compare):
        if pred.op == "<":
            return None, pred.value, True, False
        if pred.op == "<=":
            return None, pred.value, True, True
        if pred.op == ">":
            return pred.value, None, False, True
        if pred.op == ">=":
            return pred.value, None, True, True
    raise QueryError(f"not a range predicate: {pred!r}")


def _range_detail(pred: Predicate) -> str:
    if isinstance(pred, Between):
        return f"between {pred.lo!r} and {pred.hi!r}"
    if isinstance(pred, Compare):
        return f"{pred.op} {pred.value!r}"
    return repr(pred)
