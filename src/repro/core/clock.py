"""Deterministic frame clock and per-system time budgeting.

Games run a fixed-timestep simulation loop; scripts "processed every
animation frame" (tutorial, Performance Challenges) must fit in the frame
budget or the game stutters.  :class:`FrameClock` advances simulated time
deterministically (no wall-clock reads, so replays and tests are exact),
while :class:`FrameBudget` tracks how much of a frame each system consumed
and reports overruns — the measurement tool behind experiment E10.

The budget's storage lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (one counter/gauge cell per
system) and its clock is an injectable ``time_source``: the default is
``time.perf_counter``, but replay tests inject a
:class:`~repro.obs.metrics.ManualTimeSource` and two identical runs then
report identical budgets.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.metrics import MetricsRegistry


class FrameClock:
    """Fixed-timestep simulation clock.

    ``tick`` is the frame counter, ``now`` the simulated seconds since
    start.  The clock never consults the wall clock; benchmarks that need
    real durations use :class:`FrameBudget` whose time source defaults to
    ``time.perf_counter`` but is injectable.
    """

    def __init__(self, dt: float = 1.0 / 30.0):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self.tick = 0
        self.now = 0.0

    def advance(self) -> int:
        """Advance one frame; returns the new tick number."""
        self.tick += 1
        self.now = self.tick * self.dt
        return self.tick

    def rewind_to(self, tick: int) -> None:
        """Reset the clock to an earlier tick (used by recovery replay)."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self.tick = tick
        self.now = tick * self.dt

    def __repr__(self) -> str:  # pragma: no cover
        return f"FrameClock(tick={self.tick}, now={self.now:.3f}s)"


class SystemTiming:
    """Accumulated time statistics for one named system.

    A thin view: the numbers live in registry cells
    (``frame.system.calls`` / ``.seconds`` / ``.worst_seconds``, labelled
    by system), so budget reports and the metrics snapshot can never
    disagree.
    """

    __slots__ = ("name", "_calls", "_total", "_worst")

    def __init__(self, name: str, registry: MetricsRegistry):
        self.name = name
        self._calls = registry.counter("frame.system.calls", system=name)
        self._total = registry.counter("frame.system.seconds", system=name)
        self._worst = registry.gauge("frame.system.worst_seconds", system=name)

    @property
    def calls(self) -> int:
        """Number of measured invocations."""
        return self._calls.value

    @property
    def total_seconds(self) -> float:
        """Total seconds across all invocations."""
        return self._total.value

    @property
    def worst_seconds(self) -> float:
        """Slowest single invocation in seconds."""
        return self._worst.value

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per call (0.0 before any call)."""
        calls = self.calls
        return self.total_seconds / calls if calls else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SystemTiming({self.name!r}, calls={self.calls}, "
            f"total={self.total_seconds:.6f}s)"
        )


class FrameBudget:
    """Tracks per-system time against a frame budget.

    Usage::

        budget = FrameBudget(frame_seconds=1/30)
        with budget.measure("physics"):
            run_physics()
        overruns = budget.overruns()

    ``time_source`` is any zero-argument callable returning seconds;
    the default samples the wall clock.  ``registry`` is the metrics
    home for every cell — a private one unless the caller shares theirs.
    """

    def __init__(
        self,
        frame_seconds: float = 1.0 / 30.0,
        registry: MetricsRegistry | None = None,
        time_source: Callable[[], float] | None = None,
    ):
        self.frame_seconds = frame_seconds
        self.registry = registry if registry is not None else MetricsRegistry()
        self.time_source = (
            time_source if time_source is not None else time.perf_counter
        )
        self.timings: dict[str, SystemTiming] = {}
        self._frame_spent = 0.0
        self._frames_over = self.registry.counter("frame.over_budget")
        self._frames = self.registry.counter("frame.count")
        self._frame_hist = self.registry.histogram("frame.seconds")

    @property
    def frames_over_budget(self) -> int:
        """Frames whose total measured time exceeded the budget."""
        return self._frames_over.value

    @property
    def frames_measured(self) -> int:
        """Frames closed by :meth:`end_frame` so far."""
        return self._frames.value

    def measure(self, name: str) -> "_Measurement":
        """Context manager timing one system invocation."""
        return _Measurement(self, name)

    def end_frame(self) -> float:
        """Close the current frame; returns seconds spent this frame."""
        spent = self._frame_spent
        self._frames.inc()
        self._frame_hist.observe(spent)
        if spent > self.frame_seconds:
            self._frames_over.inc()
        self._frame_spent = 0.0
        return spent

    def overruns(self) -> list[SystemTiming]:
        """Systems whose *worst* single call exceeded the whole budget."""
        return [
            t for t in self.timings.values() if t.worst_seconds > self.frame_seconds
        ]

    def report(self) -> list[SystemTiming]:
        """All system timings, slowest total first."""
        return sorted(self.timings.values(), key=lambda t: -t.total_seconds)

    def _record(self, name: str, seconds: float) -> None:
        timing = self.timings.get(name)
        if timing is None:
            timing = SystemTiming(name, self.registry)
            self.timings[name] = timing
        timing._calls.inc()
        timing._total.inc(seconds)
        if seconds > timing._worst.value:
            timing._worst.set(seconds)
        self._frame_spent += seconds


class _Measurement:
    """Context manager produced by :meth:`FrameBudget.measure`."""

    __slots__ = ("_budget", "_name", "_start")

    def __init__(self, budget: FrameBudget, name: str):
        self._budget = budget
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Measurement":
        self._start = self._budget.time_source()
        return self

    def __exit__(self, *exc_info: object) -> None:
        budget = self._budget
        budget._record(self._name, budget.time_source() - self._start)
