"""Deterministic frame clock and per-system time budgeting.

Games run a fixed-timestep simulation loop; scripts "processed every
animation frame" (tutorial, Performance Challenges) must fit in the frame
budget or the game stutters.  :class:`FrameClock` advances simulated time
deterministically (no wall-clock reads, so replays and tests are exact),
while :class:`FrameBudget` tracks how much of a frame each system consumed
and reports overruns — the measurement tool behind experiment E10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


class FrameClock:
    """Fixed-timestep simulation clock.

    ``tick`` is the frame counter, ``now`` the simulated seconds since
    start.  The clock never consults the wall clock; benchmarks that need
    real durations use :class:`FrameBudget` which samples
    ``time.perf_counter`` explicitly.
    """

    def __init__(self, dt: float = 1.0 / 30.0):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self.tick = 0
        self.now = 0.0

    def advance(self) -> int:
        """Advance one frame; returns the new tick number."""
        self.tick += 1
        self.now = self.tick * self.dt
        return self.tick

    def rewind_to(self, tick: int) -> None:
        """Reset the clock to an earlier tick (used by recovery replay)."""
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self.tick = tick
        self.now = tick * self.dt

    def __repr__(self) -> str:  # pragma: no cover
        return f"FrameClock(tick={self.tick}, now={self.now:.3f}s)"


@dataclass
class SystemTiming:
    """Accumulated wall-time statistics for one named system."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    worst_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per call (0.0 before any call)."""
        return self.total_seconds / self.calls if self.calls else 0.0


class FrameBudget:
    """Tracks per-system wall time against a frame budget.

    Usage::

        budget = FrameBudget(frame_seconds=1/30)
        with budget.measure("physics"):
            run_physics()
        overruns = budget.overruns()
    """

    def __init__(self, frame_seconds: float = 1.0 / 30.0):
        self.frame_seconds = frame_seconds
        self.timings: dict[str, SystemTiming] = {}
        self._frame_spent = 0.0
        self.frames_over_budget = 0
        self.frames_measured = 0

    def measure(self, name: str) -> "_Measurement":
        """Context manager timing one system invocation."""
        return _Measurement(self, name)

    def end_frame(self) -> float:
        """Close the current frame; returns seconds spent this frame."""
        spent = self._frame_spent
        self.frames_measured += 1
        if spent > self.frame_seconds:
            self.frames_over_budget += 1
        self._frame_spent = 0.0
        return spent

    def overruns(self) -> list[SystemTiming]:
        """Systems whose *worst* single call exceeded the whole budget."""
        return [
            t for t in self.timings.values() if t.worst_seconds > self.frame_seconds
        ]

    def report(self) -> list[SystemTiming]:
        """All system timings, slowest total first."""
        return sorted(self.timings.values(), key=lambda t: -t.total_seconds)

    def _record(self, name: str, seconds: float) -> None:
        timing = self.timings.get(name)
        if timing is None:
            timing = SystemTiming(name)
            self.timings[name] = timing
        timing.calls += 1
        timing.total_seconds += seconds
        timing.worst_seconds = max(timing.worst_seconds, seconds)
        self._frame_spent += seconds


class _Measurement:
    """Context manager produced by :meth:`FrameBudget.measure`."""

    __slots__ = ("_budget", "_name", "_start")

    def __init__(self, budget: FrameBudget, name: str):
        self._budget = budget
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Measurement":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._budget._record(self._name, time.perf_counter() - self._start)
