"""Predicate AST for declarative queries, with sargability analysis.

A predicate is a small expression tree over the fields of one component.
The planner inspects the tree to find *sargable* conjuncts — equality and
range comparisons on a single field — which can be answered by an index;
the remaining conjuncts become a residual filter applied to candidates.

This mirrors exactly what a relational optimizer does, scaled down to the
needs of a game tick: predicates are built once (often from script source)
and evaluated millions of times, so ``compile_row_fn`` produces a fast
closure for the residual filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import QueryError

Row = Mapping[str, Any]

#: Parallel column slices as produced by ``ComponentTable.batch_rows``:
#: ``columns[field][i]`` is the value of ``field`` for the i-th candidate.
BatchColumns = Mapping[str, Sequence[Any]]


class Predicate:
    """Base class for predicate nodes."""

    def evaluate(self, row: Row) -> bool:
        """Evaluate against a single component row."""
        raise NotImplementedError

    # Operator sugar so callers can write ``(F.x > 3) & (F.kind == "orc")``.
    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)

    def conjuncts(self) -> list["Predicate"]:
        """Flatten a top-level AND tree into a conjunct list."""
        return [self]

    def fields(self) -> set[str]:
        """All field names the predicate references."""
        raise NotImplementedError


@dataclass(frozen=True)
class Compare(Predicate):
    """A comparison ``field <op> constant`` — the sargable workhorse."""

    field: str
    op: str  # one of ==, !=, <, <=, >, >=
    value: Any

    _OPS: dict[str, Callable[[Any, Any], bool]] = None  # set below

    def evaluate(self, row: Row) -> bool:
        lhs = row[self.field]
        if lhs is None:
            return False
        return _COMPARE_OPS[self.op](lhs, self.value)

    def fields(self) -> set[str]:
        return {self.field}

    @property
    def sargable(self) -> bool:
        """True when an index on ``field`` can answer this comparison."""
        return self.op in ("==", "<", "<=", ">", ">=")


_COMPARE_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Between(Predicate):
    """Inclusive range predicate ``lo <= field <= hi`` (sargable)."""

    field: str
    lo: Any
    hi: Any

    def evaluate(self, row: Row) -> bool:
        v = row[self.field]
        return v is not None and self.lo <= v <= self.hi

    def fields(self) -> set[str]:
        return {self.field}


@dataclass(frozen=True)
class IsIn(Predicate):
    """Membership predicate ``field IN values`` (sargable via hash index)."""

    field: str
    values: frozenset

    def __init__(self, field: str, values: Iterable[Any]):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", frozenset(values))

    def evaluate(self, row: Row) -> bool:
        return row[self.field] in self.values

    def fields(self) -> set[str]:
        return {self.field}


class And(Predicate):
    """Conjunction of child predicates."""

    def __init__(self, children: Iterable[Predicate]):
        self.children = list(children)
        if not self.children:
            raise QueryError("AND requires at least one child predicate")

    def evaluate(self, row: Row) -> bool:
        return all(c.evaluate(row) for c in self.children)

    def conjuncts(self) -> list[Predicate]:
        out: list[Predicate] = []
        for c in self.children:
            out.extend(c.conjuncts())
        return out

    def fields(self) -> set[str]:
        return set().union(*(c.fields() for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover
        return "And(%r)" % (self.children,)


class Or(Predicate):
    """Disjunction of child predicates (never sargable as a whole)."""

    def __init__(self, children: Iterable[Predicate]):
        self.children = list(children)
        if not self.children:
            raise QueryError("OR requires at least one child predicate")

    def evaluate(self, row: Row) -> bool:
        return any(c.evaluate(row) for c in self.children)

    def fields(self) -> set[str]:
        return set().union(*(c.fields() for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover
        return "Or(%r)" % (self.children,)


@dataclass
class Not(Predicate):
    """Negation of a child predicate."""

    child: Predicate

    def evaluate(self, row: Row) -> bool:
        return not self.child.evaluate(row)

    def fields(self) -> set[str]:
        return self.child.fields()


@dataclass(frozen=True)
class Custom(Predicate):
    """Escape hatch: an arbitrary python function over the row.

    Custom predicates are never sargable — the planner must scan.  Scripts
    compiled from the scripting language land here when their condition is
    not expressible as comparisons.
    """

    fn: Callable[[Row], bool]
    referenced: frozenset = frozenset()

    def evaluate(self, row: Row) -> bool:
        return bool(self.fn(row))

    def fields(self) -> set[str]:
        return set(self.referenced)


class _FieldRef:
    """Builder for a single field, enabling ``F.x > 3`` style predicates."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __eq__(self, other: Any) -> Compare:  # type: ignore[override]
        return Compare(self._name, "==", other)

    def __ne__(self, other: Any) -> Compare:  # type: ignore[override]
        return Compare(self._name, "!=", other)

    def __lt__(self, other: Any) -> Compare:
        return Compare(self._name, "<", other)

    def __le__(self, other: Any) -> Compare:
        return Compare(self._name, "<=", other)

    def __gt__(self, other: Any) -> Compare:
        return Compare(self._name, ">", other)

    def __ge__(self, other: Any) -> Compare:
        return Compare(self._name, ">=", other)

    def between(self, lo: Any, hi: Any) -> Between:
        return Between(self._name, lo, hi)

    def is_in(self, values: Iterable[Any]) -> IsIn:
        return IsIn(self._name, values)

    def __hash__(self) -> int:  # needed because __eq__ is overridden
        return hash(self._name)


class _FieldNamespace:
    """``F`` — attribute access mints field references: ``F.hp <= 20``."""

    def __getattr__(self, name: str) -> _FieldRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return _FieldRef(name)

    def __call__(self, name: str) -> _FieldRef:
        return _FieldRef(name)


#: Singleton field-reference namespace used in queries and examples.
F = _FieldNamespace()


def split_sargable(
    predicate: Predicate | None,
) -> tuple[list[Predicate], list[Predicate]]:
    """Split a predicate into (sargable conjuncts, residual conjuncts).

    Only top-level AND structure is exploited; OR and NOT subtrees go to
    the residual in full.  Returns ``([], [])`` for a ``None`` predicate.
    """
    if predicate is None:
        return [], []
    sargable: list[Predicate] = []
    residual: list[Predicate] = []
    for conj in predicate.conjuncts():
        if isinstance(conj, Compare) and conj.sargable:
            sargable.append(conj)
        elif isinstance(conj, (Between, IsIn)):
            sargable.append(conj)
        else:
            residual.append(conj)
    return sargable, residual


def compile_row_fn(conjuncts: Iterable[Predicate]) -> Callable[[Row], bool]:
    """Build a single fast callable evaluating all conjuncts on a row."""
    preds = list(conjuncts)
    if not preds:
        return lambda row: True
    if len(preds) == 1:
        return preds[0].evaluate

    def _all(row: Row) -> bool:
        return all(p.evaluate(row) for p in preds)

    return _all


def contains_custom(predicate: Predicate) -> bool:
    """True when any node in the tree is a :class:`Custom` escape hatch.

    Custom predicates may read fields beyond what ``referenced`` declares,
    so batch execution must gather the full schema for them, and the plan
    cache refuses to key on them (closure identity is not query shape).
    """
    if isinstance(predicate, Custom):
        return True
    if isinstance(predicate, (And, Or)):
        return any(contains_custom(c) for c in predicate.children)
    if isinstance(predicate, Not):
        return contains_custom(predicate.child)
    return False


def predicate_signature(predicate: Predicate | None) -> tuple | None:
    """Structural, hashable signature of a predicate tree.

    Two predicates with equal signatures select the same rows on any
    table, so the signature is a safe plan-cache key component.  Returns
    ``None`` when the tree is uncacheable: it contains a :class:`Custom`
    node, or a comparison constant that is unhashable.
    """
    if predicate is None:
        return ()
    try:
        return _signature_of(predicate)
    except TypeError:  # unhashable constant
        return None


def _signature_of(predicate: Predicate) -> tuple | None:
    if isinstance(predicate, Compare):
        hash(predicate.value)
        return ("cmp", predicate.field, predicate.op, predicate.value)
    if isinstance(predicate, Between):
        hash(predicate.lo)
        hash(predicate.hi)
        return ("between", predicate.field, predicate.lo, predicate.hi)
    if isinstance(predicate, IsIn):
        return ("in", predicate.field, predicate.values)
    if isinstance(predicate, And):
        return _signature_children("and", predicate.children)
    if isinstance(predicate, Or):
        return _signature_children("or", predicate.children)
    if isinstance(predicate, Not):
        child = _signature_of(predicate.child)
        return None if child is None else ("not", child)
    return None  # Custom and unknown nodes are uncacheable


def _signature_children(tag: str, children: Iterable[Predicate]) -> tuple | None:
    sigs = []
    for child in children:
        sig = _signature_of(child)
        if sig is None:
            return None
        sigs.append(sig)
    return (tag, tuple(sigs))


def _batch_one(pred: Predicate) -> Callable[[BatchColumns, Sequence[int]], list[int]]:
    """Vector filter for one conjunct: indices in -> surviving indices out.

    Compare/Between/IsIn get tight closures that touch only their own
    column; everything else (Or/Not/Custom) falls back to building a row
    dict per candidate — still batched at the call level, but row-at-a-time
    inside, matching scalar semantics exactly (including the rule that a
    ``None`` value never satisfies a comparison).
    """
    if isinstance(pred, Compare):
        cmp = _COMPARE_OPS[pred.op]
        field, value = pred.field, pred.value

        def _compare(columns: BatchColumns, idxs: Sequence[int]) -> list[int]:
            col = columns[field]
            return [
                i for i in idxs
                if col[i] is not None and cmp(col[i], value)
            ]

        return _compare
    if isinstance(pred, Between):
        field, lo, hi = pred.field, pred.lo, pred.hi

        def _between(columns: BatchColumns, idxs: Sequence[int]) -> list[int]:
            col = columns[field]
            return [
                i for i in idxs
                if col[i] is not None and lo <= col[i] <= hi
            ]

        return _between
    if isinstance(pred, IsIn):
        field, values = pred.field, pred.values

        def _isin(columns: BatchColumns, idxs: Sequence[int]) -> list[int]:
            col = columns[field]
            return [i for i in idxs if col[i] in values]

        return _isin

    def _rowwise(columns: BatchColumns, idxs: Sequence[int]) -> list[int]:
        names = list(columns)
        out = []
        for i in idxs:
            if pred.evaluate({f: columns[f][i] for f in names}):
                out.append(i)
        return out

    return _rowwise


def compile_batch_fn(
    conjuncts: Iterable[Predicate],
) -> Callable[[BatchColumns, Sequence[int]], list[int]]:
    """Build a set-at-a-time filter over column slices.

    The returned callable takes ``(columns, candidate_indices)`` and
    returns the indices whose rows satisfy every conjunct.  Conjuncts are
    applied one column at a time — the selection vector shrinks between
    stages, so later (more expensive) conjuncts see fewer candidates.
    """
    stages = [_batch_one(p) for p in conjuncts]
    if not stages:
        return lambda columns, idxs: list(idxs)
    if len(stages) == 1:
        only = stages[0]
        return lambda columns, idxs: only(columns, idxs)

    def _pipeline(columns: BatchColumns, idxs: Sequence[int]) -> list[int]:
        survivors: Sequence[int] = idxs
        for stage in stages:
            if not survivors:
                break
            survivors = stage(columns, survivors)
        return list(survivors)

    return _pipeline
