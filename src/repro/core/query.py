"""Declarative entity queries — the library's front door.

A :class:`Query` describes *what* entities you want ("all goblins with
hp < 20 within 50 units of the player"), not *how* to find them; the
planner (:mod:`repro.core.planner`) picks the cheapest access path.  This
is the tutorial's central pitch: replace hand-written per-frame loops with
declarative processing so the engine, not the designer, owns performance.

Example
-------
>>> results = (world.query("Position")
...     .join("Health").join("Faction")
...     .where("Faction", F.name == "goblin")
...     .where("Health", F.hp < 20)
...     .within(px, py, 50.0)
...     .order_by("Health", "hp")
...     .limit(5)
...     .execute())
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, TYPE_CHECKING

from repro.core.predicates import And, Custom, Predicate
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.world import GameWorld

#: Execution modes accepted by :meth:`Query.execute`.
EXECUTE_MODES = ("auto", "tuple", "batch")


@dataclass
class SpatialClause:
    """A ``within(cx, cy, radius)`` clause bound to one component."""

    component: str
    cx: float
    cy: float
    radius: float
    x_field: str = "x"
    y_field: str = "y"

    def as_predicate(self) -> Predicate:
        """Row-level fallback check used when no spatial index exists."""
        cx, cy, r2 = self.cx, self.cy, self.radius * self.radius
        xf, yf = self.x_field, self.y_field

        def check(row: Any) -> bool:
            dx = row[xf] - cx
            dy = row[yf] - cy
            return dx * dx + dy * dy <= r2

        return Custom(check, referenced=frozenset((xf, yf)))


class ResultRow:
    """One query result: an entity id plus its queried component rows.

    Component rows are copies; mutate via ``world.set`` so indexes and
    aggregate views observe the change.
    """

    __slots__ = ("entity", "_components")

    def __init__(self, entity: int, components: dict[str, dict[str, Any]]):
        self.entity = entity
        self._components = components

    def __getitem__(self, component: str) -> dict[str, Any]:
        try:
            return self._components[component]
        except KeyError:
            raise QueryError(
                f"result does not include component {component!r}"
            ) from None

    def get(self, component: str, field: str) -> Any:
        """Shorthand for ``row[component][field]``."""
        return self[component][field]

    def components(self) -> tuple[str, ...]:
        return tuple(self._components)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResultRow(entity={self.entity}, {self._components})"


class ResultSet:
    """The result of one :meth:`Query.execute` call.

    One object, three views of the same matching entities:

    * :attr:`ids` — the ordered entity-id list (the cheapest view);
    * :meth:`rows` — materialized :class:`ResultRow` objects;
    * :meth:`columns` — ``{"Comp.field": tuple_of_values}`` column slices,
      the shape batch systems and benchmarks consume.

    The set is also a sequence of :class:`ResultRow` (iteration, ``len``,
    indexing), so pre-redesign call sites that looped over
    ``query.execute()`` keep working unchanged.  Rows materialize lazily;
    the id list is computed exactly once at execute time.
    """

    __slots__ = ("_world", "_component_names", "_ids", "mode")

    def __init__(
        self,
        world: "GameWorld",
        component_names: tuple[str, ...],
        ids: list[int],
        mode: str,
    ):
        self._world = world
        self._component_names = component_names
        self._ids = ids
        #: Which execution path actually ran: ``"tuple"`` or ``"batch"``.
        self.mode = mode

    @property
    def ids(self) -> list[int]:
        """Matching entity ids in result order."""
        return self._ids

    def _row(self, entity_id: int) -> ResultRow:
        return ResultRow(
            entity_id,
            {
                c: self._world.table(c).get(entity_id)
                for c in self._component_names
            },
        )

    def rows(self) -> list[ResultRow]:
        """Materialize every result as a :class:`ResultRow`."""
        return [self._row(eid) for eid in self._ids]

    def columns(self, *refs: str) -> dict[str, tuple[Any, ...]]:
        """Column slices for ``"Component.field"`` references.

        Values align with :attr:`ids` position-for-position — the layout
        batch systems and vectorized workloads consume directly.
        """
        if not refs:
            raise QueryError("columns() needs at least one 'Comp.field' ref")
        out: dict[str, tuple[Any, ...]] = {}
        for ref in refs:
            comp, _, fld = ref.partition(".")
            if not fld:
                raise QueryError(f"column ref {ref!r} must be 'Comp.field'")
            if comp not in self._component_names:
                raise QueryError(
                    f"column ref {ref!r} names a component outside the query"
                )
            out[ref] = tuple(self._world.table(comp).gather(fld, self._ids))
        return out

    def first(self) -> ResultRow | None:
        """The first result row, or None when the set is empty."""
        return self._row(self._ids[0]) if self._ids else None

    def __iter__(self) -> Iterator[ResultRow]:
        return (self._row(eid) for eid in self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._row(eid) for eid in self._ids[index]]
        return self._row(self._ids[index])

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResultSet({len(self._ids)} rows, mode={self.mode!r})"


class Query:
    """Builder for declarative queries over one or more components.

    Instances are immutable-ish builders: every clause method returns
    ``self`` for chaining but queries may also be stored and re-executed;
    each :meth:`execute` replans against current statistics.
    """

    def __init__(self, world: "GameWorld", component: str):
        self.world = world
        world.table(component)  # validate early
        self._components: list[str] = [component]
        self._predicates: dict[str, list[Predicate]] = {}
        self._spatial: dict[str, SpatialClause] = {}
        self._order: tuple[str, str, bool] | None = None
        self._limit: int | None = None

    # -- clause builders -------------------------------------------------------

    def join(self, component: str) -> "Query":
        """Require the entity to also have ``component`` (entity-id join)."""
        self.world.table(component)
        if component in self._components:
            raise QueryError(f"component {component!r} already in query")
        self._components.append(component)
        return self

    def where(self, component: str, predicate: Predicate) -> "Query":
        """Add a predicate over ``component``'s fields (ANDed together)."""
        if component not in self._components:
            raise QueryError(
                f"where() on {component!r} which is not part of the query; "
                f"call join({component!r}) first"
            )
        self._predicates.setdefault(component, []).append(predicate)
        return self

    def within(
        self,
        cx: float,
        cy: float,
        radius: float,
        component: str | None = None,
        x_field: str = "x",
        y_field: str = "y",
    ) -> "Query":
        """Restrict to entities within ``radius`` of ``(cx, cy)``.

        ``component`` defaults to the root component of the query and must
        carry the two position fields.
        """
        if radius < 0:
            raise QueryError("radius must be non-negative")
        comp = component or self._components[0]
        if comp not in self._components:
            raise QueryError(f"within() on unjoined component {comp!r}")
        if comp in self._spatial:
            raise QueryError(f"component {comp!r} already has a within() clause")
        self._spatial[comp] = SpatialClause(comp, cx, cy, radius, x_field, y_field)
        return self

    def order_by(
        self, component: str, field: str, descending: bool = False
    ) -> "Query":
        """Sort results by one field."""
        if component not in self._components:
            raise QueryError(f"order_by() on unjoined component {component!r}")
        self.world.table(component).schema.field(field)
        self._order = (component, field, descending)
        return self

    def limit(self, n: int) -> "Query":
        """Keep only the first ``n`` results (after ordering)."""
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    # -- planner interface --------------------------------------------------------

    def component_names(self) -> tuple[str, ...]:
        """Components referenced by this query, root first."""
        return tuple(self._components)

    def predicate_for(self, component: str) -> Predicate | None:
        """The ANDed predicate for a component, or None."""
        preds = self._predicates.get(component)
        if not preds:
            return None
        if len(preds) == 1:
            return preds[0]
        return And(preds)

    def spatial_for(self, component: str) -> SpatialClause | None:
        """The spatial clause bound to a component, or None."""
        return self._spatial.get(component)

    def order_spec(self) -> tuple[str, str, bool] | None:
        """The ``(component, field, descending)`` ordering, or None."""
        return self._order

    def limit_spec(self) -> int | None:
        """The result limit, or None."""
        return self._limit

    # -- execution ------------------------------------------------------------------

    def prepare(self) -> "PreparedQuery":
        """Bake the current plan into a reusable prepared query.

        Games run the same queries every frame; preparing skips replanning
        on each execution (the prepared-statement idea).  The plan is
        refreshed automatically when any involved component's index
        *catalog* changes; data changes never invalidate it because access
        paths read live index state.
        """
        return PreparedQuery(self)

    def explain(self) -> str:
        """Render the plan this query would execute with right now.

        Goes through the plan cache, so EXPLAIN shows exactly what a
        subsequent :meth:`execute` call will run — cached or fresh.
        """
        return self.world.plan_cache.lookup(self).describe()

    def execute(self, mode: str = "auto") -> ResultSet:
        """Execute the query; the one entry point for all result shapes.

        ``mode`` selects the execution engine:

        * ``"tuple"`` — tuple-at-a-time: walk the access path, evaluate
          the residual per row;
        * ``"batch"`` — set-at-a-time: gather referenced columns once and
          run compiled vector filters (the paper's recommended style);
        * ``"auto"`` (default) — batch when the plan has residual
          predicates to vectorize, tuple otherwise; if the batch engine
          fails, fall back to the tuple engine *on the same plan*.

        Exactly one plan-cache lookup happens per call regardless of mode
        or fallback, so plan-cache hit counts and advisor-event replays
        count each execution exactly once.  Plans come from the world's
        :class:`~repro.core.plancache.PlanCache`: steady-state frames that
        repeat the same query shape skip planning entirely.
        """
        if mode not in EXECUTE_MODES:
            raise QueryError(
                f"unknown execute mode {mode!r}; expected one of {EXECUTE_MODES}"
            )
        plan = self.world.plan_cache.lookup(self)  # the one observation
        chosen = mode
        if mode == "auto":
            chosen = "batch" if plan.residual_count else "tuple"
        if chosen == "batch":
            if mode == "batch":
                ids = self._apply_order_limit(plan.execute_batch(self.world))
            else:
                try:
                    ids = self._apply_order_limit(
                        plan.execute_batch(self.world)
                    )
                except QueryError:
                    # Same plan, no second cache lookup: fallback must not
                    # double-count the observation.
                    chosen = "tuple"
                    ids = self._run_plan(plan)
        else:
            ids = self._run_plan(plan)
        return ResultSet(self.world, tuple(self._components), ids, chosen)

    def _run_plan(self, plan: Any) -> list[int]:
        out = []
        probes = [self.world.table(c) for c in plan.probe_components]
        driver_table = self.world.table(plan.access.component)
        for entity_id in plan.access.fetch(self.world):
            if entity_id not in driver_table:
                continue  # index returned a stale candidate; be safe
            if any(entity_id not in t for t in probes):
                continue
            if not plan.residual(entity_id):
                continue
            out.append(entity_id)
        out = self._apply_order_limit(out)
        return out

    def count(self) -> int:
        """Number of matching entities."""
        return len(self.execute().ids)

    def first(self) -> ResultRow | None:
        """First result under the current ordering, or None."""
        saved = self._limit
        self._limit = 1
        try:
            return self.execute().first()
        finally:
            self._limit = saved

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.execute())

    # -- helpers ---------------------------------------------------------------------

    def _apply_order_limit(self, ids: list[int]) -> list[int]:
        if self._order is not None:
            comp, field, desc = self._order
            table = self.world.table(comp)
            ids.sort(key=lambda e: table.get_field(e, field), reverse=desc)
        else:
            ids.sort()  # deterministic output regardless of access path
        if self._limit is not None:
            ids = ids[: self._limit]
        return ids


class PreparedQuery:
    """A query with its plan cached across executions.

    The plan is rebuilt lazily when any involved component's
    ``IndexManager.catalog_version`` changes (e.g. an index was created
    after preparation).  Use :attr:`plans_built` in tests to verify
    caching behaviour.
    """

    def __init__(self, query: Query):
        self.query = query
        self._plan = None
        self._catalog: tuple[int, ...] = ()
        self.plans_built = 0

    def _current_catalog(self) -> tuple[int, ...]:
        world = self.query.world
        return tuple(
            world.index_manager(c).catalog_version
            for c in self.query.component_names()
        )

    def _ensure_plan(self):
        catalog = self._current_catalog()
        if self._plan is None or catalog != self._catalog:
            self._plan = self.query.world.planner.plan(self.query)
            self._catalog = catalog
            self.plans_built += 1
        return self._plan

    def execute(self, mode: str = "auto") -> ResultSet:
        """Execute with the cached plan; same modes as :meth:`Query.execute`.

        The prepared path never consults the plan cache (the plan lives on
        this object), so plan-cache stats are untouched by prepared
        executions.
        """
        if mode not in EXECUTE_MODES:
            raise QueryError(
                f"unknown execute mode {mode!r}; expected one of {EXECUTE_MODES}"
            )
        plan = self._ensure_plan()
        query = self.query
        chosen = mode
        if mode == "auto":
            chosen = "batch" if plan.residual_count else "tuple"
        if chosen == "batch":
            if mode == "batch":
                ids = query._apply_order_limit(plan.execute_batch(query.world))
            else:
                try:
                    ids = query._apply_order_limit(
                        plan.execute_batch(query.world)
                    )
                except QueryError:
                    chosen = "tuple"
                    ids = query._run_plan(plan)
        else:
            ids = query._run_plan(plan)
        return ResultSet(
            query.world, query.component_names(), ids, chosen
        )

    def count(self) -> int:
        """Number of matching entities under the cached plan."""
        return len(self.execute().ids)

    def explain(self) -> str:
        """Render the cached plan (building it if needed)."""
        return self._ensure_plan().describe()


def nearest_neighbors(
    world: "GameWorld",
    component: str,
    cx: float,
    cy: float,
    k: int = 1,
    x_field: str = "x",
    y_field: str = "y",
) -> list[tuple[int, float]]:
    """K-nearest entities to ``(cx, cy)`` as ``[(entity_id, distance), ...]``.

    Uses the attached spatial index's ``query_knn`` when available, else
    falls back to a scan — mirroring how the planner degrades.
    """
    if k <= 0:
        raise QueryError("k must be positive")
    manager = world.index_manager(component)
    structure = manager.spatial_index(x_field, y_field)
    if structure is not None and hasattr(structure, "query_knn"):
        return structure.query_knn(cx, cy, k)
    table = world.table(component)
    scored = []
    for entity_id, row in table.rows():
        d = math.hypot(row[x_field] - cx, row[y_field] - cy)
        scored.append((d, entity_id))
    scored.sort()
    return [(eid, d) for d, eid in scored[:k]]
