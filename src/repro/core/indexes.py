"""Secondary indexes over component tables, kept consistent incrementally.

The tutorial's "Performance Challenges" section observes that game
developers, like database engineers, "rely on indices to speed up
computations that involve relationships between pairs of objects".  This
module provides the non-spatial indexes (hash and sorted) plus the
:class:`IndexManager` that wires indexes to table deltas and an
:class:`IndexAdvisor` that recommends indexes from observed query patterns.

Spatial indexes live in :mod:`repro.spatial`; the manager maintains them
from position deltas via :meth:`IndexManager.attach_spatial`.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Iterable, Mapping

from repro.core.table import ComponentTable
from repro.errors import IndexError_


class HashIndex:
    """Equality index: field value -> set of entity ids.

    Supports ``==`` and ``IN`` lookups in expected O(1) per probe.
    """

    kind = "hash"

    def __init__(self, field: str):
        self.field = field
        self._buckets: dict[Any, set[int]] = defaultdict(set)
        self.lookups = 0

    def insert(self, entity_id: int, value: Any) -> None:
        self._buckets[value].add(entity_id)

    def delete(self, entity_id: int, value: Any) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(entity_id)
            if not bucket:
                del self._buckets[value]

    def update(self, entity_id: int, old: Any, new: Any) -> None:
        self.delete(entity_id, old)
        self.insert(entity_id, new)

    def lookup(self, value: Any) -> set[int]:
        """Entity ids with ``field == value``."""
        self.lookups += 1
        return set(self._buckets.get(value, ()))

    def lookup_in(self, values: Iterable[Any]) -> set[int]:
        """Entity ids with ``field IN values``."""
        self.lookups += 1
        out: set[int] = set()
        for v in values:
            out |= self._buckets.get(v, set())
        return out

    def distinct_values(self) -> list[Any]:
        """All distinct indexed values (used by the advisor and GROUP BY)."""
        return list(self._buckets)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class SortedIndex:
    """Order-preserving index supporting range scans in O(log n + k).

    Implemented as a sorted list of ``(value, entity_id)`` pairs with
    bisect; adequate for the scale of a game shard and trivially correct.
    """

    kind = "sorted"

    def __init__(self, field: str):
        self.field = field
        self._pairs: list[tuple[Any, int]] = []
        self.lookups = 0

    def insert(self, entity_id: int, value: Any) -> None:
        bisect.insort(self._pairs, (value, entity_id))

    def delete(self, entity_id: int, value: Any) -> None:
        i = bisect.bisect_left(self._pairs, (value, entity_id))
        if i < len(self._pairs) and self._pairs[i] == (value, entity_id):
            self._pairs.pop(i)

    def update(self, entity_id: int, old: Any, new: Any) -> None:
        self.delete(entity_id, old)
        self.insert(entity_id, new)

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> list[int]:
        """Entity ids with value in the given (possibly open-ended) range."""
        self.lookups += 1
        if lo is None:
            start = 0
        else:
            start = bisect.bisect_left(self._pairs, (lo,))
            if not lo_inclusive:
                start = self._skip_value(lo, start)
        if hi is None:
            stop = len(self._pairs)
        else:
            stop = self._upper_bound(hi, hi_inclusive)
        return [eid for _v, eid in self._pairs[start:stop]]

    def _skip_value(self, value: Any, start: int) -> int:
        i = start
        while i < len(self._pairs) and self._pairs[i][0] == value:
            i += 1
        return i

    def _upper_bound(self, hi: Any, inclusive: bool) -> int:
        i = bisect.bisect_left(self._pairs, (hi,))
        if inclusive:
            while i < len(self._pairs) and self._pairs[i][0] == hi:
                i += 1
        return i

    def min_entity(self) -> tuple[Any, int] | None:
        """Smallest (value, entity_id) or None if empty — O(1)."""
        return self._pairs[0] if self._pairs else None

    def max_entity(self) -> tuple[Any, int] | None:
        """Largest (value, entity_id) or None if empty — O(1)."""
        return self._pairs[-1] if self._pairs else None

    def ordered_ids(self, descending: bool = False) -> list[int]:
        """All entity ids in value order."""
        ids = [eid for _v, eid in self._pairs]
        return ids[::-1] if descending else ids

    def __len__(self) -> int:
        return len(self._pairs)


class IndexManager:
    """Owns all secondary indexes of one component table.

    Index maintenance is driven by table deltas, so indexes are always
    transactionally consistent with the data they cover — the property
    naive game code loses when it caches query results across frames.
    """

    def __init__(self, table: ComponentTable):
        self.table = table
        self._hash: dict[str, HashIndex] = {}
        self._sorted: dict[str, SortedIndex] = {}
        self._spatial: list[dict[str, Any]] = []
        #: bumped whenever the *set* of indexes changes (not their
        #: contents); prepared queries replan when it moves.
        self.catalog_version = 0
        table.add_observer(self._on_delta)

    # -- creation -----------------------------------------------------------

    def create_hash_index(self, field: str) -> HashIndex:
        """Build (and backfill) a hash index on ``field``."""
        self._check_field(field)
        if field in self._hash:
            raise IndexError_(f"hash index on {field!r} already exists")
        idx = HashIndex(field)
        for entity_id, row in self.table.rows():
            idx.insert(entity_id, row[field])
        self._hash[field] = idx
        self.catalog_version += 1
        return idx

    def create_sorted_index(self, field: str) -> SortedIndex:
        """Build (and backfill) a sorted index on ``field``."""
        self._check_field(field)
        if field in self._sorted:
            raise IndexError_(f"sorted index on {field!r} already exists")
        idx = SortedIndex(field)
        for entity_id, row in self.table.rows():
            idx.insert(entity_id, row[field])
        self._sorted[field] = idx
        self.catalog_version += 1
        return idx

    def attach_spatial(
        self, structure: Any, x_field: str = "x", y_field: str = "y"
    ) -> Any:
        """Attach a spatial structure maintained from (x_field, y_field)."""
        self._check_field(x_field)
        self._check_field(y_field)
        entry = {
            "structure": structure,
            "x": x_field,
            "y": y_field,
            # cache of current positions so single-axis updates can be
            # translated into full moves
            "pos": {},
        }
        for entity_id, row in self.table.rows():
            x, y = row[x_field], row[y_field]
            structure.insert(entity_id, x, y)
            entry["pos"][entity_id] = (x, y)
        self._spatial.append(entry)
        self.catalog_version += 1
        return structure

    def on_schema_alter(
        self, removed: Iterable[str], in_transition: Iterable[str]
    ) -> int:
        """Drop every index over fields a schema alter removes or rewrites.

        Called by the catalog when an alter begins: indexes over dropped,
        renamed-away, retyped, transformed, or split fields are no longer
        maintainable (the backfill rewrites them wholesale), so they are
        dropped and the catalog version bumps — cached plans that used
        them invalidate on next lookup.  Returns how many were dropped.
        """
        doomed = set(removed) | set(in_transition)
        dropped = 0
        for field in sorted(doomed):
            if field in self._hash:
                del self._hash[field]
                dropped += 1
            if field in self._sorted:
                del self._sorted[field]
                dropped += 1
        keep: list[dict[str, Any]] = []
        for entry in self._spatial:
            if entry["x"] in doomed or entry["y"] in doomed:
                dropped += 1
            else:
                keep.append(entry)
        self._spatial = keep
        if dropped:
            self.catalog_version += 1
        return dropped

    def drop_index(self, field: str) -> None:
        """Drop hash and/or sorted indexes on ``field``."""
        found = False
        if field in self._hash:
            del self._hash[field]
            found = True
        if field in self._sorted:
            del self._sorted[field]
            found = True
        if not found:
            raise IndexError_(f"no index on field {field!r}")
        self.catalog_version += 1

    # -- lookup surface for the planner --------------------------------------

    def hash_index(self, field: str) -> HashIndex | None:
        return self._hash.get(field)

    def sorted_index(self, field: str) -> SortedIndex | None:
        return self._sorted.get(field)

    def spatial_index(
        self, x_field: str = "x", y_field: str = "y"
    ) -> Any | None:
        for entry in self._spatial:
            if entry["x"] == x_field and entry["y"] == y_field:
                return entry["structure"]
        return None

    def indexed_fields(self) -> dict[str, list[str]]:
        """Map field -> list of index kinds available on it."""
        out: dict[str, list[str]] = defaultdict(list)
        for f in self._hash:
            out[f].append("hash")
        for f in self._sorted:
            out[f].append("sorted")
        for entry in self._spatial:
            out[entry["x"]].append("spatial")
            out[entry["y"]].append("spatial")
        return dict(out)

    # -- delta maintenance ----------------------------------------------------

    def wants_update(self, field: str) -> bool:
        """Whether an update to ``field`` needs per-row delta dispatch.

        The table's set-at-a-time update path asks before paying per-row
        observer calls: a manager with no index over the written field
        has nothing to maintain, so the whole column can be replaced at
        buffer speed.  Insert/delete deltas are always delivered — they
        change row membership, which every index tracks.
        """
        if field in self._hash or field in self._sorted:
            return True
        return any(
            e["x"] == field or e["y"] == field for e in self._spatial
        )

    def _on_delta(self, kind: str, entity_id: int, payload: Mapping[str, Any]) -> None:
        if kind == "insert":
            for field, idx in self._hash.items():
                idx.insert(entity_id, payload[field])
            for field, idx in self._sorted.items():
                idx.insert(entity_id, payload[field])
            for entry in self._spatial:
                x, y = payload[entry["x"]], payload[entry["y"]]
                entry["structure"].insert(entity_id, x, y)
                entry["pos"][entity_id] = (x, y)
        elif kind == "delete":
            for field, idx in self._hash.items():
                idx.delete(entity_id, payload[field])
            for field, idx in self._sorted.items():
                idx.delete(entity_id, payload[field])
            for entry in self._spatial:
                x, y = entry["pos"].pop(entity_id)
                entry["structure"].remove(entity_id, x, y)
        elif kind == "update":
            for field, idx in self._hash.items():
                if field in payload:
                    old, new = payload[field]
                    idx.update(entity_id, old, new)
            for field, idx in self._sorted.items():
                if field in payload:
                    old, new = payload[field]
                    idx.update(entity_id, old, new)
            for entry in self._spatial:
                xf, yf = entry["x"], entry["y"]
                if xf in payload or yf in payload:
                    ox, oy = entry["pos"][entity_id]
                    nx = payload[xf][1] if xf in payload else ox
                    ny = payload[yf][1] if yf in payload else oy
                    entry["structure"].move(entity_id, ox, oy, nx, ny)
                    entry["pos"][entity_id] = (nx, ny)

    def _check_field(self, field: str) -> None:
        fdef = self.table.schema.field(field)
        if not fdef.indexable:
            raise IndexError_(
                f"field {field!r} of {self.table.schema.name!r} is not indexable"
            )
        if self.table.is_field_in_transition(field):
            raise IndexError_(
                f"field {field!r} of {self.table.schema.name!r} is mid-"
                "migration; create the index after the alter commits"
            )


class IndexAdvisor:
    """Recommends indexes from the query predicates the planner has seen.

    The advisor counts, per (component, field), how often a sargable
    predicate had to fall back to a scan.  ``recommend`` returns the fields
    whose scan count exceeds a threshold — a tiny version of the workload-
    driven physical design tools commercial databases ship.
    """

    def __init__(self, scan_threshold: int = 8):
        self.scan_threshold = scan_threshold
        self._missed: dict[tuple[str, str], int] = defaultdict(int)
        self._served: dict[tuple[str, str], int] = defaultdict(int)

    def record_scan(self, component: str, field: str) -> None:
        """A sargable predicate on ``field`` had no usable index."""
        self._missed[(component, field)] += 1

    def record_index_hit(self, component: str, field: str) -> None:
        """An index answered a predicate on ``field``."""
        self._served[(component, field)] += 1

    def recommend(self) -> list[tuple[str, str, int]]:
        """Return (component, field, missed_count) above the threshold,
        ordered by how much scanning they would have saved."""
        recs = [
            (comp, field, count)
            for (comp, field), count in self._missed.items()
            if count >= self.scan_threshold
        ]
        recs.sort(key=lambda r: -r[2])
        return recs

    def stats(self) -> dict[str, int]:
        """Aggregate counters, mostly for tests and dashboards."""
        return {
            "missed_total": sum(self._missed.values()),
            "served_total": sum(self._served.values()),
            "fields_tracked": len(set(self._missed) | set(self._served)),
        }
