"""`GameWorld` — the facade tying the game database together.

The world owns: the entity allocator, one columnar table per registered
component type, per-table index managers, the query planner, the event
bus, the frame clock, and the system scheduler.  One call —
:meth:`GameWorld.tick` — advances the simulation a frame: systems run in
priority order, deferred events flush, and the frame budget is closed.

This is the "in-memory database layer that processes all actions"
described in the tutorial's Engineering Challenges section; the
persistence package journals its mutations via a change hook.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.core.aggregates import AggregateView, TopKView
from repro.core.clock import FrameBudget, FrameClock
from repro.core.component import ComponentSchema
from repro.core.entity import EntityAllocator, EntityHandle
from repro.core.events import Event, EventBus
from repro.core.indexes import IndexAdvisor, IndexManager
from repro.core.plancache import PlanCache
from repro.core.planner import Planner
from repro.core.predicates import Predicate
from repro.core.query import Query, nearest_neighbors
from repro.core.systems import (
    BatchSystem,
    FunctionSystem,
    PerEntitySystem,
    System,
    SystemScheduler,
)
from repro.core.table import ComponentTable
from repro.errors import UnknownComponentError
from repro.obs import Observability, resolve_obs
from repro.schema.catalog import Catalog

#: Change-hook signature used by the persistence layer:
#: (op, entity_id, component, payload) with op in
#: "spawn" | "destroy" | "attach" | "detach" | "update".
ChangeHook = Callable[[str, int, str | None, Mapping[str, Any] | None], None]


def _never_skips(component: str, field: str) -> bool:
    """Default ``skips_update`` for hooks that declare none: always fire."""
    return False


class GameWorld:
    """The authoritative in-memory game database.

    Parameters
    ----------
    dt:
        Fixed simulation timestep in seconds (default 1/30).
    frame_budget_seconds:
        Wall-clock budget per frame for the scheduler's budget report;
        defaults to ``dt``.
    obs:
        Observability bundle (metrics/tracer/recorder).  Defaults to the
        session default (usually disabled).  The frame budget keeps a
        private registry regardless — budget cells are labelled only by
        system name, and sharing one registry across the many worlds of
        a cluster would merge their per-frame timings.
    """

    def __init__(
        self,
        dt: float = 1.0 / 30.0,
        frame_budget_seconds: float | None = None,
        obs: Observability | None = None,
    ):
        self.obs = resolve_obs(obs)
        self.clock = FrameClock(dt)
        self.budget = FrameBudget(frame_budget_seconds or dt)
        self.events = EventBus()
        self.scheduler = SystemScheduler()
        self.index_advisor = IndexAdvisor()
        self.planner = Planner(self)
        self.plan_cache = PlanCache(self)
        self._allocator = EntityAllocator()
        self._tables: dict[str, ComponentTable] = {}
        self._indexes: dict[str, IndexManager] = {}
        self._components_of: dict[int, set[str]] = {}
        self._change_hooks: list[ChangeHook] = []
        self._parallel_executor = None
        #: The schema catalog: define / alter / describe component types.
        self.catalog = Catalog(self)
        self.obs.register_stats("plan_cache", self.plan_cache.stats)
        self.obs.register_stats("schema_catalog", self.catalog.stats)

    # ------------------------------------------------------------------ schema

    def register_component(self, schema: ComponentSchema) -> ComponentTable:
        """Deprecated: use ``world.catalog.define(...)``.

        Kept as a shim for one more release per the deprecation policy;
        delegates to the catalog so old callers still get a versioned
        entry.
        """
        import warnings

        warnings.warn(
            "GameWorld.register_component is deprecated; use "
            "world.catalog.define(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.catalog.define(schema)

    def _install_table(self, schema: ComponentSchema) -> ComponentTable:
        """Create the table + index manager for a catalog define."""
        if schema.name in self._tables:
            raise UnknownComponentError(
                f"component {schema.name!r} already registered"
            )
        table = ComponentTable(schema)
        self._tables[schema.name] = table
        self._indexes[schema.name] = IndexManager(table)
        return table

    def component_names(self) -> tuple[str, ...]:
        """All registered component type names."""
        return tuple(self._tables)

    def table(self, component: str) -> ComponentTable:
        """The columnar table backing ``component``."""
        try:
            return self._tables[component]
        except KeyError:
            raise UnknownComponentError(
                f"component {component!r} is not registered; "
                f"known: {sorted(self._tables)}"
            ) from None

    def index_manager(self, component: str) -> IndexManager:
        """The index manager for ``component``."""
        self.table(component)
        return self._indexes[component]

    # ------------------------------------------------------------- change hooks

    def add_change_hook(self, hook: ChangeHook) -> None:
        """Register a hook receiving every logical state change."""
        self._change_hooks.append(hook)

    def remove_change_hook(self, hook: ChangeHook) -> None:
        """Unregister a change hook."""
        self._change_hooks.remove(hook)

    def _emit_change(
        self,
        op: str,
        entity_id: int,
        component: str | None = None,
        payload: Mapping[str, Any] | None = None,
    ) -> None:
        for hook in self._change_hooks:
            hook(op, entity_id, component, payload)

    # -------------------------------------------------------------- entity CRUD

    def spawn(self, **components: Mapping[str, Any]) -> int:
        """Create an entity with the given components.

        >>> eid = world.spawn(Position={"x": 0, "y": 0}, Health={"hp": 50})
        """
        entity_id = self._allocator.allocate()
        self._components_of[entity_id] = set()
        self._emit_change("spawn", entity_id)
        for comp, values in components.items():
            self.attach(entity_id, comp, **values)
        return entity_id

    def spawn_handle(self, **components: Mapping[str, Any]) -> EntityHandle:
        """Like :meth:`spawn` but returns an :class:`EntityHandle`."""
        return EntityHandle(self, self.spawn(**components))

    def destroy(self, entity_id: int) -> None:
        """Destroy an entity, detaching all of its components."""
        self._allocator.require(entity_id)
        for comp in tuple(self._components_of.get(entity_id, ())):
            self.detach(entity_id, comp)
        del self._components_of[entity_id]
        self._allocator.free(entity_id)
        self._emit_change("destroy", entity_id)

    def exists(self, entity_id: int) -> bool:
        """Whether the entity id refers to a live entity."""
        return self._allocator.is_live(entity_id)

    @property
    def entity_count(self) -> int:
        """Number of live entities."""
        return self._allocator.live_count

    def entities(self) -> tuple[int, ...]:
        """Snapshot of all live entity ids."""
        return self._allocator.live_ids()

    def handle(self, entity_id: int) -> EntityHandle:
        """Wrap an existing entity id in a handle (validating it)."""
        self._allocator.require(entity_id)
        return EntityHandle(self, entity_id)

    def components_of(self, entity_id: int) -> tuple[str, ...]:
        """Names of components attached to ``entity_id``."""
        self._allocator.require(entity_id)
        return tuple(sorted(self._components_of[entity_id]))

    # --------------------------------------------------------- component access

    def attach(self, entity_id: int, component: str, **values: Any) -> dict[str, Any]:
        """Attach a component instance to an entity."""
        self._allocator.require(entity_id)
        row = self.table(component).insert(entity_id, values)
        self._components_of[entity_id].add(component)
        self._emit_change("attach", entity_id, component, row)
        return row

    def detach(self, entity_id: int, component: str) -> dict[str, Any]:
        """Detach a component from an entity; returns its last values."""
        self._allocator.require(entity_id)
        row = self.table(component).delete(entity_id)
        self._components_of[entity_id].discard(component)
        self._emit_change("detach", entity_id, component, row)
        return row

    def has(self, entity_id: int, component: str) -> bool:
        """Whether the entity carries ``component``."""
        return self.exists(entity_id) and entity_id in self.table(component)

    def get(self, entity_id: int, component: str) -> dict[str, Any]:
        """Copy of an entity's component row."""
        self._allocator.require(entity_id)
        return self.table(component).get(entity_id)

    def get_field(self, entity_id: int, component: str, field: str) -> Any:
        """One component field (O(1))."""
        self._allocator.require(entity_id)
        return self.table(component).get_field(entity_id, field)

    def set(self, entity_id: int, component: str, **values: Any) -> dict[str, Any]:
        """Update component fields; returns the delta ``{field: (old, new)}``."""
        self._allocator.require(entity_id)
        delta = self.table(component).update(entity_id, values)
        if delta:
            self._emit_change(
                "update", entity_id, component, {f: nv for f, (_o, nv) in delta.items()}
            )
        return delta

    def set_column(
        self,
        component: str,
        field: str,
        entity_ids: "Iterable[int]",
        values: "Iterable[Any]",
    ) -> int:
        """Set-at-a-time write of one field across many entities.

        The columnar fast path behind :class:`BatchSystem`: index and
        aggregate maintenance stay exact (the table emits per-entity
        deltas to its observers), and change hooks fire per entity only
        when any are registered.
        """
        table = self.table(component)
        hooks = self._change_hooks
        if hooks:
            # A hook may declare bulk-update disinterest for specific
            # columns (``skips_update(component, field) -> bool``) — the
            # shared-memory shard journal does this for fields that sync
            # through shm segments instead of delta records.  When every
            # hook skips this column the whole-column fast path stays.
            hooks = [
                h
                for h in hooks
                if not getattr(h, "skips_update", _never_skips)(component, field)
            ]
        if not hooks:
            return table.update_column(field, entity_ids, values)
        ids = list(entity_ids)
        vals = list(values)
        before = table.gather(field, ids)
        changed = table.update_column(field, ids, vals)
        if changed:
            for eid, old, new in zip(ids, before, vals):
                if old != new:
                    payload = {field: new}
                    for hook in hooks:
                        hook("update", eid, component, payload)
        return changed

    def update_batch(
        self,
        component: str,
        entity_ids: "Iterable[int]",
        columns: "Mapping[str, Iterable[Any]]",
    ) -> int:
        """Bulk write-back of several columns at once; returns changed cells.

        The write half of set-at-a-time script execution: a lowered script
        loop computes new column values for the whole entity set, then
        lands them here in one call per field.  Each field goes through
        :meth:`set_column`, so validation, index maintenance, and change
        hooks behave exactly as if the script had written row by row.
        """
        ids = list(entity_ids)
        changed = 0
        for field, values in columns.items():
            changed += self.set_column(component, field, ids, values)
        return changed

    # ----------------------------------------------------------------- queries

    def query(self, component: str) -> Query:
        """Start a declarative query rooted at ``component``."""
        return Query(self, component)

    def nearest(
        self, component: str, cx: float, cy: float, k: int = 1
    ) -> list[tuple[int, float]]:
        """K-nearest entities carrying ``component`` to a point."""
        return nearest_neighbors(self, component, cx, cy, k)

    # -------------------------------------------------------------- aggregates

    def create_aggregate(
        self,
        component: str,
        agg: str,
        field: str | None = None,
        where: Predicate | None = None,
        group_by: str | None = None,
    ) -> AggregateView:
        """Create an incrementally-maintained aggregate view."""
        return AggregateView(self.table(component), agg, field, where, group_by)

    def create_topk(
        self,
        component: str,
        field: str,
        k: int,
        largest: bool = True,
        where: Predicate | None = None,
    ) -> TopKView:
        """Create an incrementally-maintained TOP-K view."""
        return TopKView(self.table(component), field, k, largest, where)

    # ------------------------------------------------------------------ systems

    def add_system(
        self, system: System | Callable[..., Any], priority: int | None = None
    ) -> System:
        """Register a system with the scheduler.

        Accepts a :class:`System` instance or a plain callable decorated
        with :func:`repro.core.systems.system` — the decorator's
        name/spec/interval/priority are honoured (an explicit ``priority``
        argument wins over the decorator's).
        """
        if not isinstance(system, System):
            if priority is None:
                priority = getattr(system, "__system_priority__", 100)
            system = FunctionSystem.from_callable(system)
        return self.scheduler.add(system, 100 if priority is None else priority)

    def add_function_system(
        self,
        name: str,
        fn: Callable[["GameWorld", float], None],
        priority: int = 100,
        interval: int = 1,
    ) -> System:
        """Register a plain function as a system."""
        return self.scheduler.add(FunctionSystem(name, fn, interval), priority)

    def add_per_entity_system(
        self,
        name: str,
        components: Iterable[str],
        fn: Callable[["GameWorld", int, float], None],
        priority: int = 100,
        interval: int = 1,
        writes: Iterable[str] | None = None,
    ) -> System:
        """Register a tuple-at-a-time system.

        Passing ``writes`` declares a :class:`SystemSpec` (reads are the
        signature components) so the parallel scheduler can phase it.
        """
        return self.scheduler.add(
            PerEntitySystem(
                name,
                tuple(components),
                fn,
                interval,
                writes=None if writes is None else tuple(writes),
            ),
            priority,
        )

    def add_batch_system(
        self,
        name: str,
        reads: Iterable[str],
        fn: Callable[..., dict | None],
        priority: int = 100,
        interval: int = 1,
        writes: Iterable[str] | None = None,
        elementwise: bool = False,
    ) -> System:
        """Register a set-at-a-time (columnar) system.

        Passing ``writes`` (column refs the callback may return) declares
        a :class:`SystemSpec` and enables state-effect execution: the
        system can then run concurrently inside a parallel tick phase.
        ``elementwise=True`` additionally lets the parallel executor
        split the kernel into per-worker row chunks (legal only when row
        ``i`` of the output depends solely on row ``i`` of the inputs).
        """
        return self.scheduler.add(
            BatchSystem(
                name,
                tuple(reads),
                fn,
                interval,
                writes=None if writes is None else tuple(writes),
                elementwise=elementwise,
            ),
            priority,
        )

    # --------------------------------------------------------------------- tick

    def tick(self) -> int:
        """Advance the world one frame; returns the new tick number."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            return self._tick_body()
        tracer.begin_tick(self.clock.tick + 1)
        with tracer.span("tick", cat="core", entities=self.entity_count):
            return self._tick_body()

    def _tick_body(self) -> int:
        tick = self.clock.advance()
        if self._parallel_executor is not None:
            self._parallel_executor.run_tick(tick, self.clock.dt)
        else:
            self.scheduler.run_tick(self, tick, self.clock.dt, self.budget)
        self.catalog.pump()
        self.events.flush_deferred()
        self.budget.end_frame()
        return tick

    # ---------------------------------------------------------------- parallel

    def enable_parallel(self, workers: int = 2):
        """Run ticks through the state-effect parallel executor.

        Systems are partitioned into conflict-free phases from their
        :class:`~repro.core.systems.SystemSpec` declarations; within a
        phase, effect-capable systems compute concurrently on a thread
        pool and their effect buffers merge in registration order, so
        :meth:`state_hash` stays bit-identical to serial execution.
        Returns the executor (its :meth:`stats` reports phase counts).
        """
        from repro.parallel.executor import ParallelTickExecutor

        if self._parallel_executor is not None:
            self._parallel_executor.close()
        self._parallel_executor = ParallelTickExecutor(self, workers=workers)
        return self._parallel_executor

    def disable_parallel(self) -> None:
        """Return to plain serial tick execution."""
        if self._parallel_executor is not None:
            self._parallel_executor.close()
            self._parallel_executor = None

    @property
    def parallel_executor(self):
        """The active parallel executor, or None when running serially."""
        return self._parallel_executor

    def run(self, frames: int) -> None:
        """Advance ``frames`` frames."""
        for _ in range(frames):
            self.tick()

    def emit(self, topic: str, data: dict | None = None, source: int | None = None, importance: float = 0.0) -> int:
        """Publish a game event stamped with the current tick."""
        return self.events.publish(
            Event(topic, data or {}, source=source, tick=self.clock.tick, importance=importance)
        )

    # ---------------------------------------------------------------- snapshots

    def snapshot(self) -> dict[str, Any]:
        """Deep-copyable snapshot of all entity/component state.

        Used by checkpointing and by tests asserting recovery fidelity.
        The snapshot contains only plain python data.
        """
        return {
            "entities": {
                eid: sorted(comps) for eid, comps in self._components_of.items()
            },
            "tables": {
                name: {eid: row for eid, row in table.rows()}
                for name, table in self._tables.items()
            },
            "tick": self.clock.tick,
        }

    def snapshot_entity(self, entity_id: int) -> dict[str, dict[str, Any]]:
        """Snapshot one entity as ``{component: row}`` plain data.

        The unit of cross-shard migration: together with
        :meth:`restore_entity` it moves an entity between worlds while
        preserving its id.
        """
        self._allocator.require(entity_id)
        return {
            comp: self.table(comp).get(entity_id)
            for comp in sorted(self._components_of[entity_id])
        }

    def restore_entity(
        self, entity_id: int, components: Mapping[str, Mapping[str, Any]]
    ) -> int:
        """Install an entity under an exact, externally-allocated id.

        The inverse of :meth:`snapshot_entity`; used by cluster shards
        accepting a handoff.  Change hooks observe a normal spawn.
        """
        self._allocator.adopt(entity_id)
        self._components_of[entity_id] = set()
        self._emit_change("spawn", entity_id)
        for comp, values in components.items():
            self.attach(entity_id, comp, **values)
        return entity_id

    def state_hash(self) -> str:
        """Deterministic hex digest of all entity/component state.

        Canonicalises :meth:`snapshot` (sorted entities, tables, and
        fields) before hashing, so two worlds that hold the same logical
        state hash identically regardless of insertion order.  The
        cluster's deterministic-replay tests compare these digests.
        """
        import hashlib

        snap = self.snapshot()
        parts: list[str] = [f"tick={snap['tick']}"]
        for eid in sorted(snap["entities"]):
            parts.append(f"e{eid}:{','.join(snap['entities'][eid])}")
        for name in sorted(snap["tables"]):
            rows = snap["tables"][name]
            parts.append(f"t:{name}")
            for eid in sorted(rows):
                fields = ",".join(
                    f"{k}={rows[eid][k]!r}" for k in sorted(rows[eid])
                )
                parts.append(f"{eid}|{fields}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Restore entity/component state from :meth:`snapshot`.

        Existing entities are destroyed first.  Entity ids are preserved
        exactly (the allocator is rebuilt), so references inside component
        data remain valid.
        """
        for eid in tuple(self._components_of):
            self.destroy(eid)
        self._allocator = EntityAllocator()
        # Rebuild allocator state to reproduce the exact ids.
        from repro.core.entity import unpack_id

        entities = snapshot["entities"]
        max_slot = -1
        for eid in entities:
            slot, _gen = unpack_id(eid)
            max_slot = max(max_slot, slot)
        self._allocator._generations = [0] * (max_slot + 1)
        used_slots = set()
        for eid in entities:
            slot, gen = unpack_id(eid)
            self._allocator._generations[slot] = gen
            self._allocator._live.add(eid)
            used_slots.add(slot)
        self._allocator._free = [
            s for s in range(max_slot + 1) if s not in used_slots
        ]
        for eid in entities:
            self._components_of[eid] = set()
            self._emit_change("spawn", eid)
        for name, rows in snapshot["tables"].items():
            for eid, row in rows.items():
                self.attach(eid, name, **row)
        self.clock.rewind_to(snapshot.get("tick", 0))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GameWorld(entities={self.entity_count}, "
            f"components={len(self._tables)}, tick={self.clock.tick})"
        )


def diff_worlds(a: "GameWorld", b: "GameWorld") -> list[str]:
    """Human-readable divergence report between two worlds.

    Returns an empty list when the worlds hold identical logical state
    (same tick, entities, components, and field values); otherwise one
    line per difference.  ``state_hash`` says *that* two worlds diverged;
    this says *where* — the first tool to reach for when a replica or a
    replayed run stops matching its reference.
    """
    out: list[str] = []
    snap_a, snap_b = a.snapshot(), b.snapshot()
    if snap_a["tick"] != snap_b["tick"]:
        out.append(f"tick: {snap_a['tick']} != {snap_b['tick']}")
    ents_a, ents_b = snap_a["entities"], snap_b["entities"]
    for eid in sorted(set(ents_a) - set(ents_b)):
        out.append(f"entity {eid}: only in first world")
    for eid in sorted(set(ents_b) - set(ents_a)):
        out.append(f"entity {eid}: only in second world")
    for eid in sorted(set(ents_a) & set(ents_b)):
        if ents_a[eid] != ents_b[eid]:
            out.append(
                f"entity {eid}: components {ents_a[eid]} != {ents_b[eid]}"
            )
    tables_a, tables_b = snap_a["tables"], snap_b["tables"]
    for name in sorted(set(tables_a) & set(tables_b)):
        rows_a, rows_b = tables_a[name], tables_b[name]
        for eid in sorted(set(rows_a) & set(rows_b)):
            row_a, row_b = rows_a[eid], rows_b[eid]
            for fieldname in sorted(set(row_a) | set(row_b)):
                va, vb = row_a.get(fieldname), row_b.get(fieldname)
                if va != vb:
                    out.append(
                        f"{name}[{eid}].{fieldname}: {va!r} != {vb!r}"
                    )
    return out
