"""Query plan cache keyed on query shape, invalidated by statistics epochs.

Planning is cheap for one query but dominant at game scale: the same
handful of query shapes run every animation frame, and rebuilding the
plan each time is pure tuple-at-a-time overhead.  The cache keys on the
query's *shape* — component list, structural predicate signature, spatial
clause, order/limit — and tags every entry with the involved tables'
``stats_epoch``, the index catalog version, and the schema catalog
version at build time.  A lookup whose epochs still match returns the
cached plan without touching the planner; any insert/delete
(cardinalities moved), index create/drop (access paths moved), or
schema alter begin/commit (the table's shape moved) bumps an epoch and
the entry rebuilds on next use.

Plans are safe to share across calls because access paths rebind their
index at execute time (see :class:`repro.core.planner.AccessPath.fetch`)
and residual closures only capture predicate constants.  Queries whose
predicates contain :class:`~repro.core.predicates.Custom` nodes are
uncacheable — closure identity is not query shape — and simply plan
fresh, exactly as before.

On every hit the plan's recorded advisor events are replayed into the
world's :class:`~repro.core.indexes.IndexAdvisor`, so "you keep scanning
Health.hp" advice stays proportional to how often the workload *runs* a
shape, not to how often it gets planned.
"""

from __future__ import annotations

import threading
from typing import Any, TYPE_CHECKING

from repro.core.predicates import predicate_signature
from repro.core.planner import QueryPlan
from repro.obs.metrics import Counter, StatsRow

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.world import GameWorld


class PlanCacheStats(StatsRow):
    """Snapshot of the cache's registry-backed counters."""

    COLUMNS = ("entries", "hits", "misses", "invalidations", "uncacheable")


class PlanCache:
    """Shape-keyed cache of :class:`QueryPlan` objects with epoch validation.

    Parameters
    ----------
    world:
        Owning world; supplies the planner, tables, and index managers.
    max_entries:
        FIFO capacity bound.  Per-entity spatial queries (a ``within``
        around every NPC) mint a distinct signature per center, so an
        unbounded cache would grow with the entity count; a small FIFO
        keeps the steady-state shapes hot and lets one-off shapes churn.
    """

    def __init__(self, world: "GameWorld", max_entries: int = 512):
        self.world = world
        self.max_entries = max_entries
        self._entries: dict[Any, tuple[QueryPlan, tuple]] = {}
        # Counters live in the world's metrics registry when one is
        # attached (so ``obs.snapshot()`` sees them); otherwise they are
        # free-standing cells with the same API.
        obs = getattr(world, "obs", None)
        registry = obs.metrics if obs is not None else None

        def cell(name: str) -> Counter:
            if registry is not None:
                return registry.counter(f"query.plan_cache.{name}")
            return Counter(f"query.plan_cache.{name}", {})

        self._c_hits = cell("hits")
        self._c_misses = cell("misses")
        self._c_invalidations = cell("invalidations")
        self._c_uncacheable = cell("uncacheable")
        # The parallel executor's thread pool may run queries from several
        # worker threads at once; the lock keeps counter totals and FIFO
        # bookkeeping exact (completion order may vary, counts may not).
        self._lock = threading.Lock()

    # -- counter facade (attribute API preserved) ----------------------------

    @property
    def hits(self) -> int:
        return self._c_hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._c_hits.value = value

    @property
    def misses(self) -> int:
        return self._c_misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._c_misses.value = value

    @property
    def invalidations(self) -> int:
        return self._c_invalidations.value

    @invalidations.setter
    def invalidations(self, value: int) -> None:
        self._c_invalidations.value = value

    @property
    def uncacheable(self) -> int:
        return self._c_uncacheable.value

    @uncacheable.setter
    def uncacheable(self, value: int) -> None:
        self._c_uncacheable.value = value

    # -- key construction ----------------------------------------------------

    def signature(self, query: Any) -> tuple | None:
        """Hashable shape key for ``query``, or None when uncacheable."""
        parts: list[Any] = []
        components = query.component_names()
        for comp in components:
            psig = predicate_signature(query.predicate_for(comp))
            if psig is None:
                return None
            spatial = query.spatial_for(comp)
            ssig = None
            if spatial is not None:
                ssig = (
                    spatial.cx,
                    spatial.cy,
                    spatial.radius,
                    spatial.x_field,
                    spatial.y_field,
                )
            parts.append((comp, psig, ssig))
        return (tuple(parts), query.order_spec(), query.limit_spec())

    def _epochs(self, components: tuple[str, ...]) -> tuple:
        world = self.world
        return tuple(
            (
                world.table(c).stats_epoch,
                world.index_manager(c).catalog_version,
                world.table(c).schema_version,
            )
            for c in components
        )

    # -- lookup --------------------------------------------------------------

    def lookup(self, query: Any) -> QueryPlan:
        """Return a valid plan for ``query``, planning only on miss.

        Emits a ``query.plan_cache`` tracer span (with a ``hit`` flag)
        when the world's tracer is enabled.
        """
        obs = getattr(self.world, "obs", None)
        tracer = obs.tracer if obs is not None else None
        if tracer is None or not tracer.enabled:
            return self._lookup(query)
        with tracer.span("query.plan_cache", cat="query") as sp:
            before = self.hits
            plan = self._lookup(query)
            sp.set(hit=self.hits > before, size=len(self._entries))
            return plan

    def _lookup(self, query: Any) -> QueryPlan:
        with self._lock:
            key = self.signature(query)
            if key is None:
                self.uncacheable += 1
                return self.world.planner.plan(query)
            components = query.component_names()
            epochs = self._epochs(components)
            entry = self._entries.get(key)
            if entry is not None:
                plan, cached_epochs = entry
                if cached_epochs == epochs:
                    self.hits += 1
                    plan.replay_advisor(self.world.index_advisor)
                    return plan
                del self._entries[key]
                self.invalidations += 1
            self.misses += 1
            plan = self.world.planner.plan(query)
            if len(self._entries) >= self.max_entries:
                # FIFO eviction: drop the oldest insertion (dict preserves
                # insertion order), bounding memory under per-entity shapes.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = (plan, epochs)
            return plan

    # -- maintenance / introspection ----------------------------------------

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> PlanCacheStats:
        """Counter snapshot (a :class:`StatsRow`) for reports and benchmarks."""
        return PlanCacheStats(
            entries=len(self._entries),
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            uncacheable=self.uncacheable,
        )
