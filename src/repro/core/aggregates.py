"""Incrementally-maintained aggregate views over component tables.

A naive script that recomputes "the average health of all orcs" or "the
nearest power-up" every frame turns an O(1) question into an O(n) pass —
multiplied across entities, the Ω(n²) blow-up the tutorial warns about.
The database answer is a *materialized aggregate view* maintained by
deltas: each table mutation adjusts the aggregate in O(1) (amortised), so
per-frame reads are constant time.

Supported aggregates: COUNT, SUM, AVG, MIN, MAX, TOP-K, and grouped
variants keyed by an arbitrary grouping field.  MIN/MAX use a lazy
multiset so deletions of non-extreme values stay O(log n).
"""

from __future__ import annotations

import bisect
import heapq
from collections import defaultdict
from typing import Any, Mapping

from repro.core.predicates import Predicate
from repro.core.table import ComponentTable
from repro.errors import AggregateError


class _SumCount:
    """Running sum & count for SUM/COUNT/AVG."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, v: float) -> None:
        self.total += v
        self.count += 1

    def remove(self, v: float) -> None:
        self.total -= v
        self.count -= 1


class _MinMaxHeap:
    """Multiset supporting O(log n) insert/delete and O(1) min/max reads.

    Uses two heaps with lazy deletion; correct for the hashable, totally
    ordered values component fields hold.
    """

    def __init__(self) -> None:
        self._min_heap: list[Any] = []
        self._max_heap: list[Any] = []
        self._live: dict[Any, int] = defaultdict(int)
        self._size = 0

    def add(self, v: Any) -> None:
        self._live[v] += 1
        self._size += 1
        heapq.heappush(self._min_heap, v)
        heapq.heappush(self._max_heap, _Neg(v))

    def remove(self, v: Any) -> None:
        if self._live.get(v, 0) <= 0:
            raise AggregateError(f"removing value {v!r} not in aggregate")
        self._live[v] -= 1
        self._size -= 1

    def min(self) -> Any:
        while self._min_heap:
            v = self._min_heap[0]
            if self._live.get(v, 0) > 0:
                return v
            heapq.heappop(self._min_heap)
        return None

    def max(self) -> Any:
        while self._max_heap:
            v = self._max_heap[0].value
            if self._live.get(v, 0) > 0:
                return v
            heapq.heappop(self._max_heap)
        return None

    def __len__(self) -> int:
        return self._size


class _Neg:
    """Wrapper inverting comparison order for the max-heap."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and other.value == self.value


_SUPPORTED = ("count", "sum", "avg", "min", "max")


class AggregateView:
    """A materialized aggregate over one field of one component table.

    Parameters
    ----------
    table:
        The component table to aggregate over.
    agg:
        One of ``count``, ``sum``, ``avg``, ``min``, ``max``.
    field:
        The aggregated field (ignored for ``count``).
    where:
        Optional predicate restricting which rows participate.
    group_by:
        Optional grouping field; ``value()`` then takes a group key and
        ``groups()`` lists keys.

    The view subscribes to table deltas on construction and stays
    consistent until :meth:`close` is called.
    """

    def __init__(
        self,
        table: ComponentTable,
        agg: str,
        field: str | None = None,
        where: Predicate | None = None,
        group_by: str | None = None,
    ):
        if agg not in _SUPPORTED:
            raise AggregateError(
                f"unsupported aggregate {agg!r}; expected one of {_SUPPORTED}"
            )
        if agg != "count" and field is None:
            raise AggregateError(f"aggregate {agg!r} requires a field")
        if field is not None:
            table.schema.field(field)
        if group_by is not None:
            table.schema.field(group_by)
        self.table = table
        self.agg = agg
        self.field = field
        self.where = where
        self.group_by = group_by
        self._sums: dict[Any, _SumCount] = defaultdict(_SumCount)
        self._heaps: dict[Any, _MinMaxHeap] = defaultdict(_MinMaxHeap)
        self._member_value: dict[int, tuple[Any, Any]] = {}  # eid -> (group, value)
        self.maintenance_ops = 0
        for entity_id, row in table.rows():
            if self._qualifies(row):
                self._add(entity_id, row)
        table.add_observer(self._on_delta)
        self._closed = False

    # -- public reads ---------------------------------------------------------

    def value(self, group: Any = None) -> Any:
        """Current aggregate value (for ``group`` if grouped).

        COUNT/SUM of an empty set are 0; AVG/MIN/MAX of an empty set are
        ``None``.
        """
        if self.group_by is None and group is not None:
            raise AggregateError("view is not grouped; do not pass a group")
        key = group if self.group_by is not None else None
        if self.agg == "count":
            return self._sums[key].count if key in self._sums else 0
        if self.agg == "sum":
            return self._sums[key].total if key in self._sums else 0
        if self.agg == "avg":
            sc = self._sums.get(key)
            if sc is None or sc.count == 0:
                return None
            return sc.total / sc.count
        heap = self._heaps.get(key)
        if heap is None or len(heap) == 0:
            return None
        return heap.min() if self.agg == "min" else heap.max()

    def groups(self) -> list[Any]:
        """All group keys with at least one qualifying row."""
        if self.group_by is None:
            raise AggregateError("view is not grouped")
        if self.agg in ("min", "max"):
            return [k for k, h in self._heaps.items() if len(h) > 0]
        return [k for k, sc in self._sums.items() if sc.count > 0]

    def recompute(self) -> Any:
        """Recompute the aggregate from scratch (the baseline for E11).

        Returns the same shape as :meth:`value` / a dict keyed by group.
        Does not touch the incremental state.
        """
        rows = [row for _eid, row in self.table.rows() if self._qualifies(row)]
        if self.group_by is None:
            return self._fold(rows)
        grouped: dict[Any, list] = defaultdict(list)
        for row in rows:
            grouped[row[self.group_by]].append(row)
        return {k: self._fold(v) for k, v in grouped.items()}

    def close(self) -> None:
        """Detach from the table; the view stops being maintained."""
        if not self._closed:
            self.table.remove_observer(self._on_delta)
            self._closed = True

    # -- delta maintenance ------------------------------------------------------

    def _on_delta(self, kind: str, entity_id: int, payload: Mapping[str, Any]) -> None:
        self.maintenance_ops += 1
        if kind == "insert":
            if self._qualifies(payload):
                self._add(entity_id, payload)
        elif kind == "delete":
            if entity_id in self._member_value:
                self._remove(entity_id)
        elif kind == "update":
            # Rebuild this entity's contribution from the current row.  The
            # delta only carries changed fields, so fetch the full row.
            was_member = entity_id in self._member_value
            relevant = self._relevant_fields()
            if relevant and not (relevant & set(payload)):
                return
            row = self.table.get(entity_id)
            is_member = self._qualifies(row)
            if was_member:
                self._remove(entity_id)
            if is_member:
                self._add(entity_id, row)

    def _relevant_fields(self) -> set[str]:
        fields: set[str] = set()
        if self.field is not None:
            fields.add(self.field)
        if self.group_by is not None:
            fields.add(self.group_by)
        if self.where is not None:
            fields |= self.where.fields()
            if not self.where.fields():
                return set()  # custom predicate with unknown deps: always relevant
        return fields

    def _qualifies(self, row: Mapping[str, Any]) -> bool:
        return self.where is None or self.where.evaluate(row)

    def _add(self, entity_id: int, row: Mapping[str, Any]) -> None:
        key = row[self.group_by] if self.group_by is not None else None
        value = row[self.field] if self.field is not None else None
        self._member_value[entity_id] = (key, value)
        if self.agg in ("count", "sum", "avg"):
            self._sums[key].add(float(value) if value is not None else 0.0)
        else:
            self._heaps[key].add(value)

    def _remove(self, entity_id: int) -> None:
        key, value = self._member_value.pop(entity_id)
        if self.agg in ("count", "sum", "avg"):
            self._sums[key].remove(float(value) if value is not None else 0.0)
        else:
            self._heaps[key].remove(value)

    def _fold(self, rows: list) -> Any:
        if self.agg == "count":
            return len(rows)
        values = [r[self.field] for r in rows]
        if self.agg == "sum":
            return float(sum(values)) if values else 0
        if self.agg == "avg":
            return (sum(values) / len(values)) if values else None
        if not values:
            return None
        return min(values) if self.agg == "min" else max(values)


class TopKView:
    """Materialized TOP-K view: the K largest (or smallest) values of a field.

    Maintains a full sorted mirror of qualifying rows so arbitrary
    deletions stay cheap; reads are O(k).  This is the structure behind
    leaderboards and "pick the highest-threat target" queries.
    """

    def __init__(
        self,
        table: ComponentTable,
        field: str,
        k: int,
        largest: bool = True,
        where: Predicate | None = None,
    ):
        if k <= 0:
            raise AggregateError("k must be positive")
        table.schema.field(field)
        self.table = table
        self.field = field
        self.k = k
        self.largest = largest
        self.where = where
        self._pairs: list[tuple[Any, int]] = []  # sorted (value, eid)
        self._value_of: dict[int, Any] = {}
        self.maintenance_ops = 0
        for entity_id, row in table.rows():
            if self._qualifies(row):
                self._add(entity_id, row[field])
        table.add_observer(self._on_delta)
        self._closed = False

    def top(self) -> list[tuple[int, Any]]:
        """The current top-k as ``[(entity_id, value), ...]`` best-first."""
        if self.largest:
            slice_ = self._pairs[-self.k:][::-1]
        else:
            slice_ = self._pairs[: self.k]
        return [(eid, v) for v, eid in slice_]

    def best(self) -> tuple[int, Any] | None:
        """The single best entry, or None when the view is empty."""
        ranked = self.top()
        return ranked[0] if ranked else None

    def close(self) -> None:
        """Detach from the table; the view stops being maintained."""
        if not self._closed:
            self.table.remove_observer(self._on_delta)
            self._closed = True

    def _qualifies(self, row: Mapping[str, Any]) -> bool:
        return self.where is None or self.where.evaluate(row)

    def _add(self, entity_id: int, value: Any) -> None:
        bisect.insort(self._pairs, (value, entity_id))
        self._value_of[entity_id] = value

    def _discard(self, entity_id: int) -> None:
        value = self._value_of.pop(entity_id)
        i = bisect.bisect_left(self._pairs, (value, entity_id))
        if i < len(self._pairs) and self._pairs[i] == (value, entity_id):
            self._pairs.pop(i)

    def _on_delta(self, kind: str, entity_id: int, payload: Mapping[str, Any]) -> None:
        self.maintenance_ops += 1
        if kind == "insert":
            if self._qualifies(payload):
                self._add(entity_id, payload[self.field])
        elif kind == "delete":
            if entity_id in self._value_of:
                self._discard(entity_id)
        elif kind == "update":
            relevant = {self.field}
            if self.where is not None:
                relevant |= self.where.fields() or set(payload)
            if not (relevant & set(payload)):
                return
            if entity_id in self._value_of:
                self._discard(entity_id)
            row = self.table.get(entity_id)
            if self._qualifies(row):
                self._add(entity_id, row[self.field])

    def __len__(self) -> int:
        return len(self._pairs)
