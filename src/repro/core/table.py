"""Columnar component tables — the storage engine of the game database.

Each component type is stored as one :class:`ComponentTable`: a set of
parallel column lists plus an entity-id column, with a hash map from entity
id to row slot.  This is the classic "structure of arrays" layout game
engines use for cache efficiency, and simultaneously the heap-file layout a
column store would use.

Deletions swap the last row into the vacated slot (O(1)), so row order is
unstable; stable identity is the entity id.  Every mutation bumps a version
counter and notifies registered observers (indexes, aggregate views,
replication) with fine-grained deltas.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.component import ComponentSchema
from repro.core.columns import TypedColumn, make_column
from repro.errors import ComponentMissingError, DuplicateComponentError, SchemaError

#: Observer callback signature: (kind, entity_id, field_values) where kind is
#: "insert" | "delete" | "update".  For updates, field_values maps each
#: changed field to (old, new); for insert/delete it maps field -> value.
TableObserver = Callable[[str, int, Mapping[str, Any]], None]


class _AlterState:
    """Bookkeeping for one in-progress online schema alter.

    While active, the table's logical schema is already the *target*
    schema; rows listed in ``unmigrated`` still hold placeholder values
    in the affected columns, and their true values are computed on read
    from the ``retained`` old columns (dual-version reads).  Backfill
    drains ``unmigrated`` a batch per tick; ``commit`` drops the retained
    columns.
    """

    __slots__ = (
        "steps", "old_schema", "new_schema", "affected", "retained",
        "renamed", "unmigrated",
    )

    def __init__(
        self,
        steps: tuple,
        old_schema: ComponentSchema,
        new_schema: ComponentSchema,
        affected: frozenset[str],
        retained: dict[str, list],
        renamed: dict[str, str],
        unmigrated: set[int],
    ):
        self.steps = steps
        self.old_schema = old_schema
        self.new_schema = new_schema
        #: target-schema fields whose values need backfill computation
        self.affected = affected
        #: old columns kept (as plain lists) for dual-version reads
        self.retained = retained
        #: old field name -> new field name for renames
        self.renamed = renamed
        #: entity ids whose affected columns still hold placeholders
        self.unmigrated = unmigrated


def _wants_update(obs: TableObserver, field: str) -> bool:
    """Whether an observer needs per-row "update" deltas for ``field``.

    Observers opt out by exposing ``wants_update(field) -> bool`` — on
    themselves, or on the owner when the observer is a bound method
    (e.g. ``IndexManager._on_delta``).  Absence means interested, so
    plain callables keep the exact-delta contract unchanged.
    """
    owner = getattr(obs, "__self__", obs)
    wants = getattr(owner, "wants_update", None)
    return True if wants is None else bool(wants(field))


class ComponentTable:
    """Columnar storage for all instances of one component type.

    The table behaves like a relation keyed by entity id.  All reads hand
    out copies or immutable views; mutation goes through :meth:`insert`,
    :meth:`update`, and :meth:`delete` so observers always see every delta.
    """

    def __init__(self, schema: ComponentSchema):
        self.schema = schema
        # Numeric non-nullable fields live on typed buffers (array('d') /
        # array('q') or numpy, see repro.core.columns); the rest stay
        # plain object lists.  Both satisfy the same list protocol, so
        # every mutation path below is backend-oblivious.
        self._columns: dict[str, Any] = {
            name: make_column(schema.field(name))
            for name in schema.field_names
        }
        self._entities: list[int] = []
        self._slot_of: dict[int, int] = {}
        self._observers: list[TableObserver] = []
        self.version = 0
        #: Statistics epoch: bumped only when the row *set* changes
        #: (insert/delete), i.e. when the planner's cardinality estimates
        #: go stale.  Plain updates leave it alone, so steady-state frames
        #: that only mutate fields keep their cached plans.
        self.stats_epoch = 0
        #: Catalog version of this table's schema: bumped when an alter
        #: begins (logical schema switches to the target) and again when
        #: it commits.  Cached plans key on it, so a schema change
        #: invalidates every plan compiled against the old shape.
        self.schema_version = 1
        self._alter: _AlterState | None = None

    # -- observers ----------------------------------------------------------

    def add_observer(self, observer: TableObserver) -> None:
        """Register a delta observer (index, aggregate view, replicator)."""
        self._observers.append(observer)

    def remove_observer(self, observer: TableObserver) -> None:
        """Unregister a previously-added observer."""
        self._observers.remove(observer)

    def _notify(self, kind: str, entity_id: int, payload: Mapping[str, Any]) -> None:
        self.version += 1
        for obs in self._observers:
            obs(kind, entity_id, payload)

    # -- size / membership ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._slot_of

    @property
    def entity_ids(self) -> tuple[int, ...]:
        """Snapshot of all entity ids currently in the table."""
        return tuple(self._entities)

    # -- mutation -----------------------------------------------------------

    def insert(self, entity_id: int, values: Mapping[str, Any]) -> dict[str, Any]:
        """Insert a validated row for ``entity_id``; returns the stored row."""
        if entity_id in self._slot_of:
            raise DuplicateComponentError(
                f"entity {entity_id} already has component {self.schema.name}"
            )
        row = self.schema.validate(values)
        slot = len(self._entities)
        self._entities.append(entity_id)
        self._slot_of[entity_id] = slot
        for fname in self.schema.field_names:
            self._columns[fname].append(row[fname])
        if self._alter is not None:
            # Rows inserted mid-alter are validated against the target
            # schema and born migrated; the retained old columns grow a
            # filler cell to stay slot-parallel (never read for this row).
            for rc in self._alter.retained.values():
                rc.append(None)
        self.stats_epoch += 1
        self._notify("insert", entity_id, row)
        return row

    def update(self, entity_id: int, values: Mapping[str, Any]) -> dict[str, Any]:
        """Apply a partial update; returns mapping field -> (old, new).

        No-op fields (new value equals old) are dropped from the delta and
        do not wake observers, which keeps index maintenance proportional
        to *real* change — important when scripts write unchanged values
        every frame.
        """
        slot = self._require_slot(entity_id)
        updates = self.schema.validate_update(values)
        a = self._alter
        if (
            a is not None
            and entity_id in a.unmigrated
            and a.affected & updates.keys()
        ):
            # Writes never block on backfill: materialize the row's
            # migrated values first, then apply the update on top.
            self._materialize(entity_id)
        delta: dict[str, tuple[Any, Any]] = {}
        for fname, new in updates.items():
            old = self._columns[fname][slot]
            if old != new:
                delta[fname] = (old, new)
                self._columns[fname][slot] = new
        if delta:
            self._notify("update", entity_id, delta)
        return delta

    def update_column(
        self, field: str, entity_ids: Iterable[int], values: Iterable[Any]
    ) -> int:
        """Set-at-a-time update of one column; returns changed-row count.

        This is the columnar fast path used by
        :class:`~repro.core.systems.BatchSystem`: values are validated and
        written directly into the column array.  Observers that need
        per-entity deltas still receive them (indexes must stay exact),
        but observers may opt out per field via ``wants_update(field)``
        on themselves (or on a bound method's owner) — an index manager
        with no index over the written field does.  With no interested
        observer and ids in row order, the whole column is replaced in
        one buffer-speed write — the "join-processing on GPUs" execution
        style the tutorial describes.
        """
        fdef = self.schema.field(field)
        a = self._alter
        if a is not None and field in a.affected and a.unmigrated:
            entity_ids = list(entity_ids)
            for eid in entity_ids:
                if eid in a.unmigrated:
                    self._materialize(eid)
        col = self._columns[field]
        interested = [
            obs for obs in self._observers if _wants_update(obs, field)
        ]
        changed = 0
        if interested:
            for entity_id, value in zip(entity_ids, values):
                slot = self._require_slot(entity_id)
                new = fdef.validate(value)
                old = col[slot]
                if old != new:
                    col[slot] = new
                    changed += 1
                    self.version += 1
                    for obs in interested:
                        obs("update", entity_id, {field: (old, new)})
            return changed
        ids = entity_ids if isinstance(entity_ids, (list, tuple)) else list(
            entity_ids
        )
        if self._ids_in_row_order(ids):
            # Row-order bulk write: one validation pass, one compare
            # against the old contents, one in-place buffer replace.
            validate = fdef.validate
            new_vals = [validate(v) for v in values]
            if len(new_vals) == len(ids):
                old_vals = (
                    col.tolist() if isinstance(col, TypedColumn) else col
                )
                for old, new in zip(old_vals, new_vals):
                    if old != new:
                        changed += 1
                if changed:
                    if isinstance(col, TypedColumn):
                        col.replace(new_vals)
                    else:
                        col[:] = new_vals
                self.version += changed
                return changed
            values = new_vals  # fewer values than rows: per-row semantics
        for entity_id, value in zip(ids, values):
            slot = self._require_slot(entity_id)
            new = fdef.validate(value)
            if col[slot] != new:
                col[slot] = new
                changed += 1
        self.version += changed
        return changed

    def delete(self, entity_id: int) -> dict[str, Any]:
        """Remove the row for ``entity_id``; returns the removed values."""
        slot = self._require_slot(entity_id)
        a = self._alter
        if a is not None and entity_id in a.unmigrated:
            row = self.get(entity_id)
        else:
            row = {
                fname: self._columns[fname][slot]
                for fname in self.schema.field_names
            }
        last = len(self._entities) - 1
        moved_entity = self._entities[last]
        for fname in self.schema.field_names:
            col = self._columns[fname]
            col[slot] = col[last]
            col.pop()
        if a is not None:
            for rc in a.retained.values():
                rc[slot] = rc[last]
                rc.pop()
            a.unmigrated.discard(entity_id)
        self._entities[slot] = moved_entity
        self._entities.pop()
        self._slot_of[moved_entity] = slot
        del self._slot_of[entity_id]
        if entity_id == moved_entity and self._entities and slot < len(self._entities):
            # entity was the last row; nothing actually moved
            pass
        self.stats_epoch += 1
        self._notify("delete", entity_id, row)
        return row

    # -- reads --------------------------------------------------------------

    def get(self, entity_id: int) -> dict[str, Any]:
        """Return a copy of the row for ``entity_id``.

        During an online alter, unmigrated rows read at the *target*
        schema: affected values are computed from the retained old
        columns on the fly (dual-version reads).
        """
        slot = self._require_slot(entity_id)
        row = {
            fname: self._columns[fname][slot]
            for fname in self.schema.field_names
        }
        a = self._alter
        if a is not None and entity_id in a.unmigrated:
            row.update(self._new_values(slot))
        return row

    def get_field(self, entity_id: int, field: str) -> Any:
        """Return one field value for ``entity_id`` (O(1))."""
        slot = self._require_slot(entity_id)
        a = self._alter
        if a is not None and field in a.affected and entity_id in a.unmigrated:
            return self._new_values(slot)[field]
        try:
            return self._columns[field][slot]
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None

    def gather(self, field: str, entity_ids: Iterable[int]) -> list[Any]:
        """Batch read of one field for many entities (columnar fast path)."""
        try:
            col = self._columns[field]
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None
        slot_of = self._slot_of
        a = self._alter
        if a is not None and field in a.affected and a.unmigrated:
            try:
                return [
                    self._cell(field, slot_of[eid], eid) for eid in entity_ids
                ]
            except KeyError as exc:
                raise ComponentMissingError(
                    f"entity {exc.args[0]} has no component {self.schema.name}"
                ) from None
        try:
            if isinstance(col, TypedColumn):
                return col.gather([slot_of[eid] for eid in entity_ids])
            return [col[slot_of[eid]] for eid in entity_ids]
        except KeyError as exc:
            raise ComponentMissingError(
                f"entity {exc.args[0]} has no component {self.schema.name}"
            ) from None

    def column(self, field: str) -> tuple[Any, ...]:
        """Snapshot of an entire column (row order parallel to entity_ids)."""
        try:
            col = self._columns[field]
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None
        a = self._alter
        if a is not None and field in a.affected and a.unmigrated:
            return tuple(
                self._cell(field, slot, eid)
                for slot, eid in enumerate(self._entities)
            )
        return col.snapshot() if isinstance(col, TypedColumn) else tuple(col)

    def columns(self, fields: Iterable[str]) -> dict[str, tuple[Any, ...]]:
        """Snapshot of several columns at once (a batch read for systems)."""
        return {f: self.column(f) for f in fields}

    def column_view(self, field: str) -> "memoryview | tuple[Any, ...]":
        """Zero-copy read-only view of a typed column, in row order.

        Typed (packed numeric) columns return a ``memoryview`` over the
        live buffer: O(1), no materialization, and O(1) to slice — the
        read primitive of the chunked batch kernels.  The view is *live*
        for in-place cell writes but snapshot-stable across row growth
        (copy-on-grow).  Object-list columns fall back to an immutable
        tuple snapshot, so callers can treat the result uniformly as a
        read-only sequence.
        """
        try:
            col = self._columns[field]
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None
        a = self._alter
        if a is not None and field in a.affected and a.unmigrated:
            return self.column(field)
        if isinstance(col, TypedColumn):
            view = col.view()
            if view is not None:
                return view
            return col.snapshot()
        return tuple(col)

    def typed_fields(self) -> tuple[str, ...]:
        """Fields currently packed on typed buffers (not demoted).

        The shared-memory shard plane uses this to decide which columns
        can live in ``multiprocessing.shared_memory`` segments.
        """
        a = self._alter
        return tuple(
            f
            for f, col in self._columns.items()
            if isinstance(col, TypedColumn)
            and not col.demoted
            and (a is None or f not in a.affected)
        )

    def _ids_in_row_order(self, ids: "list[int] | tuple[int, ...]") -> bool:
        ents = self._entities
        if len(ids) != len(ents):
            return False
        return all(a == b for a, b in zip(ids, ents))

    def batch_rows(
        self,
        fields: Iterable[str],
        entity_ids: Iterable[int] | None = None,
        copy: bool = True,
    ) -> tuple[list[int], dict[str, Any]]:
        """Gather parallel column slices for set-at-a-time execution.

        Returns ``(ids, columns)`` where ``columns[f][i]`` is field ``f``
        of entity ``ids[i]``.  With ``entity_ids=None`` the whole table is
        read in row order; otherwise values are gathered for exactly the
        ids given, in the given order.  This is the read half of the
        batch execution path: ``Plan.execute_batch`` filters these slices
        with compiled vector functions instead of building a dict per row.

        With ``copy=False`` the columns of typed numeric fields come back
        as zero-copy read-only memoryviews whenever the requested ids are
        the table's own row order (``entity_ids=None``, or an id sequence
        that matches it — the common all-entities case).  Callers must
        treat them as frozen sequences and not hold them across
        structural mutations.
        """
        field_list = list(fields)
        for f in field_list:
            if f not in self._columns:
                raise SchemaError(
                    f"component {self.schema.name!r} has no field {f!r}"
                )
        a = self._alter
        if (
            a is not None
            and a.unmigrated
            and any(f in a.affected for f in field_list)
        ):
            ids = list(self._entities) if entity_ids is None else list(entity_ids)
            slot_of = self._slot_of
            try:
                slots = [slot_of[eid] for eid in ids]
            except KeyError as exc:
                raise ComponentMissingError(
                    f"entity {exc.args[0]} has no component {self.schema.name}"
                ) from None
            out: dict[str, Any] = {}
            for f in field_list:
                if f in a.affected:
                    out[f] = [
                        self._cell(f, s, e) for s, e in zip(slots, ids)
                    ]
                else:
                    col = self._columns[f]
                    if isinstance(col, TypedColumn):
                        out[f] = col.gather(slots)
                    else:
                        out[f] = [col[s] for s in slots]
            return ids, out
        if entity_ids is None:
            ids = list(self._entities)
            return ids, self._row_order_columns(field_list, copy)
        ids = list(entity_ids)
        if not copy and self._ids_in_row_order(ids):
            return ids, self._row_order_columns(field_list, copy)
        slot_of = self._slot_of
        try:
            slots = [slot_of[eid] for eid in ids]
        except KeyError as exc:
            raise ComponentMissingError(
                f"entity {exc.args[0]} has no component {self.schema.name}"
            ) from None
        out: dict[str, Any] = {}
        for f in field_list:
            col = self._columns[f]
            if isinstance(col, TypedColumn):
                out[f] = col.gather(slots)
            else:
                out[f] = [col[s] for s in slots]
        return ids, out

    def _row_order_columns(self, field_list: list[str], copy: bool) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for f in field_list:
            col = self._columns[f]
            if isinstance(col, TypedColumn):
                view = None if copy else col.view()
                out[f] = col.tolist() if view is None else view
            else:
                out[f] = list(col)
        return out

    def rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(entity_id, row_copy)`` over a snapshot of the table.

        The snapshot is taken up front, so callers may mutate the table
        while iterating — the exact hazard naive per-frame scripts hit.
        During an online alter, rows come back at the target schema
        (dual-version reads), so snapshots taken mid-migration look
        exactly like post-migration state.
        """
        a = self._alter
        if a is not None and a.unmigrated:
            return iter([
                (eid, self.get(eid)) for eid in tuple(self._entities)
            ])
        return self._rows_fast()

    def _rows_fast(self) -> Iterator[tuple[int, dict[str, Any]]]:
        ids = tuple(self._entities)
        snap = {
            f: (col.snapshot() if isinstance(col, TypedColumn) else tuple(col))
            for f, col in self._columns.items()
        }
        for slot, entity_id in enumerate(ids):
            yield entity_id, {f: snap[f][slot] for f in snap}

    def scan(
        self, predicate: Callable[[dict[str, Any]], bool] | None = None
    ) -> list[int]:
        """Full scan returning entity ids whose rows satisfy ``predicate``.

        This is the O(n) fallback the planner uses when no index applies.
        """
        if predicate is None:
            return list(self._entities)
        out = []
        for entity_id, row in self.rows():
            if predicate(row):
                out.append(entity_id)
        return out

    # -- online schema alter -------------------------------------------------

    @property
    def alter_in_progress(self) -> bool:
        """Whether an online schema alter is mid-backfill."""
        return self._alter is not None

    @property
    def unmigrated_count(self) -> int:
        """Rows whose affected columns still hold placeholders."""
        return len(self._alter.unmigrated) if self._alter is not None else 0

    def is_field_in_transition(self, field: str) -> bool:
        """Whether ``field`` is being rewritten by an in-progress alter."""
        return self._alter is not None and field in self._alter.affected

    def begin_alter(self, new_schema: ComponentSchema, steps: tuple) -> frozenset[str]:
        """Switch the logical schema to ``new_schema`` and start backfill.

        Old columns that alters drop, retype, transform, or split away
        are moved aside (retained) for dual-version reads; new/changed
        columns are created placeholder-filled.  Renames move the column
        instantly — no backfill.  Every existing row starts unmigrated;
        :meth:`migrate_batch` drains them and :meth:`commit_alter` drops
        the retained columns.  Returns the affected-field set.
        """
        from repro.schema.steps import (
            AddColumn,
            DropColumn,
            RenameColumn,
            RetypeColumn,
            SplitColumn,
            TransformColumn,
            affected_fields,
            placeholder_for,
        )

        if self._alter is not None:
            raise SchemaError(
                f"component {self.schema.name!r} already has an alter in progress"
            )
        nrows = len(self._entities)
        retained: dict[str, list] = {}
        renamed: dict[str, str] = {}

        def _retain(name: str) -> list:
            col = self._columns[name]
            vals = col.tolist() if isinstance(col, TypedColumn) else list(col)
            retained[name] = vals
            return vals

        def _new_col(name: str) -> None:
            fdef = new_schema.field(name)
            col = make_column(fdef)
            ph = placeholder_for(fdef)
            for _ in range(nrows):
                col.append(ph)
            self._columns[name] = col

        for step in steps:
            if isinstance(step, AddColumn):
                _new_col(step.name)
            elif isinstance(step, DropColumn):
                _retain(step.name)
                del self._columns[step.name]
            elif isinstance(step, RenameColumn):
                self._columns[step.new] = self._columns.pop(step.old)
                renamed[step.old] = step.new
            elif isinstance(step, RetypeColumn):
                _retain(step.name)
                _new_col(step.name)
            elif isinstance(step, TransformColumn):
                _retain(step.name)
            elif isinstance(step, SplitColumn):
                if step.drop_source:
                    _retain(step.source)
                    del self._columns[step.source]
                for target in step.into:
                    _new_col(target)
            else:
                raise SchemaError(f"unknown migration step {step!r}")
        self._alter = _AlterState(
            steps=tuple(steps),
            old_schema=self.schema,
            new_schema=new_schema,
            affected=affected_fields(steps),
            retained=retained,
            renamed=renamed,
            unmigrated=set(self._entities),
        )
        self.schema = new_schema
        self.schema_version += 1
        return self._alter.affected

    def migrate_batch(self, limit: int | None = None) -> list[int]:
        """Backfill up to ``limit`` unmigrated rows (all when ``None``).

        Rows are taken in table row order, so with the same mutation
        history every replica picks identical batches.  Returns the
        entity ids migrated.
        """
        a = self._alter
        if a is None or not a.unmigrated:
            return []
        pending = a.unmigrated
        if limit is None:
            ids = [e for e in self._entities if e in pending]
        else:
            ids = []
            for e in self._entities:
                if e in pending:
                    ids.append(e)
                    if len(ids) >= limit:
                        break
        for e in ids:
            self._materialize(e)
        return ids

    def migrate_ids(self, entity_ids: Iterable[int]) -> int:
        """Backfill exactly the given rows (replica/WAL replay path).

        Ids already migrated (e.g. by a write racing the journal) or
        since deleted are skipped; returns the count actually migrated.
        """
        a = self._alter
        if a is None:
            raise SchemaError(
                f"component {self.schema.name!r} has no alter in progress"
            )
        n = 0
        for eid in entity_ids:
            if eid in a.unmigrated and eid in self._slot_of:
                self._materialize(eid)
                n += 1
        return n

    def commit_alter(self) -> None:
        """Finish the alter: drop retained columns, bump the version."""
        a = self._alter
        if a is None:
            raise SchemaError(
                f"component {self.schema.name!r} has no alter in progress"
            )
        if a.unmigrated:
            raise SchemaError(
                f"component {self.schema.name!r}: cannot commit alter with "
                f"{len(a.unmigrated)} rows unmigrated"
            )
        self._alter = None
        self.schema_version += 1

    def _old_row(self, slot: int) -> dict[str, Any]:
        """Reconstruct the old-schema row for an unmigrated slot."""
        a = self._alter
        row: dict[str, Any] = {}
        for fname in a.old_schema.field_names:
            if fname in a.retained:
                row[fname] = a.retained[fname][slot]
            else:
                row[fname] = self._columns[a.renamed.get(fname, fname)][slot]
        return row

    def _new_values(self, slot: int) -> dict[str, Any]:
        """Target-schema values of the affected fields for one slot."""
        from repro.schema.steps import apply_steps_to_row

        a = self._alter
        migrated = apply_steps_to_row(a.steps, self._old_row(slot))
        return {
            f: a.new_schema.fields[f].validate(migrated[f])
            for f in a.affected
        }

    def _materialize(self, entity_id: int) -> None:
        """Write one row's migrated values into the live columns.

        Observer-silent by design: indexes over affected fields are
        dropped when the alter begins and cannot be created while it is
        in transition, so there is nothing to maintain — and replicas
        replay the same batches from the journal instead of deltas.
        """
        a = self._alter
        slot = self._slot_of[entity_id]
        for fname, value in self._new_values(slot).items():
            self._columns[fname][slot] = value
        a.unmigrated.discard(entity_id)
        self.version += 1

    def _cell(self, field: str, slot: int, entity_id: int) -> Any:
        """One cell at the target schema (dual-read aware)."""
        a = self._alter
        if a is not None and field in a.affected and entity_id in a.unmigrated:
            return self._new_values(slot)[field]
        return self._columns[field][slot]

    # -- internals ----------------------------------------------------------

    def _require_slot(self, entity_id: int) -> int:
        try:
            return self._slot_of[entity_id]
        except KeyError:
            raise ComponentMissingError(
                f"entity {entity_id} has no component {self.schema.name}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentTable({self.schema.name}, rows={len(self)})"
