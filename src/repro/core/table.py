"""Columnar component tables — the storage engine of the game database.

Each component type is stored as one :class:`ComponentTable`: a set of
parallel column lists plus an entity-id column, with a hash map from entity
id to row slot.  This is the classic "structure of arrays" layout game
engines use for cache efficiency, and simultaneously the heap-file layout a
column store would use.

Deletions swap the last row into the vacated slot (O(1)), so row order is
unstable; stable identity is the entity id.  Every mutation bumps a version
counter and notifies registered observers (indexes, aggregate views,
replication) with fine-grained deltas.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.component import ComponentSchema
from repro.errors import ComponentMissingError, DuplicateComponentError, SchemaError

#: Observer callback signature: (kind, entity_id, field_values) where kind is
#: "insert" | "delete" | "update".  For updates, field_values maps each
#: changed field to (old, new); for insert/delete it maps field -> value.
TableObserver = Callable[[str, int, Mapping[str, Any]], None]


class ComponentTable:
    """Columnar storage for all instances of one component type.

    The table behaves like a relation keyed by entity id.  All reads hand
    out copies or immutable views; mutation goes through :meth:`insert`,
    :meth:`update`, and :meth:`delete` so observers always see every delta.
    """

    def __init__(self, schema: ComponentSchema):
        self.schema = schema
        self._columns: dict[str, list[Any]] = {
            name: [] for name in schema.field_names
        }
        self._entities: list[int] = []
        self._slot_of: dict[int, int] = {}
        self._observers: list[TableObserver] = []
        self.version = 0
        #: Statistics epoch: bumped only when the row *set* changes
        #: (insert/delete), i.e. when the planner's cardinality estimates
        #: go stale.  Plain updates leave it alone, so steady-state frames
        #: that only mutate fields keep their cached plans.
        self.stats_epoch = 0

    # -- observers ----------------------------------------------------------

    def add_observer(self, observer: TableObserver) -> None:
        """Register a delta observer (index, aggregate view, replicator)."""
        self._observers.append(observer)

    def remove_observer(self, observer: TableObserver) -> None:
        """Unregister a previously-added observer."""
        self._observers.remove(observer)

    def _notify(self, kind: str, entity_id: int, payload: Mapping[str, Any]) -> None:
        self.version += 1
        for obs in self._observers:
            obs(kind, entity_id, payload)

    # -- size / membership ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self._slot_of

    @property
    def entity_ids(self) -> tuple[int, ...]:
        """Snapshot of all entity ids currently in the table."""
        return tuple(self._entities)

    # -- mutation -----------------------------------------------------------

    def insert(self, entity_id: int, values: Mapping[str, Any]) -> dict[str, Any]:
        """Insert a validated row for ``entity_id``; returns the stored row."""
        if entity_id in self._slot_of:
            raise DuplicateComponentError(
                f"entity {entity_id} already has component {self.schema.name}"
            )
        row = self.schema.validate(values)
        slot = len(self._entities)
        self._entities.append(entity_id)
        self._slot_of[entity_id] = slot
        for fname in self.schema.field_names:
            self._columns[fname].append(row[fname])
        self.stats_epoch += 1
        self._notify("insert", entity_id, row)
        return row

    def update(self, entity_id: int, values: Mapping[str, Any]) -> dict[str, Any]:
        """Apply a partial update; returns mapping field -> (old, new).

        No-op fields (new value equals old) are dropped from the delta and
        do not wake observers, which keeps index maintenance proportional
        to *real* change — important when scripts write unchanged values
        every frame.
        """
        slot = self._require_slot(entity_id)
        updates = self.schema.validate_update(values)
        delta: dict[str, tuple[Any, Any]] = {}
        for fname, new in updates.items():
            old = self._columns[fname][slot]
            if old != new:
                delta[fname] = (old, new)
                self._columns[fname][slot] = new
        if delta:
            self._notify("update", entity_id, delta)
        return delta

    def update_column(
        self, field: str, entity_ids: Iterable[int], values: Iterable[Any]
    ) -> int:
        """Set-at-a-time update of one column; returns changed-row count.

        This is the columnar fast path used by
        :class:`~repro.core.systems.BatchSystem`: values are validated and
        written directly into the column array.  Observers still receive
        per-entity deltas (indexes must stay exact), but when no observer
        is registered the loop collapses to raw column writes — the
        "join-processing on GPUs" execution style the tutorial describes.
        """
        fdef = self.schema.field(field)
        col = self._columns[field]
        changed = 0
        if self._observers:
            for entity_id, value in zip(entity_ids, values):
                slot = self._require_slot(entity_id)
                new = fdef.validate(value)
                old = col[slot]
                if old != new:
                    col[slot] = new
                    changed += 1
                    self._notify("update", entity_id, {field: (old, new)})
        else:
            for entity_id, value in zip(entity_ids, values):
                slot = self._require_slot(entity_id)
                new = fdef.validate(value)
                if col[slot] != new:
                    col[slot] = new
                    changed += 1
            self.version += changed
        return changed

    def delete(self, entity_id: int) -> dict[str, Any]:
        """Remove the row for ``entity_id``; returns the removed values."""
        slot = self._require_slot(entity_id)
        row = {
            fname: self._columns[fname][slot]
            for fname in self.schema.field_names
        }
        last = len(self._entities) - 1
        moved_entity = self._entities[last]
        for fname in self.schema.field_names:
            col = self._columns[fname]
            col[slot] = col[last]
            col.pop()
        self._entities[slot] = moved_entity
        self._entities.pop()
        self._slot_of[moved_entity] = slot
        del self._slot_of[entity_id]
        if entity_id == moved_entity and self._entities and slot < len(self._entities):
            # entity was the last row; nothing actually moved
            pass
        self.stats_epoch += 1
        self._notify("delete", entity_id, row)
        return row

    # -- reads --------------------------------------------------------------

    def get(self, entity_id: int) -> dict[str, Any]:
        """Return a copy of the row for ``entity_id``."""
        slot = self._require_slot(entity_id)
        return {
            fname: self._columns[fname][slot]
            for fname in self.schema.field_names
        }

    def get_field(self, entity_id: int, field: str) -> Any:
        """Return one field value for ``entity_id`` (O(1))."""
        slot = self._require_slot(entity_id)
        try:
            return self._columns[field][slot]
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None

    def gather(self, field: str, entity_ids: Iterable[int]) -> list[Any]:
        """Batch read of one field for many entities (columnar fast path)."""
        try:
            col = self._columns[field]
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None
        slot_of = self._slot_of
        try:
            return [col[slot_of[eid]] for eid in entity_ids]
        except KeyError as exc:
            raise ComponentMissingError(
                f"entity {exc.args[0]} has no component {self.schema.name}"
            ) from None

    def column(self, field: str) -> tuple[Any, ...]:
        """Snapshot of an entire column (row order parallel to entity_ids)."""
        try:
            return tuple(self._columns[field])
        except KeyError:
            raise SchemaError(
                f"component {self.schema.name!r} has no field {field!r}"
            ) from None

    def columns(self, fields: Iterable[str]) -> dict[str, tuple[Any, ...]]:
        """Snapshot of several columns at once (a batch read for systems)."""
        return {f: self.column(f) for f in fields}

    def batch_rows(
        self, fields: Iterable[str], entity_ids: Iterable[int] | None = None
    ) -> tuple[list[int], dict[str, list[Any]]]:
        """Gather parallel column slices for set-at-a-time execution.

        Returns ``(ids, columns)`` where ``columns[f][i]`` is field ``f``
        of entity ``ids[i]``.  With ``entity_ids=None`` the whole table is
        materialized in row order (one list copy per column, no per-row
        work); otherwise values are gathered for exactly the ids given, in
        the given order.  This is the read half of the batch execution
        path: ``Plan.execute_batch`` filters these slices with compiled
        vector functions instead of building a dict per row.
        """
        field_list = list(fields)
        for f in field_list:
            if f not in self._columns:
                raise SchemaError(
                    f"component {self.schema.name!r} has no field {f!r}"
                )
        if entity_ids is None:
            ids = list(self._entities)
            return ids, {f: list(self._columns[f]) for f in field_list}
        ids = list(entity_ids)
        slot_of = self._slot_of
        try:
            slots = [slot_of[eid] for eid in ids]
        except KeyError as exc:
            raise ComponentMissingError(
                f"entity {exc.args[0]} has no component {self.schema.name}"
            ) from None
        out: dict[str, list[Any]] = {}
        for f in field_list:
            col = self._columns[f]
            out[f] = [col[s] for s in slots]
        return ids, out

    def rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Iterate ``(entity_id, row_copy)`` over a snapshot of the table.

        The snapshot is taken up front, so callers may mutate the table
        while iterating — the exact hazard naive per-frame scripts hit.
        """
        ids = tuple(self._entities)
        snap = {f: tuple(col) for f, col in self._columns.items()}
        for slot, entity_id in enumerate(ids):
            yield entity_id, {f: snap[f][slot] for f in snap}

    def scan(
        self, predicate: Callable[[dict[str, Any]], bool] | None = None
    ) -> list[int]:
        """Full scan returning entity ids whose rows satisfy ``predicate``.

        This is the O(n) fallback the planner uses when no index applies.
        """
        if predicate is None:
            return list(self._entities)
        out = []
        for entity_id, row in self.rows():
            if predicate(row):
                out.append(entity_id)
        return out

    # -- internals ----------------------------------------------------------

    def _require_slot(self, entity_id: int) -> int:
        try:
            return self._slot_of[entity_id]
        except KeyError:
            raise ComponentMissingError(
                f"entity {entity_id} has no component {self.schema.name}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentTable({self.schema.name}, rows={len(self)})"
