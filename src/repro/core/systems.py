"""System scheduler: the per-frame execution engine.

A *system* is a unit of per-frame work (physics, AI, combat, replication).
The tutorial contrasts two execution styles:

* **tuple-at-a-time** (:class:`PerEntitySystem`) — the naive scripting
  style: a callback runs once per matching entity per frame;
* **set-at-a-time** (:class:`BatchSystem`) — the database/GPU style the
  tutorial recommends ("techniques … on GPUs look very similar to the
  techniques that database engines use for join processing"): the callback
  receives whole columns and writes back a column of updates.

Experiment E3 measures the gap between the two on the same workload.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TYPE_CHECKING

from repro.errors import QueryError
from repro.obs.tracer import NOOP_SPAN

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.world import GameWorld


class System:
    """Base class: subclasses implement :meth:`run`.

    Attributes
    ----------
    name:
        Unique scheduler key; also the label in frame-budget reports.
    interval:
        Run every ``interval`` ticks (1 = every frame).  Games throttle
        expensive AI systems to every Nth frame; the scheduler supports
        that natively so scripts don't hand-roll modulo counters.
    enabled:
        Disabled systems stay registered but are skipped.
    """

    def __init__(self, name: str, interval: int = 1):
        if interval < 1:
            raise QueryError("system interval must be >= 1")
        self.name = name
        self.interval = interval
        self.enabled = True
        self.runs = 0

    def run(self, world: "GameWorld", dt: float) -> None:
        """Execute one frame of work.  Subclasses must override."""
        raise NotImplementedError

    def should_run(self, tick: int) -> bool:
        """Whether the scheduler should run this system at ``tick``."""
        return self.enabled and tick % self.interval == 0


class FunctionSystem(System):
    """Wraps a plain ``fn(world, dt)`` callable as a system."""

    def __init__(self, name: str, fn: Callable[["GameWorld", float], None], interval: int = 1):
        super().__init__(name, interval=interval)
        self.fn = fn

    def run(self, world: "GameWorld", dt: float) -> None:
        self.runs += 1
        self.fn(world, dt)


class PerEntitySystem(System):
    """Tuple-at-a-time system: ``fn(world, entity_id, dt)`` per entity.

    ``components`` is the conjunctive component signature; the entity set
    is computed fresh each frame via the query layer (so it benefits from
    whatever indexes exist, but the *body* still runs per entity).
    """

    def __init__(
        self,
        name: str,
        components: Sequence[str],
        fn: Callable[["GameWorld", int, float], None],
        interval: int = 1,
    ):
        super().__init__(name, interval=interval)
        if not components:
            raise QueryError("PerEntitySystem requires at least one component")
        self.components = tuple(components)
        self.fn = fn
        self._prepared = None
        self._prepared_world: "GameWorld | None" = None

    def _signature_query(self, world: "GameWorld"):
        if self._prepared is None or self._prepared_world is not world:
            query = world.query(self.components[0])
            for comp in self.components[1:]:
                query = query.join(comp)
            self._prepared = query.prepare()
            self._prepared_world = world
        return self._prepared

    def run(self, world: "GameWorld", dt: float) -> None:
        self.runs += 1
        for entity_id in self._signature_query(world).ids():
            self.fn(world, entity_id, dt)


class BatchSystem(System):
    """Set-at-a-time system operating on whole columns.

    ``fn(world, entity_ids, columns, dt)`` receives a tuple of entity ids
    and a mapping ``{"Component.field": tuple_of_values}`` and returns a
    mapping ``{"Component.field": sequence_of_new_values}`` (or None for a
    read-only system).  Writes are applied through the table layer in one
    pass so observers still see per-entity deltas.
    """

    def __init__(
        self,
        name: str,
        reads: Sequence[str],
        fn: Callable[..., dict[str, Sequence[Any]] | None],
        interval: int = 1,
    ):
        super().__init__(name, interval=interval)
        self.reads = tuple(reads)
        if not self.reads:
            raise QueryError("BatchSystem requires at least one read column")
        self.fn = fn
        self._parse_cache: list[tuple[str, str]] = []
        for ref in self.reads:
            comp, _, field = ref.partition(".")
            if not field:
                raise QueryError(
                    f"BatchSystem read {ref!r} must be 'Component.field'"
                )
            self._parse_cache.append((comp, field))
        self._prepared = None
        self._prepared_world: "GameWorld | None" = None

    def _signature_query(self, world: "GameWorld"):
        if self._prepared is None or self._prepared_world is not world:
            components = {comp for comp, _f in self._parse_cache}
            root, *rest = sorted(components)
            query = world.query(root)
            for comp in rest:
                query = query.join(comp)
            self._prepared = query.prepare()
            self._prepared_world = world
        return self._prepared

    def run(self, world: "GameWorld", dt: float) -> None:
        self.runs += 1
        ids = tuple(self._signature_query(world).ids())
        columns: dict[str, tuple[Any, ...]] = {}
        for comp, field in self._parse_cache:
            columns[f"{comp}.{field}"] = tuple(
                world.table(comp).gather(field, ids)
            )
        writes = self.fn(world, ids, columns, dt)
        if not writes:
            return
        for ref, values in writes.items():
            comp, _, field = ref.partition(".")
            if len(values) != len(ids):
                raise QueryError(
                    f"BatchSystem {self.name!r}: write column {ref!r} has "
                    f"{len(values)} values for {len(ids)} entities"
                )
            world.set_column(comp, field, ids, values)


class SystemScheduler:
    """Runs registered systems in priority order each tick."""

    def __init__(self) -> None:
        self._systems: list[tuple[int, int, System]] = []  # (priority, seq, sys)
        self._seq = 0

    def add(self, system: System, priority: int = 100) -> System:
        """Register a system; lower priority runs earlier."""
        if any(s.name == system.name for _p, _q, s in self._systems):
            raise QueryError(f"system {system.name!r} already registered")
        self._systems.append((priority, self._seq, system))
        self._seq += 1
        self._systems.sort(key=lambda t: (t[0], t[1]))
        return system

    def remove(self, name: str) -> None:
        """Unregister the system called ``name``."""
        before = len(self._systems)
        self._systems = [t for t in self._systems if t[2].name != name]
        if len(self._systems) == before:
            raise QueryError(f"no system named {name!r}")

    def get(self, name: str) -> System:
        for _p, _q, s in self._systems:
            if s.name == name:
                return s
        raise QueryError(f"no system named {name!r}")

    def systems(self) -> list[System]:
        """All systems in execution order."""
        return [s for _p, _q, s in self._systems]

    def run_tick(self, world: "GameWorld", tick: int, dt: float, budget: Any = None) -> None:
        """Run all due systems for ``tick``; measure if a budget is given.

        When the world's tracer is enabled each system gets its own span
        (child of the world's ``tick`` span); when disabled the only cost
        is one attribute check per tick.
        """
        obs = getattr(world, "obs", None)
        tracer = obs.tracer if obs is not None else None
        traced = tracer is not None and tracer.enabled
        for _p, _q, system in self._systems:
            if not system.should_run(tick):
                continue
            with (
                tracer.span(system.name, cat="system") if traced else NOOP_SPAN
            ):
                if budget is not None:
                    with budget.measure(system.name):
                        system.run(world, dt)
                else:
                    system.run(world, dt)
