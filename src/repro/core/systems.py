"""System scheduler: the per-frame execution engine.

A *system* is a unit of per-frame work (physics, AI, combat, replication).
The tutorial contrasts two execution styles:

* **tuple-at-a-time** (:class:`PerEntitySystem`) — the naive scripting
  style: a callback runs once per matching entity per frame;
* **set-at-a-time** (:class:`BatchSystem`) — the database/GPU style the
  tutorial recommends ("techniques … on GPUs look very similar to the
  techniques that database engines use for join processing"): the callback
  receives whole columns and writes back a column of updates.

Experiment E3 measures the gap between the two on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TYPE_CHECKING

from repro.errors import QueryError
from repro.obs.tracer import NOOP_SPAN

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.world import GameWorld
    from repro.parallel.effects import EffectBuffer


def _component_names(refs: Sequence[str]) -> frozenset[str]:
    """Component names from a mix of ``"Comp"`` and ``"Comp.field"`` refs."""
    return frozenset(ref.partition(".")[0] for ref in refs)


@dataclass(frozen=True)
class SystemSpec:
    """Declared read/write component sets — the scheduler's contract.

    The parallel scheduler reasons at component granularity: two systems
    may share a tick phase only when neither writes a component the other
    touches.  A system without a spec (``spec is None``) is treated as
    conflicting with everything and runs in its own serial phase.
    """

    reads: frozenset[str] = field(default_factory=frozenset)
    writes: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def of(
        cls, reads: Sequence[str] = (), writes: Sequence[str] = ()
    ) -> "SystemSpec":
        """Build a spec from component or ``"Comp.field"`` references.

        Written components are implicitly read (an update observes the
        old value), which keeps the conflict rule symmetric and safe.
        """
        write_comps = _component_names(writes)
        return cls(
            reads=_component_names(reads) | write_comps, writes=write_comps
        )

    def conflicts_with(self, other: "SystemSpec | None") -> bool:
        """Whether the two systems may not share a tick phase."""
        if other is None:
            return True
        return bool(
            self.writes & (other.reads | other.writes)
            or other.writes & (self.reads | self.writes)
        )

    def write_write_conflict(self, other: "SystemSpec | None") -> bool:
        """Whether both systems write some common component."""
        if other is None:
            return bool(self.writes)
        return bool(self.writes & other.writes)


def system(
    name: str | Callable[..., Any] | None = None,
    *,
    reads: Sequence[str] = (),
    writes: Sequence[str] = (),
    interval: int = 1,
    priority: int = 100,
) -> Callable[..., Any]:
    """Declare a plain ``fn(world, dt)`` callable as a schedulable system.

    The one declaration path shared by function systems, script systems,
    and cluster tick hooks: the decorator attaches a :class:`SystemSpec`
    (what the parallel scheduler consumes) plus name/interval/priority,
    and ``GameWorld.add_system`` / ``ClusterCoordinator.add_system``
    accept the decorated callable directly::

        @system(reads=["Position"], writes=["Position"])
        def drift(world, dt):
            ...

        world.add_system(drift)

    Usable bare (``@system``) when no declaration is needed — the system
    then schedules serially, conflicting with everything.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        # No declaration at all means "unknown", not "touches nothing":
        # the scheduler must serialize it rather than run it anywhere.
        fn.__system_spec__ = (
            SystemSpec.of(reads, writes) if (reads or writes) else None
        )
        fn.__system_name__ = (
            name if isinstance(name, str) else getattr(fn, "__name__", "system")
        )
        fn.__system_interval__ = interval
        fn.__system_priority__ = priority
        return fn

    if callable(name):  # bare @system usage
        return decorate(name)
    return decorate


class System:
    """Base class: subclasses implement :meth:`run`.

    Attributes
    ----------
    name:
        Unique scheduler key; also the label in frame-budget reports.
    interval:
        Run every ``interval`` ticks (1 = every frame).  Games throttle
        expensive AI systems to every Nth frame; the scheduler supports
        that natively so scripts don't hand-roll modulo counters.
    enabled:
        Disabled systems stay registered but are skipped.
    spec:
        Optional :class:`SystemSpec` declaring read/write component sets.
        ``None`` means unknown: the parallel scheduler serializes it.
    """

    def __init__(
        self, name: str, interval: int = 1, *, spec: SystemSpec | None = None
    ):
        if interval < 1:
            raise QueryError("system interval must be >= 1")
        self.name = name
        self.interval = interval
        self.enabled = True
        self.runs = 0
        self.spec = spec

    def run(self, world: "GameWorld", dt: float) -> None:
        """Execute one frame of work.  Subclasses must override."""
        raise NotImplementedError

    def should_run(self, tick: int) -> bool:
        """Whether the scheduler should run this system at ``tick``."""
        return self.enabled and tick % self.interval == 0

    @property
    def supports_effects(self) -> bool:
        """Whether :meth:`collect_effects` can run this system off-thread."""
        return False

    def collect_effects(
        self, world: "GameWorld", dt: float
    ) -> "EffectBuffer | None":
        """State-effect execution: read state, return buffered writes.

        Effect-capable systems (``supports_effects``) compute their frame
        here *without mutating the world*, returning an
        :class:`~repro.parallel.effects.EffectBuffer` the executor merges
        in canonical order.  Returning ``None`` tells the executor to
        fall back to :meth:`run` in this system's canonical slot — the
        default for systems that must mutate state directly.
        """
        return None


class FunctionSystem(System):
    """Wraps a plain ``fn(world, dt)`` callable as a system.

    Callables decorated with :func:`system` carry their declaration
    along; :meth:`from_callable` reads it back out.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[["GameWorld", float], None],
        interval: int = 1,
        *,
        spec: SystemSpec | None = None,
    ):
        super().__init__(name, interval=interval, spec=spec)
        self.fn = fn

    @classmethod
    def from_callable(cls, fn: Callable[..., Any]) -> "FunctionSystem":
        """Build a system from an ``@system``-decorated callable."""
        return cls(
            getattr(fn, "__system_name__", getattr(fn, "__name__", "system")),
            fn,
            interval=getattr(fn, "__system_interval__", 1),
            spec=getattr(fn, "__system_spec__", None),
        )

    def run(self, world: "GameWorld", dt: float) -> None:
        self.runs += 1
        self.fn(world, dt)


class PerEntitySystem(System):
    """Tuple-at-a-time system: ``fn(world, entity_id, dt)`` per entity.

    ``components`` is the conjunctive component signature; the entity set
    is computed fresh each frame via the query layer (so it benefits from
    whatever indexes exist, but the *body* still runs per entity).
    """

    def __init__(
        self,
        name: str,
        components: Sequence[str],
        fn: Callable[["GameWorld", int, float], None],
        interval: int = 1,
        *,
        writes: Sequence[str] | None = None,
    ):
        spec = None
        if writes is not None:
            spec = SystemSpec.of(reads=tuple(components), writes=tuple(writes))
        super().__init__(name, interval=interval, spec=spec)
        if not components:
            raise QueryError("PerEntitySystem requires at least one component")
        self.components = tuple(components)
        self.fn = fn
        self._prepared = None
        self._prepared_world: "GameWorld | None" = None

    def _signature_query(self, world: "GameWorld"):
        if self._prepared is None or self._prepared_world is not world:
            query = world.query(self.components[0])
            for comp in self.components[1:]:
                query = query.join(comp)
            self._prepared = query.prepare()
            self._prepared_world = world
        return self._prepared

    def run(self, world: "GameWorld", dt: float) -> None:
        self.runs += 1
        for entity_id in self._signature_query(world).execute(mode="tuple").ids:
            self.fn(world, entity_id, dt)


class BatchSystem(System):
    """Set-at-a-time system operating on whole columns.

    ``fn(world, entity_ids, columns, dt)`` receives a tuple of entity ids
    and a mapping ``{"Component.field": sequence_of_values}`` (zero-copy
    memoryviews over the typed column buffers when available, else
    materialized lists) and returns a mapping ``{"Component.field":
    sequence_of_new_values}`` (or None for a read-only system).  Writes
    are applied through the table layer in one pass so observers still
    see per-entity deltas.

    ``elementwise=True`` declares that row ``i`` of every returned column
    depends only on row ``i`` of the inputs (no cross-row aggregates).
    The parallel executor may then split the entity range into per-worker
    chunks and run the kernel once per chunk — the results concatenate to
    exactly what one whole-range call would produce.
    """

    def __init__(
        self,
        name: str,
        reads: Sequence[str],
        fn: Callable[..., dict[str, Sequence[Any]] | None],
        interval: int = 1,
        *,
        writes: Sequence[str] | None = None,
        elementwise: bool = False,
    ):
        spec = None
        if writes is not None:
            spec = SystemSpec.of(reads=tuple(reads), writes=tuple(writes))
        super().__init__(name, interval=interval, spec=spec)
        self.reads = tuple(reads)
        if not self.reads:
            raise QueryError("BatchSystem requires at least one read column")
        self.fn = fn
        self.writes = tuple(writes) if writes is not None else None
        self.elementwise = bool(elementwise)
        self._parse_cache: list[tuple[str, str]] = []
        for ref in self.reads:
            comp, _, fld = ref.partition(".")
            if not fld:
                raise QueryError(
                    f"BatchSystem read {ref!r} must be 'Component.field'"
                )
            self._parse_cache.append((comp, fld))
        self._prepared = None
        self._prepared_world: "GameWorld | None" = None

    def _signature_query(self, world: "GameWorld"):
        if self._prepared is None or self._prepared_world is not world:
            components = {comp for comp, _f in self._parse_cache}
            root, *rest = sorted(components)
            query = world.query(root)
            for comp in rest:
                query = query.join(comp)
            self._prepared = query.prepare()
            self._prepared_world = world
        return self._prepared

    def gather_columns(
        self, world: "GameWorld"
    ) -> tuple[tuple[int, ...], dict[str, Sequence[Any]]]:
        """Resolve the entity set and read columns (zero-copy when possible).

        Columns come from ``batch_rows(copy=False)``: when the signature
        ids match a table's own row order (the all-entities steady state)
        the values are memoryview slices straight over the typed buffers,
        with no per-row gather at all.
        """
        ids = tuple(self._signature_query(world).execute().ids)
        by_comp: dict[str, list[str]] = {}
        for comp, fld in self._parse_cache:
            by_comp.setdefault(comp, []).append(fld)
        columns: dict[str, Sequence[Any]] = {}
        for comp, flds in by_comp.items():
            _ids, cols = world.table(comp).batch_rows(flds, ids, copy=False)
            for fld in flds:
                columns[f"{comp}.{fld}"] = cols[fld]
        return ids, columns

    def _check_writes(
        self, writes: dict[str, Sequence[Any]], count: int
    ) -> dict[str, Sequence[Any]]:
        for ref, values in writes.items():
            if self.writes is not None and ref not in self.writes:
                raise QueryError(
                    f"BatchSystem {self.name!r}: wrote undeclared column "
                    f"{ref!r} (declared writes: {self.writes})"
                )
            if len(values) != count:
                raise QueryError(
                    f"BatchSystem {self.name!r}: write column {ref!r} has "
                    f"{len(values)} values for {count} entities"
                )
        return writes

    def compute_chunk(
        self,
        world: "GameWorld",
        ids: Sequence[int],
        columns: dict[str, Sequence[Any]],
        dt: float,
    ) -> dict[str, Sequence[Any]]:
        """Run the kernel on one pre-sliced chunk (elementwise systems).

        The executor slices ``gather_columns`` output into per-worker
        ranges (O(1) on memoryviews) and calls this per chunk; each
        chunk's writes are validated against the chunk length.
        """
        writes = self.fn(world, ids, columns, dt) or {}
        return self._check_writes(writes, len(ids))

    def _compute(
        self, world: "GameWorld", dt: float
    ) -> tuple[tuple[int, ...], dict[str, Sequence[Any]]]:
        ids, columns = self.gather_columns(world)
        writes = self.fn(world, ids, columns, dt) or {}
        return ids, self._check_writes(writes, len(ids))

    def run(self, world: "GameWorld", dt: float) -> None:
        self.runs += 1
        ids, writes = self._compute(world, dt)
        for ref, values in writes.items():
            comp, _, fld = ref.partition(".")
            world.set_column(comp, fld, ids, values)

    @property
    def supports_effects(self) -> bool:
        return self.spec is not None

    def collect_effects(self, world: "GameWorld", dt: float):
        if self.spec is None:
            return None
        from repro.parallel.effects import EffectBuffer

        self.runs += 1
        ids, writes = self._compute(world, dt)
        buffer = EffectBuffer()
        for ref, values in writes.items():
            comp, _, fld = ref.partition(".")
            buffer.write_column(comp, fld, ids, values)
        return buffer


class SystemScheduler:
    """Runs registered systems in priority order each tick."""

    def __init__(self) -> None:
        self._systems: list[tuple[int, int, System]] = []  # (priority, seq, sys)
        self._seq = 0

    def add(self, system: System, priority: int = 100) -> System:
        """Register a system; lower priority runs earlier."""
        if any(s.name == system.name for _p, _q, s in self._systems):
            raise QueryError(f"system {system.name!r} already registered")
        self._systems.append((priority, self._seq, system))
        self._seq += 1
        self._systems.sort(key=lambda t: (t[0], t[1]))
        return system

    def remove(self, name: str) -> None:
        """Unregister the system called ``name``."""
        before = len(self._systems)
        self._systems = [t for t in self._systems if t[2].name != name]
        if len(self._systems) == before:
            raise QueryError(f"no system named {name!r}")

    def get(self, name: str) -> System:
        for _p, _q, s in self._systems:
            if s.name == name:
                return s
        raise QueryError(f"no system named {name!r}")

    def systems(self) -> list[System]:
        """All systems in execution order."""
        return [s for _p, _q, s in self._systems]

    def run_tick(self, world: "GameWorld", tick: int, dt: float, budget: Any = None) -> None:
        """Run all due systems for ``tick``; measure if a budget is given.

        When the world's tracer is enabled each system gets its own span
        (child of the world's ``tick`` span); when disabled the only cost
        is one attribute check per tick.
        """
        obs = getattr(world, "obs", None)
        tracer = obs.tracer if obs is not None else None
        traced = tracer is not None and tracer.enabled
        for _p, _q, system in self._systems:
            if not system.should_run(tick):
                continue
            with (
                tracer.span(system.name, cat="system") if traced else NOOP_SPAN
            ):
                if budget is not None:
                    with budget.measure(system.name):
                        system.run(world, dt)
                else:
                    system.run(world, dt)
