"""Per-client send queues: bounded, watermarked, coalescing, evicting.

A gateway serving 10⁵ clients lives or dies by what it does when one
client reads slowly.  The policy here, applied per session:

* **Bounded queue** — frames wait in a per-session queue; the queue plus
  the transport's own write buffer form the *backlog*.
* **Watermarks** — backlog above ``high_watermark`` marks the client
  *behind*; it must fall below ``low_watermark`` to be caught up again
  (hysteresis, so a client straddling the line does not flap).  Flush
  stops writing into a transport whose buffer is above
  ``drain_watermark`` — bytes the kernel has not taken stay here, where
  they can still be coalesced.
* **Delta coalescing** — while behind, per-tick deltas merge into one
  pending delta (latest value per field, enters/exits cancelling), so a
  slow client's memory cost is bounded by world size, not by how long
  it lags, and it resynchronises in one message.
* **Eviction** — a client behind for ``evict_behind_ticks`` consecutive
  ticks, or whose backlog exceeds ``max_queue_bytes``, is evicted: the
  100 ms of one stuck TCP peer must never become everyone's tick time.
  Deltas too large for one frame are split into frameable parts; only a
  single change that *still* cannot fit evicts (``evicted:oversize``) —
  never raises into the shared tick loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import GatewayError
from repro.gateway.framing import frame
from repro.gateway.messages import Delta
from repro.net.protocol import ENVELOPE_BYTES, VALUE_BYTES


@dataclass(frozen=True)
class BackpressureConfig:
    """Tuning knobs for one session's send queue (bytes and ticks)."""

    max_queue_bytes: int = 256 * 1024
    high_watermark: int = 32 * 1024
    low_watermark: int = 8 * 1024
    drain_watermark: int = 64 * 1024
    evict_behind_ticks: int = 30

    def __post_init__(self) -> None:
        if not 0 <= self.low_watermark <= self.high_watermark:
            raise GatewayError("watermarks must satisfy 0 <= low <= high")
        if self.max_queue_bytes < self.high_watermark:
            raise GatewayError("max_queue_bytes must be >= high_watermark")
        if self.evict_behind_ticks < 1:
            raise GatewayError("evict_behind_ticks must be >= 1")


class _PendingDelta:
    """Coalesced state changes awaiting a caught-up client."""

    __slots__ = ("enters", "updates", "exits", "tick", "merged")

    def __init__(self) -> None:
        self.enters: dict[int, dict] = {}
        self.updates: dict[int, dict] = {}
        self.exits: set[int] = set()
        self.tick = 0
        self.merged = 0

    def merge(self, delta: Delta) -> None:
        """Fold one per-tick delta in; latest values win."""
        for eid, fields in delta.enters:
            self.exits.discard(eid)
            self.enters[eid] = dict(fields)
            self.updates.pop(eid, None)
        for eid, fields in delta.updates:
            if eid in self.enters:
                self.enters[eid].update(fields)
            else:
                self.updates.setdefault(eid, {}).update(fields)
        for eid in delta.exits:
            if eid in self.enters:
                # Entered and left while the client was behind: it never
                # needs to hear about this entity at all.
                del self.enters[eid]
            else:
                self.updates.pop(eid, None)
                self.exits.add(eid)
        self.tick = delta.tick
        self.merged += 1 + delta.coalesced

    def to_delta(self, seq: int) -> Delta:
        """Render as one wire delta (deterministic entity order)."""
        return Delta(
            tick=self.tick,
            seq=seq,
            enters=tuple(sorted(self.enters.items())),
            updates=tuple(sorted(self.updates.items())),
            exits=tuple(sorted(self.exits)),
            coalesced=self.merged - 1,
        )

    def wire_cost(self) -> int:
        """Byte cost under the wire-size model, without materialising."""
        size = ENVELOPE_BYTES + 16 + 8 * len(self.exits)
        for fields in self.enters.values():
            size += 8 + len(fields) * (VALUE_BYTES + 4)
        for fields in self.updates.values():
            size += 8 + len(fields) * (VALUE_BYTES + 4)
        return size


class SendQueue:
    """One session's outbound frame queue plus its backpressure state."""

    __slots__ = (
        "config", "transport", "_frames", "_queued_bytes", "_pending",
        "_behind", "behind_ticks", "next_seq", "deltas_sent",
        "deltas_coalesced", "frames_sent", "bytes_sent", "evicted_reason",
        "_flushed_delta_tick",
    )

    def __init__(self, transport: Any, config: BackpressureConfig | None = None):
        self.config = config or BackpressureConfig()
        self.transport = transport
        # Each queued frame remembers the delta tick it carries (None
        # for control messages) so flush can report the newest world
        # state that actually reached the transport — the causal
        # tracker's "this delta answers that request" signal.
        self._frames: deque[tuple[bytes, int | None]] = deque()
        self._flushed_delta_tick: int | None = None
        self._queued_bytes = 0
        self._pending: _PendingDelta | None = None
        self._behind = False
        self.behind_ticks = 0
        self.next_seq = 0
        self.deltas_sent = 0
        self.deltas_coalesced = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.evicted_reason: str | None = None

    # -- state ---------------------------------------------------------------------

    def backlog_bytes(self) -> int:
        """Queued frames + coalescing buffer + transport write buffer."""
        pending = self._pending.wire_cost() if self._pending else 0
        return self._queued_bytes + pending + self.transport.buffered_bytes()

    @property
    def behind(self) -> bool:
        """Whether the client is currently marked behind (hysteretic)."""
        return self._behind

    def _refresh_behind(self) -> None:
        backlog = self.backlog_bytes()
        if self._behind:
            if backlog <= self.config.low_watermark:
                self._behind = False
        elif backlog >= self.config.high_watermark:
            self._behind = True

    # -- enqueue -------------------------------------------------------------------

    def offer(self, msg: Any) -> None:
        """Queue a control message (welcome, pong, goodbye, acks)."""
        data = frame(msg)
        self._frames.append((data, None))
        self._queued_bytes += len(data)

    def offer_delta(self, delta: Delta) -> None:
        """Queue one tick's delta, coalescing while the client is behind."""
        if delta.change_count() == 0:
            return
        self._refresh_behind()
        if self._behind or self._pending is not None:
            if self._pending is None:
                self._pending = _PendingDelta()
            self._pending.merge(delta)
            self.deltas_coalesced += 1
            return
        self._emit_delta(delta)

    def _emit_delta(self, delta: Delta) -> None:
        stamped = replace(delta, seq=self.next_seq)
        try:
            data = frame(stamped)
        except GatewayError:
            self._emit_oversize(delta)
            return
        self.next_seq += 1
        self._frames.append((data, stamped.tick))
        self._queued_bytes += len(data)
        self.deltas_sent += 1

    def _emit_oversize(self, delta: Delta) -> None:
        """Split a delta too big for one frame into frameable parts.

        A dense world seen through a large AOI radius (the initial
        enter burst) or a long-behind client's coalesced catch-up can
        legitimately exceed the frame cap; raising here would escape
        the shared tick loop and stop the gateway for *every* client.
        Halving by change count terminates: each part is strictly
        smaller, and a single change that still cannot fit marks this
        session for eviction (``note_tick`` reports it) instead.
        """
        tagged = (
            [("enter", item) for item in delta.enters]
            + [("update", item) for item in delta.updates]
            + [("exit", eid) for eid in delta.exits]
        )
        if len(tagged) <= 1:
            self.evicted_reason = "evicted:oversize"
            return
        mid = len(tagged) // 2
        # The first part carries the coalesced count so the client
        # still learns it missed intermediate states exactly once.
        for part, coalesced in (
            (tagged[:mid], delta.coalesced), (tagged[mid:], 0),
        ):
            self._emit_delta(Delta(
                tick=delta.tick,
                seq=0,
                enters=tuple(i for kind, i in part if kind == "enter"),
                updates=tuple(i for kind, i in part if kind == "update"),
                exits=tuple(i for kind, i in part if kind == "exit"),
                coalesced=coalesced,
            ))

    # -- flush + tick bookkeeping ----------------------------------------------------

    def flush(self) -> int:
        """Write queued frames into the transport; returns bytes written.

        Writing stops at the transport's ``drain_watermark`` so a stuck
        socket keeps its bytes here (still coalescible) instead of in
        an unbounded kernel buffer.  A caught-up client's pending
        coalesced delta is promoted and flushed in the same pass.
        """
        if self.transport.closed:
            return 0
        written = 0
        while self._frames:
            if self.transport.buffered_bytes() >= self.config.drain_watermark:
                break
            data, delta_tick = self._frames.popleft()
            self._queued_bytes -= len(data)
            self.transport.send(data)
            written += len(data)
            self.frames_sent += 1
            if delta_tick is not None and (
                self._flushed_delta_tick is None
                or delta_tick > self._flushed_delta_tick
            ):
                self._flushed_delta_tick = delta_tick
        self.bytes_sent += written
        if self._pending is not None and not self._frames:
            self._refresh_behind()
            if not self._behind:
                pending, self._pending = self._pending, None
                self._emit_delta(pending.to_delta(0))
                written += self.flush()
        return written

    def take_flushed_delta_tick(self) -> int | None:
        """Newest delta tick flushed since the last call (then cleared).

        ``None`` means no delta reached the transport — control frames
        and still-queued deltas do not count.  The gateway core reads
        this after each per-tick flush to complete pending requests.
        """
        tick, self._flushed_delta_tick = self._flushed_delta_tick, None
        return tick

    def note_tick(self) -> str | None:
        """Advance per-tick eviction bookkeeping; returns an evict reason.

        Call once per gateway tick after :meth:`flush`.  ``None`` means
        the session stays; otherwise the returned string is the
        ``Goodbye`` reason (``"evicted:slow"`` / ``"evicted:overflow"``
        / ``"evicted:oversize"``).
        """
        if self.evicted_reason is not None:
            return self.evicted_reason
        backlog = self.backlog_bytes()
        if backlog > self.config.max_queue_bytes:
            self.evicted_reason = "evicted:overflow"
            return self.evicted_reason
        self._refresh_behind()
        if self._behind:
            self.behind_ticks += 1
            if self.behind_ticks >= self.config.evict_behind_ticks:
                self.evicted_reason = "evicted:slow"
                return self.evicted_reason
        else:
            self.behind_ticks = 0
        return None
