"""The asyncio front end: real sockets around the sans-IO core.

:class:`GatewayServer` is deliberately thin — accept loop, per-connection
reader task, a tick driver — because every decision lives in
:class:`~repro.gateway.core.GatewayCore`.  The server's only jobs are to
pump bytes between sockets and the core and to make sure a client
vanishing mid-anything surfaces as a clean ``disconnect``, never an
unhandled exception (the acceptance bar the soak benchmark holds it to).
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.errors import GatewayError
from repro.gateway.core import GatewayCore
from repro.gateway.transport import AsyncioTransport

#: Socket read chunk size for connection reader loops.
READ_CHUNK = 64 * 1024


class GatewayServer:
    """Serve a :class:`GatewayCore` over TCP with ``asyncio.start_server``."""

    def __init__(self, core: GatewayCore, host: str = "127.0.0.1", port: int = 0):
        self.core = core
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._readers: set[asyncio.Task] = set()
        self._tick_task: asyncio.Task | None = None
        self.connections_served = 0

    async def start(self) -> None:
        """Bind and start accepting (port 0 picks a free port)."""
        if self._server is not None:
            raise GatewayError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Reader loop for one accepted connection."""
        self.connections_served += 1
        transport = AsyncioTransport(writer)
        cid = self.core.connect(transport)
        task = asyncio.current_task()
        if task is not None:
            self._readers.add(task)
        try:
            while True:
                data = await reader.read(READ_CHUNK)
                if not data:
                    break
                self.core.on_bytes(cid, data)
                if transport.closed:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished: a disconnect, not an error
        except asyncio.CancelledError:
            pass  # server stopping: exit quietly, cleanup runs below
        finally:
            if task is not None:
                self._readers.discard(task)
            self.core.disconnect(cid)
            with contextlib.suppress(ConnectionError, RuntimeError):
                writer.close()

    async def run_ticks(self, tick_interval: float, world_step: Any = None) -> None:
        """Drive the gateway tick loop until cancelled.

        ``world_step`` (a zero-argument callable) advances the
        authoritative simulation before each gateway tick — the
        single-process arrangement the benchmark uses.
        """
        try:
            while True:
                if world_step is not None:
                    world_step()
                self.core.tick()
                await asyncio.sleep(tick_interval)
        except asyncio.CancelledError:
            raise

    def start_ticking(self, tick_interval: float, world_step: Any = None) -> None:
        """Spawn :meth:`run_ticks` as a background task."""
        if self._tick_task is not None:
            raise GatewayError("tick loop already running")
        self._tick_task = asyncio.get_running_loop().create_task(
            self.run_ticks(tick_interval, world_step)
        )

    async def stop(self) -> None:
        """Stop ticking, close every connection, shut the core down."""
        if self._tick_task is not None:
            self._tick_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tick_task
            self._tick_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Shut the core down while writers are still open: the goodbye
        # frames land in the socket buffers and the closes flush them,
        # so connected clients learn *why* before EOF.  Reader loops
        # then exit on their own; cancel any stragglers.
        self.core.shutdown()
        await asyncio.sleep(0)
        for task in list(self._readers):
            task.cancel()
        for task in list(self._readers):
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._readers.clear()
