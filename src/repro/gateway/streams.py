"""Interest-managed delta streams: the gateway's subscription engine.

Each connected client's subscription is an *interest query* — "entities
within my AOI radius" — evaluated set-at-a-time by the same
:class:`~repro.consistency.interest.InterestManager` the E12 experiment
characterised, with :class:`~repro.net.deadreckon.DeadReckoningSender`
suppression deciding, per client and per entity, whether a position
change is worth a wire update.  The output per client per tick is one
:class:`~repro.gateway.messages.Delta`.

Two source adapters feed the stream: :class:`WorldView` over a single
:class:`~repro.core.world.GameWorld` and :class:`ClusterView` over a
sharded :class:`~repro.cluster.coordinator.ClusterCoordinator`.  Both
capture dirtiness through change hooks, so the gateway never diffs
whole snapshots.

**Exactly-once membership.**  Enter/exit events are guarded by a
per-client *known set*: an enter is emitted only for an entity the
client does not already see, an exit only for one it does.  Cluster
handoffs re-install an entity on its destination shard (firing attach
and update hooks) on the same tick the entity may cross an AOI
boundary; the known-set guard is what collapses that coincidence to
exactly one enter or leave on the wire — the invariant
``tests/consistency/test_interest_churn.py`` pins down.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.consistency.interest import InterestManager
from repro.errors import GatewayError
from repro.gateway.messages import Delta
from repro.net.deadreckon import DeadReckoningSender


class Snapshot:
    """One tick's view of the authoritative state, as the stream needs it."""

    __slots__ = ("tick", "positions", "velocities", "dirty")

    def __init__(
        self,
        tick: int,
        positions: dict[int, tuple[float, float]],
        velocities: dict[int, tuple[float, float]],
        dirty: dict[int, dict[str, Any]],
    ):
        self.tick = tick
        self.positions = positions
        self.velocities = velocities
        self.dirty = dirty


class WorldView:
    """Source adapter over a single :class:`GameWorld`.

    ``replicated`` names the components whose fields go to clients;
    dirtiness is captured via the world's change hooks from the moment
    the view is constructed.
    """

    def __init__(
        self,
        world: Any,
        replicated: tuple[str, ...] = ("Position",),
        velocity_component: str = "Velocity",
        velocity_fields: tuple[str, str] = ("vx", "vy"),
    ):
        self.world = world
        self.replicated = tuple(replicated)
        self.velocity_component = velocity_component
        self.velocity_fields = velocity_fields
        self.dt = world.clock.dt
        self._dirty: dict[int, dict[str, Any]] = {}
        self._hook = self._on_change
        world.add_change_hook(self._hook)

    def _on_change(
        self, op: str, entity_id: int, component: str | None, payload: Any
    ) -> None:
        if op in ("update", "attach") and component in self.replicated:
            self._dirty.setdefault(entity_id, {}).update(payload or {})
        elif op == "destroy":
            self._dirty.pop(entity_id, None)

    def tick_count(self) -> int:
        """The source's current tick."""
        return self.world.clock.tick

    def collect(self) -> Snapshot:
        """Drain dirtiness and snapshot positions/velocities for one tick."""
        table = self.world.table("Position")
        ids = table.entity_ids
        xs = table.gather("x", ids)
        ys = table.gather("y", ids)
        positions = {eid: (x, y) for eid, x, y in zip(ids, xs, ys)}
        velocities: dict[int, tuple[float, float]] = {}
        if self.velocity_component in self.world.component_names():
            vtable = self.world.table(self.velocity_component)
            vids = vtable.entity_ids
            fx, fy = self.velocity_fields
            vxs = vtable.gather(fx, vids)
            vys = vtable.gather(fy, vids)
            velocities = {
                eid: (vx, vy) for eid, vx, vy in zip(vids, vxs, vys)
            }
        dirty, self._dirty = self._dirty, {}
        return Snapshot(self.tick_count(), positions, velocities, dirty)

    def fields_of(self, entity_id: int) -> dict[str, Any]:
        """Full replicated state of one entity (enter payloads)."""
        fields: dict[str, Any] = {}
        for comp in self.replicated:
            if self.world.has(entity_id, comp):
                fields.update(self.world.get(entity_id, comp))
        return fields

    def close(self) -> None:
        """Detach the change hook."""
        self.world.remove_change_hook(self._hook)


class ClusterView:
    """Source adapter over a sharded :class:`ClusterCoordinator`.

    Change hooks attach to every shard's world slice; positions come
    from the coordinator's global snapshot, so an entity mid-handoff is
    reported exactly once by whichever side owns it at the barrier.
    """

    def __init__(
        self,
        coordinator: Any,
        replicated: tuple[str, ...] = ("Position",),
        velocity_component: str = "Velocity",
        velocity_fields: tuple[str, str] = ("vx", "vy"),
    ):
        self.coordinator = coordinator
        self.replicated = tuple(replicated)
        self.velocity_component = velocity_component
        self.velocity_fields = velocity_fields
        self.dt = coordinator.shards[0].world.clock.dt
        self._dirty: dict[int, dict[str, Any]] = {}
        self._hook = self._on_change
        for host in coordinator.shards:
            host.world.add_change_hook(self._hook)

    def _on_change(
        self, op: str, entity_id: int, component: str | None, payload: Any
    ) -> None:
        if op in ("update", "attach") and component in self.replicated:
            self._dirty.setdefault(entity_id, {}).update(payload or {})
        # "destroy" fires on the source shard of every handoff, but the
        # entity lives on; ownership is the directory's business, so a
        # destroy never clears dirtiness here.

    def tick_count(self) -> int:
        """The cluster's global tick."""
        return self.coordinator.tick_count

    def collect(self) -> Snapshot:
        """Drain dirtiness and snapshot the whole cluster's positions."""
        positions = self.coordinator.positions()
        velocities: dict[int, tuple[float, float]] = {}
        for host in self.coordinator.shards:
            world = host.world
            if self.velocity_component not in world.component_names():
                continue
            vtable = world.table(self.velocity_component)
            vids = vtable.entity_ids
            fx, fy = self.velocity_fields
            vxs = vtable.gather(fx, vids)
            vys = vtable.gather(fy, vids)
            for eid, vx, vy in zip(vids, vxs, vys):
                if host.owns(eid):
                    velocities[eid] = (vx, vy)
        dirty, self._dirty = self._dirty, {}
        # Handoff re-installs mark entities dirty on the destination
        # shard; restrict to entities that still exist somewhere.
        dirty = {eid: f for eid, f in dirty.items() if eid in positions}
        return Snapshot(self.tick_count(), positions, velocities, dirty)

    def fields_of(self, entity_id: int) -> dict[str, Any]:
        """Full replicated state, read from the owning shard."""
        shard = self.coordinator.shard(self.coordinator.owner_of(entity_id))
        fields: dict[str, Any] = {}
        for comp in self.replicated:
            if shard.world.has(entity_id, comp):
                fields.update(shard.world.get(entity_id, comp))
        return fields

    def close(self) -> None:
        """Detach every shard hook."""
        for host in self.coordinator.shards:
            host.world.remove_change_hook(self._hook)


class ClientStreamState:
    """Per-session stream memory: what the client sees, and its DR models."""

    __slots__ = ("known", "dr", "enters", "exits", "updates_suppressed")

    def __init__(self) -> None:
        self.known: set[int] = set()
        self.dr: dict[int, DeadReckoningSender] = {}
        self.enters = 0
        self.exits = 0
        self.updates_suppressed = 0


class InterestStream:
    """Evaluates every client's interest query for one tick, set-at-a-time.

    Clients requesting the same radius share one
    :class:`InterestManager` (and therefore one spatial-grid pass), so
    the per-tick cost is O(radius-groups × entities) grid builds plus
    the aggregate AOI density — not O(clients × entities).
    """

    def __init__(
        self,
        source: Any,
        default_radius: float,
        hysteresis: float = 0.15,
        dr_threshold: float = 0.5,
    ):
        if default_radius <= 0:
            raise GatewayError("default AOI radius must be positive")
        self.source = source
        self.default_radius = default_radius
        self.hysteresis = hysteresis
        self.dr_threshold = dr_threshold
        self._managers: dict[float, InterestManager] = {}
        self._events_by_observer: dict[int, list] = {}
        self.snapshot: Snapshot | None = None

    def manager_for(self, radius: float) -> InterestManager:
        """The shared interest manager for one radius group."""
        mgr = self._managers.get(radius)
        if mgr is None:
            mgr = InterestManager(radius, hysteresis=self.hysteresis)
            self._managers[radius] = mgr
        return mgr

    def begin_tick(self, observers_by_radius: dict[float, list[int]]) -> None:
        """Run every radius group's interest query over a fresh snapshot."""
        self.snapshot = self.source.collect()
        self._events_by_observer = {}
        for radius, observers in sorted(observers_by_radius.items()):
            if not observers:
                continue
            events = self.manager_for(radius).update(
                observers, self.snapshot.positions
            )
            for event in events:
                self._events_by_observer.setdefault(event.observer, []).append(
                    event
                )

    def delta_for(
        self, state: ClientStreamState, avatar: int, extra_known: Iterable[int] = ()
    ) -> Delta:
        """Build one client's delta from the current tick's snapshot.

        ``extra_known`` entities (normally just the client's own avatar)
        are streamed as if always in the AOI, without enter/exit events.
        """
        snap = self.snapshot
        if snap is None:
            raise GatewayError("delta_for called before begin_tick")
        enters: list[tuple[int, dict]] = []
        exits: list[int] = []
        known = state.known
        for event in self._events_by_observer.get(avatar, ()):
            subject = event.subject
            if event.kind == "enter":
                if subject in known:
                    continue
                known.add(subject)
                state.enters += 1
                enters.append((subject, self.source.fields_of(subject)))
            else:
                if subject not in known:
                    continue
                known.discard(subject)
                state.dr.pop(subject, None)
                state.exits += 1
                exits.append(subject)
        entered_now = {eid for eid, _f in enters}
        updates: list[tuple[int, dict]] = []
        dirty = snap.dirty
        for eid in sorted(known | set(extra_known)):
            if eid in entered_now:
                continue
            fields = dirty.get(eid)
            if not fields:
                continue
            out = self._filter_update(state, eid, fields, snap, force=eid == avatar)
            if out:
                updates.append((eid, out))
        return Delta(
            tick=snap.tick,
            seq=0,  # stamped by the send queue
            enters=tuple(enters),
            updates=tuple(updates),
            exits=tuple(exits),
        )

    def _filter_update(
        self,
        state: ClientStreamState,
        eid: int,
        fields: dict[str, Any],
        snap: Snapshot,
        force: bool,
    ) -> dict[str, Any]:
        """Apply dead-reckoning suppression to one entity's dirty fields."""
        positional = "x" in fields or "y" in fields
        if not positional or eid not in snap.positions:
            return dict(fields)
        x, y = snap.positions[eid]
        vx, vy = snap.velocities.get(eid, (0.0, 0.0))
        sender = state.dr.get(eid)
        if sender is None:
            sender = DeadReckoningSender(self.dr_threshold, dt=self.source.dt)
            state.dr[eid] = sender
        sample = sender.update(snap.tick, x, y, vx, vy)
        out = {k: v for k, v in fields.items() if k not in ("x", "y")}
        if sample is not None or force:
            out["x"] = x
            out["y"] = y
            out["vx"] = vx
            out["vy"] = vy
        elif not out:
            state.updates_suppressed += 1
        return out

    def drop_client(self, state: ClientStreamState, avatar: int, radius: float) -> None:
        """Forget a departing client's AOI (frees the manager's set)."""
        mgr = self._managers.get(radius)
        if mgr is not None:
            mgr.drop_observer(avatar)
        state.known.clear()
        state.dr.clear()
