"""Length-prefixed framing over the shared wire codec.

A frame is a 4-byte big-endian length followed by one encoded message
(:func:`repro.net.protocol.encode`).  :class:`FrameDecoder` is the
incremental inverse: feed it arbitrary byte chunks — as delivered by a
socket — and it yields complete decoded messages, holding partial
frames across calls.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import GatewayError
from repro.net.protocol import decode, encode

#: Byte length of the frame header (big-endian u32 payload length).
HEADER_BYTES = 4
#: Upper bound on a single frame's payload, a corruption tripwire.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


def frame(msg: Any) -> bytes:
    """Encode one message as a length-prefixed frame."""
    payload = encode(msg)
    if len(payload) > MAX_FRAME_BYTES:
        raise GatewayError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser for one connection.

    ``feed`` never raises on a *partial* frame — only on corrupt input
    (oversized length prefix), which callers treat as a protocol
    violation and close the connection.
    """

    __slots__ = ("_buffer", "frames_decoded", "bytes_fed")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> list[Any]:
        """Absorb a chunk; return every message completed by it."""
        self.bytes_fed += len(data)
        self._buffer.extend(data)
        out: list[Any] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise GatewayError(
                    f"frame header claims {length} bytes "
                    f"(max {MAX_FRAME_BYTES}); stream corrupt"
                )
            end = HEADER_BYTES + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[HEADER_BYTES:end])
            del self._buffer[:end]
            out.append(decode(payload))
            self.frames_decoded += 1
        return out

    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)
