"""repro.gateway: the network edge in front of the simulation.

This package turns the reproduction's in-process replication machinery
into a servable edge: an asyncio front end speaking a length-prefixed
binary protocol, session lifecycle with resume tokens, per-client
interest-managed delta streams (reusing ``consistency.interest`` and
``net.deadreckon``), and explicit backpressure — bounded send queues,
delta coalescing for slow clients, and eviction so one stuck socket
never stalls the tick.

The core (:class:`GatewayCore`) is sans-IO and fully deterministic
under :class:`MemoryTransport`; :class:`GatewayServer` runs the same
logic over real sockets.  Experiment E19 drives it with the
``workloads.swarm`` load generator.
"""

from repro.gateway.backpressure import BackpressureConfig, SendQueue
from repro.gateway.core import GatewayConfig, GatewayCore
from repro.gateway.framing import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    frame,
)
from repro.gateway.messages import (
    Delta,
    EventMsg,
    Goodbye,
    Hello,
    Ping,
    Pong,
    Reject,
    TelemetryMsg,
    TelemetrySub,
    Welcome,
)
from repro.gateway.server import GatewayServer
from repro.gateway.session import Session, SessionManager, default_auth
from repro.gateway.streams import (
    ClientStreamState,
    ClusterView,
    InterestStream,
    Snapshot,
    WorldView,
)
from repro.gateway.transport import AsyncioTransport, MemoryTransport

__all__ = [
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "AsyncioTransport",
    "BackpressureConfig",
    "ClientStreamState",
    "ClusterView",
    "Delta",
    "EventMsg",
    "FrameDecoder",
    "GatewayConfig",
    "GatewayCore",
    "GatewayServer",
    "Goodbye",
    "Hello",
    "InterestStream",
    "MemoryTransport",
    "Ping",
    "Pong",
    "Reject",
    "SendQueue",
    "Session",
    "SessionManager",
    "Snapshot",
    "TelemetryMsg",
    "TelemetrySub",
    "WorldView",
    "Welcome",
    "default_auth",
    "frame",
]
