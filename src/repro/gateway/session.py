"""Session lifecycle: hello, auth stub, resume, eviction bookkeeping.

A *session* outlives its connection: the gateway hands every accepted
client a resume token, and a client that reconnects with it reattaches
to its session — keeping its avatar binding and interest subscription —
instead of re-entering the world cold.  This is the standard MMO edge
trick for surviving flaky links without re-running login or replaying a
full state snapshot.

Authentication is deliberately a stub (a pluggable predicate over the
``Hello`` token): the interesting engineering is everything *after*
auth, and a real credential check slots in without touching the rest.
"""

from __future__ import annotations

import secrets
from typing import Any, Callable

from repro.errors import GatewayError
from repro.gateway.backpressure import BackpressureConfig, SendQueue
from repro.gateway.messages import Hello, Reject, Welcome
from repro.gateway.streams import ClientStreamState
from repro.net.protocol import WIRE_VERSION

#: States a session moves through, in order.
HANDSHAKE, ACTIVE, DETACHED, CLOSED = "handshake", "active", "detached", "closed"


def default_auth(client: str, token: str) -> bool:
    """The auth stub: any token except the literal ``"invalid"`` passes."""
    return token != "invalid"


class Session:
    """One client's server-side state, across reconnects."""

    __slots__ = (
        "sid", "client", "resume_token", "avatar", "aoi_radius", "state",
        "transport", "queue", "stream", "connected_tick", "detached_tick",
        "resumes", "close_reason", "seen_events", "last_ctx",
        "telemetry_interval",
    )

    def __init__(
        self,
        sid: str,
        client: str,
        resume_token: str,
        avatar: int,
        aoi_radius: float,
        transport: Any,
        backpressure: BackpressureConfig,
        tick: int,
    ):
        self.sid = sid
        self.client = client
        self.resume_token = resume_token
        self.avatar = avatar
        self.aoi_radius = aoi_radius
        self.state = ACTIVE
        self.transport = transport
        self.queue = SendQueue(transport, backpressure)
        self.stream = ClientStreamState()
        self.connected_tick = tick
        self.detached_tick: int | None = None
        self.resumes = 0
        self.close_reason: str | None = None
        # Dedup keys of durable-tier events already delivered on this
        # session (insertion-ordered so the cap evicts oldest-first).
        # Survives resume — a reattached client must not re-see events
        # the outbox redelivers after a failover.
        self.seen_events: dict[str, None] = {}
        # Causal context of the most recent input this session sent —
        # the host's on_input hook reads it to thread the request's
        # trace into cluster/durable work it kicks off.
        self.last_ctx: Any = None
        # Ops-channel subscription (0 = not subscribed).  Survives
        # resume, like the rest of the session.
        self.telemetry_interval = 0

    def attach(self, transport: Any, backpressure: BackpressureConfig) -> None:
        """Reattach a resumed session to a fresh connection.

        The send queue restarts empty (the old connection's unsent
        frames died with it) but the stream state — known set, DR
        models, sequence counter — carries over, so the client receives
        a continuation, not a second copy of the world.
        """
        next_seq = self.queue.next_seq
        self.transport = transport
        self.queue = SendQueue(transport, backpressure)
        self.queue.next_seq = next_seq
        self.state = ACTIVE
        self.detached_tick = None
        self.resumes += 1
        self.close_reason = None


def random_resume_token(sid: str, client: str) -> str:
    """The default resume-token factory: 96 bits from the CSPRNG.

    The resume path in :meth:`SessionManager.hello` bypasses auth — the
    token *is* the credential — so it must be unguessable.  Anything
    derived deterministically from public inputs (serial sids, client
    names, a config seed) would let an attacker compute another
    client's token offline and steal its session.  Tests that need
    reproducible tokens inject their own ``token_factory`` instead.
    """
    return secrets.token_hex(12)


class SessionManager:
    """Owns every session and runs the handshake state machine."""

    def __init__(
        self,
        backpressure: BackpressureConfig | None = None,
        auth: Callable[[str, str], bool] | None = None,
        default_radius: float = 16.0,
        max_radius: float = 128.0,
        seed: int = 0,
        on_close: Callable[[Session, str], None] | None = None,
        token_factory: Callable[[str, str], str] | None = None,
        detach_ttl_ticks: int | None = None,
    ):
        self.backpressure = backpressure or BackpressureConfig()
        self.auth = auth or default_auth
        self.on_close = on_close
        self.default_radius = default_radius
        self.max_radius = max_radius
        # ``seed`` steers non-secret determinism knobs only; resume
        # tokens come from ``token_factory`` (CSPRNG by default).
        self._seed = seed
        self.token_factory = token_factory or random_resume_token
        self.detach_ttl_ticks = detach_ttl_ticks
        self._serial = 0
        self.sessions: dict[str, Session] = {}
        self._by_resume: dict[str, Session] = {}
        self._by_client: dict[str, Session] = {}
        self.accepted = 0
        self.resumed = 0
        self.rejected = 0

    # -- handshake -----------------------------------------------------------------

    def hello(
        self,
        msg: Hello,
        transport: Any,
        avatar_of: Callable[[str], int | None],
        tick: int,
    ) -> tuple[Session | None, Welcome | Reject]:
        """Run the handshake for one ``Hello``; returns (session, reply).

        ``avatar_of`` maps a client name to its avatar entity (the
        gateway's binding hook); returning ``None`` rejects the hello.
        A valid ``resume`` token reattaches the existing session.
        """
        if msg.version != WIRE_VERSION:
            self.rejected += 1
            return None, Reject(f"version {msg.version} unsupported")
        if msg.resume:
            session = self._by_resume.get(msg.resume)
            if session is None or session.state == CLOSED:
                self.rejected += 1
                return None, Reject("unknown or expired resume token")
            session.attach(transport, self.backpressure)
            self.resumed += 1
            return session, Welcome(
                session.sid, session.resume_token, tick,
                session.aoi_radius, resumed=True,
            )
        if not self.auth(msg.client, msg.token):
            self.rejected += 1
            return None, Reject("authentication failed")
        if msg.client in self._by_client:
            existing = self._by_client[msg.client]
            if existing.state == ACTIVE:
                self.rejected += 1
                return None, Reject(f"client {msg.client!r} already connected")
            # A fresh hello supersedes a detached session the client
            # chose not to resume; keeping it would leak under churn.
            self.close(existing, "superseded")
        avatar = avatar_of(msg.client)
        if avatar is None:
            self.rejected += 1
            return None, Reject(f"no avatar for client {msg.client!r}")
        radius = msg.aoi_radius or self.default_radius
        radius = min(max(radius, 1e-6), self.max_radius)
        self._serial += 1
        sid = f"s{self._serial:08d}"
        resume_token = self.token_factory(sid, msg.client)
        session = Session(
            sid, msg.client, resume_token, avatar, radius, transport,
            self.backpressure, tick,
        )
        self.sessions[sid] = session
        self._by_resume[resume_token] = session
        self._by_client[msg.client] = session
        self.accepted += 1
        return session, Welcome(sid, resume_token, tick, radius)

    # -- lifecycle -----------------------------------------------------------------

    def detach(self, session: Session, tick: int = 0) -> None:
        """Connection dropped without a goodbye: keep the session resumable.

        ``tick`` stamps when the session went quiet, so a configured
        ``detach_ttl_ticks`` can expire it via :meth:`reap_detached`.
        """
        if session.state == ACTIVE:
            session.state = DETACHED
            session.detached_tick = tick

    def reap_detached(self, tick: int) -> list[Session]:
        """Close sessions detached longer than ``detach_ttl_ticks``.

        Without a TTL a client that disconnects and never resumes would
        pin its session — stream state, interest subscription, queue —
        forever; under churn with unique client names that is unbounded
        growth.  Returns the sessions closed (reason ``"expired"``).
        """
        if self.detach_ttl_ticks is None:
            return []
        expired = [
            s for s in list(self.sessions.values())
            if s.state == DETACHED
            and s.detached_tick is not None
            and tick - s.detached_tick >= self.detach_ttl_ticks
        ]
        for session in expired:
            self.close(session, "expired")
        return expired

    def close(self, session: Session, reason: str) -> None:
        """Terminally close a session (client bye, eviction, shutdown).

        The ``on_close`` callback fires exactly once per session, after
        it has left every index — the gateway core uses it to release
        the session's interest subscription and connection.
        """
        if session.state == CLOSED:
            return
        session.state = CLOSED
        session.close_reason = reason
        self._by_resume.pop(session.resume_token, None)
        if self._by_client.get(session.client) is session:
            del self._by_client[session.client]
        del self.sessions[session.sid]
        if self.on_close is not None:
            self.on_close(session, reason)

    def get(self, sid: str) -> Session:
        """Look up a live session by id."""
        try:
            return self.sessions[sid]
        except KeyError:
            raise GatewayError(f"unknown session {sid!r}") from None

    def active(self) -> list[Session]:
        """Sessions currently attached to a connection, in sid order."""
        return [
            s for _sid, s in sorted(self.sessions.items())
            if s.state == ACTIVE
        ]

    def __len__(self) -> int:
        return len(self.sessions)
