"""Gateway session-plane messages.

These ride the same codec as the replication protocol
(:func:`repro.net.protocol.encode` / ``decode``), registered in the
type-id block starting at 32.  Everything a client and the gateway say
to each other is one of these frozen dataclasses, so the socket path,
the in-memory test transport, and the simulator all speak bytes that
round-trip exactly.

Session lifecycle::

    client                     gateway
      | -- Hello ------------->  |   (version check, auth stub, resume)
      | <------------ Welcome -- |   (or Reject + close)
      | <-------------- Delta -- |   (one per tick: enters/updates/exits)
      | -- InputCommand ------>  |   (forwarded to the world source)
      | -- Ping -------------->  |
      | <--------------- Pong -- |   (client-visible latency probe)
      | <------------ Goodbye -- |   (server-initiated close, e.g. eviction)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.protocol import (
    ENVELOPE_BYTES,
    VALUE_BYTES,
    WIRE_VERSION,
    register_message,
)


@dataclass(frozen=True)
class Hello:
    """Client -> gateway: open (or resume) a session.

    ``token`` is the auth-stub credential; ``resume`` carries a prior
    session's resume token to reattach after a disconnect.  A non-zero
    ``aoi_radius`` asks for a specific interest radius (clamped to the
    gateway's configured maximum).
    """

    client: str
    version: int = WIRE_VERSION
    token: str = ""
    resume: str = ""
    aoi_radius: float = 0.0

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + len(self.client) + len(self.token) + 16


@dataclass(frozen=True)
class Welcome:
    """Gateway -> client: the session is live.

    ``resume_token`` lets the client reattach after a drop;
    ``aoi_radius`` is the radius actually granted.
    """

    session: str
    resume_token: str
    tick: int
    aoi_radius: float
    resumed: bool = False

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + len(self.session) + len(self.resume_token) + 16


@dataclass(frozen=True)
class Reject:
    """Gateway -> client: handshake refused (bad version, auth, …)."""

    reason: str

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + len(self.reason)


@dataclass(frozen=True)
class Goodbye:
    """Gateway -> client: server-initiated close with a reason.

    ``reason`` is machine-readable: ``"evicted:slow"`` for backpressure
    eviction, ``"shutdown"`` for orderly teardown.
    """

    reason: str

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + len(self.reason)


@dataclass(frozen=True)
class Ping:
    """Client -> gateway: latency probe; echoed back as :class:`Pong`."""

    nonce: int
    client_time: float = 0.0

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class Pong:
    """Gateway -> client: echo of a :class:`Ping` plus the server tick."""

    nonce: int
    client_time: float
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


@dataclass(frozen=True)
class Delta:
    """Gateway -> client: one tick's interest-scoped state changes.

    ``enters`` and ``updates`` are ``((entity, {field: value}), …)``
    tuples; ``exits`` is a tuple of entity ids.  ``seq`` increments per
    delta actually sent on the session, and ``coalesced`` counts how
    many per-tick deltas were merged into this one while the client was
    behind — a client can detect it missed intermediate states without
    any gap in ``seq``.
    """

    tick: int
    seq: int
    enters: tuple = ()
    updates: tuple = ()
    exits: tuple = ()
    coalesced: int = 0

    def wire_size(self) -> int:
        size = ENVELOPE_BYTES + 16 + 8 * len(self.exits)
        for _eid, fields in self.enters:
            size += 8 + len(fields) * (VALUE_BYTES + 4)
        for _eid, fields in self.updates:
            size += 8 + len(fields) * (VALUE_BYTES + 4)
        return size

    def change_count(self) -> int:
        """Total entity-level changes carried (enters + updates + exits)."""
        return len(self.enters) + len(self.updates) + len(self.exits)


@dataclass(frozen=True)
class EventMsg:
    """Gateway -> client: one durable outbox event.

    Unlike a :class:`Delta` (a snapshot diff the stream recomputes each
    tick), an event is a *fact* drained from the durable tier's outbox:
    it happened exactly once, survives failover, and may legitimately be
    redelivered after a promotion.  ``dedup`` (``entity:event:key``) is
    the identity clients — and the gateway's own per-session seen-set —
    use to collapse redelivery into exactly-once observation.
    """

    tick: int
    seq: int
    entity: int
    event: str
    key: str
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def dedup(self) -> str:
        """The idempotency identity this event carries."""
        return f"{self.entity}:{self.event}:{self.key}"

    def wire_size(self) -> int:
        return (
            ENVELOPE_BYTES + 24 + len(self.event) + len(self.key)
            + len(self.payload) * (VALUE_BYTES + 4)
        )


@dataclass(frozen=True)
class TelemetrySub:
    """Client -> gateway: subscribe this session to the ops channel.

    ``token`` is the telemetry credential (separate from session auth —
    ops access is a different privilege than playing); a denied token
    closes the session with ``Goodbye("telemetry:denied")``.
    ``interval`` is how many gateway ticks between :class:`TelemetryMsg`
    pushes (clamped to >= 1).
    """

    token: str = ""
    interval: int = 10

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + len(self.token) + 8


@dataclass(frozen=True)
class TelemetryMsg:
    """Gateway -> client: one ops-channel sample.

    ``payload`` carries ``Observability.collect_stats()`` plus the SLO
    plane's state, sanitised to JSON-safe values.  Streamed every
    ``interval`` ticks to each subscribed session — the live feed
    ``examples/ops_console.py`` renders.
    """

    tick: int
    seq: int
    payload: dict[str, Any] = field(default_factory=dict)

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16 + len(self.payload) * (VALUE_BYTES + 4)


register_message(32, Hello)
register_message(33, Welcome)
register_message(34, Reject)
register_message(35, Goodbye)
register_message(36, Ping)
register_message(37, Pong)
register_message(38, Delta)
register_message(39, EventMsg)
register_message(40, TelemetrySub)
register_message(41, TelemetryMsg)
