"""The sans-IO gateway core: sessions, deltas, backpressure, metrics.

:class:`GatewayCore` contains every piece of gateway behaviour —
handshake dispatch, per-tick interest evaluation, queue flushing,
eviction — with **no sockets and no event loop**.  Bytes come in
through :meth:`GatewayCore.on_bytes`, frames go out through whatever
transport each connection was registered with, and time advances only
when the host calls :meth:`GatewayCore.tick`.  That makes the whole
edge deterministic under test (memory transports + a fake clock) while
:class:`~repro.gateway.server.GatewayServer` runs the identical logic
over real ``asyncio`` sockets.

The per-tick pipeline, instrumented as ``gateway.tick > gateway.flush``
tracer spans::

    collect snapshot ── interest per radius group ── delta per session
        ── offer to send queue (coalesce if behind) ── flush ── evict
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import GatewayError, NetError
from repro.gateway.backpressure import BackpressureConfig
from repro.gateway.framing import FrameDecoder, frame
from repro.gateway.messages import (
    Delta,
    EventMsg,
    Goodbye,
    Hello,
    Ping,
    Pong,
    TelemetryMsg,
    TelemetrySub,
)
from repro.gateway.session import ACTIVE, Session, SessionManager
from repro.gateway.streams import InterestStream
from repro.net.protocol import InputCommand
from repro.obs.causal import RequestTracker
from repro.obs.hub import Observability, resolve_obs
from repro.obs.slo import SLOPlane

#: Dedup keys each session remembers before the oldest fall off; a
#: bound on memory, not on correctness — outbox redelivery bursts are
#: recent by construction (a failover replays, then the set re-fills).
EVENT_DEDUP_CAP = 4096

#: The telemetry auth stub's accepted token.  Ops access is a separate
#: privilege from playing, so it gets its own (pluggable) check.
DEFAULT_TELEMETRY_TOKEN = "ops"


def _sanitize(value: Any) -> Any:
    """Coerce a stats tree to JSON-safe values for the wire codec.

    Telemetry payloads aggregate arbitrary subsystem stats; anything
    the codec cannot serialise becomes its ``repr`` instead of taking
    the ops channel down.
    """
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway-wide tuning: interest, suppression, and backpressure."""

    default_radius: float = 16.0
    max_radius: float = 128.0
    hysteresis: float = 0.15
    dr_threshold: float = 0.5
    stream_self: bool = True
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    seed: int = 0
    #: Ticks a detached (disconnected, unresumed) session survives
    #: before it is reaped; ``None`` keeps sessions resumable forever.
    detach_ttl_ticks: int | None = 600

    def __post_init__(self) -> None:
        if self.default_radius <= 0 or self.max_radius < self.default_radius:
            raise GatewayError(
                "radii must satisfy 0 < default_radius <= max_radius"
            )
        if self.detach_ttl_ticks is not None and self.detach_ttl_ticks < 1:
            raise GatewayError("detach_ttl_ticks must be >= 1 or None")


class _Connection:
    """One accepted transport and the session bound to it (if any).

    The frame decoder lives on the *connection*, not the session: a
    resumed session gets a new connection and therefore a fresh decoder,
    and a partial frame can never straddle the handshake.
    """

    __slots__ = ("cid", "transport", "session", "decoder")

    def __init__(self, cid: int, transport: Any):
        self.cid = cid
        self.transport = transport
        self.session: Session | None = None
        self.decoder = FrameDecoder()


class GatewayCore:
    """The gateway's entire behaviour, free of I/O.

    Parameters
    ----------
    source:
        A :class:`~repro.gateway.streams.WorldView` or ``ClusterView``
        (anything with ``collect``/``fields_of``/``tick_count``/``dt``).
    avatar_of:
        Maps a client name to its avatar entity id; defaults to the
        bindings registered via :meth:`bind_avatar`.
    on_input:
        Called with ``(session, InputCommand)`` for each client input;
        a returned message (e.g. an ack) is queued back to the client.
    clock:
        Wall-clock source for tick timing (injectable for determinism).
    """

    def __init__(
        self,
        source: Any,
        config: GatewayConfig | None = None,
        obs: Observability | None = None,
        avatar_of: Callable[[str], int | None] | None = None,
        on_input: Callable[[Session, InputCommand], Any] | None = None,
        clock: Callable[[], float] | None = None,
        slo: SLOPlane | None = None,
        track_requests: bool | None = None,
        telemetry_auth: Callable[[str], bool] | None = None,
    ):
        self.source = source
        self.config = config or GatewayConfig()
        self.obs = resolve_obs(obs).lane("gw")
        self.clock = clock or time.perf_counter
        self.on_input = on_input
        self._avatars: dict[str, int] = {}
        self.avatar_of = avatar_of or self._avatars.get
        self.sessions = SessionManager(
            backpressure=self.config.backpressure,
            default_radius=self.config.default_radius,
            max_radius=self.config.max_radius,
            seed=self.config.seed,
            on_close=self._on_session_closed,
            detach_ttl_ticks=self.config.detach_ttl_ticks,
        )
        self.stream = InterestStream(
            source,
            self.config.default_radius,
            hysteresis=self.config.hysteresis,
            dr_threshold=self.config.dr_threshold,
        )
        self._conns: dict[int, _Connection] = {}
        self._cid_by_sid: dict[str, int] = {}
        self._next_cid = 0
        self.ticks = 0
        self.bytes_sent = 0
        # Totals folded in from closed sessions, so stats() survives churn.
        self._closed_totals = {
            "deltas_sent": 0,
            "deltas_coalesced": 0,
            "updates_suppressed": 0,
        }
        self.inputs = 0
        self.pings = 0
        self.events_published = 0
        self.events_deduped = 0
        self.events_dropped = 0
        self._event_seq = 0
        self.disconnects = 0
        self.protocol_errors = 0
        self.expired = 0
        self.evictions: dict[str, int] = {}
        self._stats_name = self.obs.register_stats("gateway", self.stats)
        # Causal request tracking: on when tracing is live or an SLO
        # plane is attached (both need per-request accounting); forced
        # either way with ``track_requests``.
        self.slo = slo
        if track_requests is None:
            track_requests = slo is not None or self.obs.tracer.enabled
        self.requests: RequestTracker | None = (
            RequestTracker(self.obs.tracer, slo=slo) if track_requests else None
        )
        self.telemetry_auth = telemetry_auth or (
            lambda token: token == DEFAULT_TELEMETRY_TOKEN
        )
        self._telemetry_seq = 0
        self._extra_stats: list[str] = []
        if self.requests is not None:
            self._extra_stats.append(
                self.obs.register_stats("gateway.requests", self.requests.stats)
            )
        if slo is not None:
            self._extra_stats.append(
                self.obs.register_stats("gateway.slo", slo.state)
            )

    # -- connection plane ------------------------------------------------------------

    def connect(self, transport: Any) -> int:
        """Register a new connection; returns its connection id."""
        self._next_cid += 1
        conn = _Connection(self._next_cid, transport)
        self._conns[conn.cid] = conn
        return conn.cid

    def on_bytes(self, cid: int, data: bytes) -> None:
        """Feed raw received bytes from a connection into the gateway.

        Corrupt framing (a protocol violation, not a partial read) closes
        the connection; a session it carried stays resumable.
        """
        conn = self._conns.get(cid)
        if conn is None:
            return
        try:
            messages = conn.decoder.feed(data)
        except (GatewayError, NetError):
            self.protocol_errors += 1
            self.disconnect(cid)
            return
        for msg in messages:
            self.on_message(cid, msg)
            if cid not in self._conns:
                break  # the message closed the connection

    def on_message(self, cid: int, msg: Any) -> None:
        """Dispatch one decoded client message."""
        conn = self._conns.get(cid)
        if conn is None:
            return
        if isinstance(msg, Hello):
            self._on_hello(conn, msg)
        elif conn.session is None or conn.session.state != ACTIVE:
            # Anything before a successful hello is a protocol violation.
            self.protocol_errors += 1
            self.disconnect(cid)
        elif isinstance(msg, Ping):
            self.pings += 1
            conn.session.queue.offer(
                Pong(msg.nonce, msg.client_time, self.source.tick_count())
            )
            conn.session.queue.flush()
        elif isinstance(msg, InputCommand):
            self.inputs += 1
            session = conn.session
            if self.requests is not None:
                # The request enters the causal plane here: one trace id
                # per input, parked on the session so the host's
                # on_input hook can thread it into cluster/durable work.
                session.last_ctx = self.requests.ingress(
                    session.sid, self.source.tick_count()
                )
            if self.on_input is not None:
                reply = self.on_input(session, msg)
                if reply is not None:
                    session.queue.offer(reply)
        elif isinstance(msg, TelemetrySub):
            self._on_telemetry_sub(conn.session, msg)
        elif isinstance(msg, Goodbye):
            self._close_session(conn.session, "client bye")
        else:
            self.protocol_errors += 1
            self.disconnect(cid)

    def _on_hello(self, conn: _Connection, msg: Hello) -> None:
        if conn.session is not None:
            self.protocol_errors += 1
            self.disconnect(conn.cid)
            return
        session, reply = self.sessions.hello(
            msg, conn.transport, self.avatar_of, self.source.tick_count()
        )
        if session is None:
            # Rejects bypass the queue: there is no session to queue on.
            conn.transport.send(frame(reply))
            self.disconnect(conn.cid)
            return
        old_cid = self._cid_by_sid.get(session.sid)
        if old_cid is not None and old_cid in self._conns:
            self._conns[old_cid].session = None
            self.disconnect(old_cid)
        conn.session = session
        self._cid_by_sid[session.sid] = conn.cid
        session.queue.offer(reply)
        session.queue.flush()

    def bind_avatar(self, client: str, entity_id: int) -> None:
        """Register the avatar entity a client name maps to."""
        self._avatars[client] = entity_id

    # -- telemetry plane (ops channel) -------------------------------------------------

    def _on_telemetry_sub(self, session: Session, msg: TelemetrySub) -> None:
        """Handle an ops-channel subscription on an active session."""
        if not self.telemetry_auth(msg.token):
            session.queue.offer(Goodbye("telemetry:denied"))
            session.queue.flush()
            self._close_session(session, "telemetry:denied")
            return
        session.telemetry_interval = max(1, int(msg.interval))
        # First sample immediately, so the subscriber never waits a
        # full interval to learn the channel is live.
        self._push_telemetry(session)
        session.queue.flush()

    def _telemetry_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"stats": self.obs.collect_stats()}
        if self.slo is not None:
            payload["slo"] = self.slo.state()
        return _sanitize(payload)

    def _push_telemetry(self, session: Session,
                        payload: dict[str, Any] | None = None) -> None:
        self._telemetry_seq += 1
        session.queue.offer(TelemetryMsg(
            tick=self.source.tick_count(),
            seq=self._telemetry_seq,
            payload=payload if payload is not None else self._telemetry_payload(),
        ))

    # -- event plane (durable outbox feed) --------------------------------------------

    def publish_event(
        self,
        entity: int,
        event: str,
        key: str = "",
        payload: dict[str, Any] | None = None,
        broadcast: bool = False,
    ) -> int:
        """Deliver one durable-tier event; returns sessions it reached.

        This is the outbox dispatcher's sink: delivery is at-least-once
        upstream (drain retries, failover replays the whole outbox), so
        each session keeps a seen-set of dedup keys and silently drops
        repeats — at-least-once in, exactly-once observed per session.
        Targeted events go to the sessions whose avatar *is* ``entity``;
        ``broadcast`` fans out to every active session.  Events for
        entities nobody is watching count as dropped (an event is a
        fact, not a subscription — nothing queues for later).
        """
        dedup = f"{entity}:{event}:{key}"
        now = self.source.tick_count()
        active = self.sessions.active()
        targets = (
            active if broadcast
            else [s for s in active if s.avatar == entity]
        )
        if not targets:
            self.events_dropped += 1
            return 0
        delivered = 0
        for session in targets:
            if dedup in session.seen_events:
                self.events_deduped += 1
                continue
            session.seen_events[dedup] = None
            if len(session.seen_events) > EVENT_DEDUP_CAP:
                session.seen_events.pop(next(iter(session.seen_events)))
            self._event_seq += 1
            session.queue.offer(
                EventMsg(
                    tick=now,
                    seq=self._event_seq,
                    entity=entity,
                    event=event,
                    key=key,
                    payload=dict(payload or {}),
                )
            )
            delivered += 1
            self.events_published += 1
            if self.requests is not None:
                # The event observably answers the request whose unit of
                # work emitted it: stamp the outbox segment and complete
                # it (note_event pops the bind, so an outbox redelivery
                # of the same dedup key cannot complete it twice).
                self.requests.mark_dedup(dedup, "outbox", now)
                self.requests.note_event(dedup, now)
        return delivered

    def disconnect(self, cid: int) -> None:
        """A connection went away (EOF, error, or server-side close).

        The session, if any, is detached — it stays resumable until it
        is closed explicitly (client bye, eviction, shutdown).
        """
        conn = self._conns.pop(cid, None)
        if conn is None:
            return
        self.disconnects += 1
        conn.transport.close()
        if conn.session is not None:
            self._cid_by_sid.pop(conn.session.sid, None)
            self.sessions.detach(conn.session, self.source.tick_count())

    def _on_session_closed(self, session: Session, reason: str) -> None:
        """SessionManager close hook: release stream state + connection.

        Runs for *every* terminal close, including a detached session
        superseded by a fresh hello inside the manager's handshake.
        """
        self._closed_totals["deltas_sent"] += session.queue.deltas_sent
        self._closed_totals["deltas_coalesced"] += session.queue.deltas_coalesced
        self._closed_totals["updates_suppressed"] += session.stream.updates_suppressed
        if self.requests is not None:
            self.requests.drop_session(session.sid, self.source.tick_count())
        self.stream.drop_client(session.stream, session.avatar, session.aoi_radius)
        cid = self._cid_by_sid.pop(session.sid, None)
        if cid is not None:
            conn = self._conns.pop(cid, None)
            if conn is not None:
                self.disconnects += 1
                conn.transport.close()

    def _close_session(self, session: Session, reason: str) -> None:
        self.sessions.close(session, reason)

    def evict(self, session: Session, reason: str) -> None:
        """Forcibly close a slow session: goodbye, flush, drop."""
        self.evictions[reason] = self.evictions.get(reason, 0) + 1
        session.queue.offer(Goodbye(reason))
        session.queue.flush()
        self._close_session(session, reason)

    def shutdown(self) -> None:
        """Orderly teardown: goodbye every session, close every connection."""
        for session in self.sessions.active():
            session.queue.offer(Goodbye("shutdown"))
            session.queue.flush()
        for session in list(self.sessions.sessions.values()):
            self._close_session(session, "shutdown")
        for cid in list(self._conns):
            self.disconnect(cid)
        self.obs.unregister_stats(self._stats_name)
        for name in self._extra_stats:
            self.obs.unregister_stats(name)
        self.source.close()

    # -- tick plane ------------------------------------------------------------------

    def tick(self) -> dict[str, Any]:
        """Run one gateway tick: interest, deltas, flush, eviction.

        Call after the world/cluster has ticked.  Returns a small
        per-tick summary (also folded into metrics).
        """
        t0 = self.clock()
        tracer = self.obs.tracer
        evicted: list[tuple[Session, str]] = []
        flushed = 0
        now = self.source.tick_count()
        with tracer.span("gateway.tick", cat="gateway") as span:
            if self.requests is not None:
                self.requests.on_tick(now)
            expired = self.sessions.reap_detached(now)
            self.expired += len(expired)
            active = self.sessions.active()
            by_radius: dict[float, list[int]] = {}
            for s in active:
                by_radius.setdefault(s.aoi_radius, []).append(s.avatar)
            self.stream.begin_tick(by_radius)
            # One misbehaving session must never take the shared tick
            # loop down: any per-session GatewayError becomes that
            # session's eviction (note_tick reports evicted_reason).
            for s in active:
                extra = (s.avatar,) if self.config.stream_self else ()
                try:
                    s.queue.offer_delta(
                        self.stream.delta_for(
                            s.stream, s.avatar, extra_known=extra
                        )
                    )
                except GatewayError:
                    s.queue.evicted_reason = "evicted:error"
            with tracer.span("gateway.flush", cat="gateway"):
                for s in active:
                    try:
                        flushed += s.queue.flush()
                    except GatewayError:
                        s.queue.evicted_reason = "evicted:error"
                    if self.requests is not None:
                        delta_tick = s.queue.take_flushed_delta_tick()
                        if delta_tick is not None:
                            self.requests.deliver(s.sid, delta_tick, now)
                    reason = s.queue.note_tick()
                    if reason is not None:
                        evicted.append((s, reason))
            for s, reason in evicted:
                self.evict(s, reason)
            self._stream_telemetry(active)
            span.set(clients=len(active), bytes=flushed, evicted=len(evicted))
        self.ticks += 1
        self.bytes_sent += flushed
        elapsed_ms = (self.clock() - t0) * 1e3
        self._record_metrics(active, flushed, elapsed_ms)
        return {
            "clients": len(active),
            "bytes": flushed,
            "evicted": len(evicted),
            "ms": elapsed_ms,
        }

    def _stream_telemetry(self, active: list[Session]) -> None:
        """Push a telemetry sample to every subscriber whose interval is due.

        The payload is built once per tick (stats collection is not
        free) and only when at least one subscriber is actually due.
        """
        due = [
            s for s in active
            if s.state == ACTIVE and s.telemetry_interval > 0
            and self.ticks % s.telemetry_interval == 0
        ]
        if not due:
            return
        payload = self._telemetry_payload()
        for s in due:
            self._push_telemetry(s, payload)
            s.queue.flush()

    def _record_metrics(
        self, active: list[Session], flushed: int, elapsed_ms: float
    ) -> None:
        metrics = self.obs.metrics
        if metrics is None:
            return
        metrics.gauge("gateway.clients").set(len(active))
        metrics.gauge("gateway.sessions").set(len(self.sessions))
        metrics.counter("gateway.bytes_sent").inc(flushed)
        metrics.histogram("gateway.tick_ms").observe(elapsed_ms)
        depth = metrics.histogram("gateway.queue_depth_bytes")
        for s in active:
            if s.state == ACTIVE:
                depth.observe(s.queue.backlog_bytes())
        for reason, count in self.evictions.items():
            metrics.gauge("gateway.evictions", reason=reason).set(count)

    # -- stats -----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Aggregate gateway counters (the hub's ``collect_stats`` row)."""
        sessions = list(self.sessions.sessions.values())
        return {
            "connections": len(self._conns),
            "sessions": len(sessions),
            "active": sum(1 for s in sessions if s.state == ACTIVE),
            "accepted": self.sessions.accepted,
            "resumed": self.sessions.resumed,
            "rejected": self.sessions.rejected,
            "ticks": self.ticks,
            "bytes_sent": self.bytes_sent,
            "deltas_sent": self._closed_totals["deltas_sent"]
            + sum(s.queue.deltas_sent for s in sessions),
            "deltas_coalesced": self._closed_totals["deltas_coalesced"]
            + sum(s.queue.deltas_coalesced for s in sessions),
            "updates_suppressed": self._closed_totals["updates_suppressed"]
            + sum(s.stream.updates_suppressed for s in sessions),
            "inputs": self.inputs,
            "pings": self.pings,
            "events_published": self.events_published,
            "events_deduped": self.events_deduped,
            "events_dropped": self.events_dropped,
            "disconnects": self.disconnects,
            "protocol_errors": self.protocol_errors,
            "expired": self.expired,
            "evictions": sum(self.evictions.values()),
        }
