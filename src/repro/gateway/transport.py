"""Connection transports: the byte-out half of a gateway connection.

The gateway core is sans-IO: it hands frames to a *transport* and reads
its ``buffered_bytes()`` as the drain signal for backpressure.  Two
implementations cover every use:

* :class:`MemoryTransport` — a deterministic in-process pipe.  The
  "client" consumes bytes by calling :meth:`MemoryTransport.drain` with
  an explicit budget, so a slow client is literally a client with a
  small read budget — the unit tests and the swarm load generator drive
  tens of thousands of these without a socket in sight.
* :class:`AsyncioTransport` — wraps an :class:`asyncio.StreamWriter`;
  ``buffered_bytes()`` is the event loop's own write-buffer size, so
  kernel-level backpressure feeds the same eviction logic.
"""

from __future__ import annotations

from typing import Any

from repro.errors import GatewayError


class MemoryTransport:
    """Deterministic in-memory transport with explicit client drain."""

    __slots__ = ("_pending", "bytes_sent", "bytes_drained", "closed")

    def __init__(self) -> None:
        self._pending = bytearray()
        self.bytes_sent = 0
        self.bytes_drained = 0
        self.closed = False

    def send(self, data: bytes) -> None:
        """Queue bytes toward the client (no-op after close)."""
        if self.closed:
            return
        self._pending.extend(data)
        self.bytes_sent += len(data)

    def buffered_bytes(self) -> int:
        """Bytes written but not yet consumed by the client."""
        return len(self._pending)

    def drain(self, budget: int | None = None) -> bytes:
        """Consume up to ``budget`` bytes (everything when ``None``).

        This is the client's read loop: a well-behaved client drains
        with no budget; a slow client passes a small one and falls
        behind, which is exactly what the backpressure tests model.
        """
        if budget is None or budget >= len(self._pending):
            out = bytes(self._pending)
            self._pending.clear()
        else:
            if budget < 0:
                raise GatewayError("drain budget must be non-negative")
            out = bytes(self._pending[:budget])
            del self._pending[:budget]
        self.bytes_drained += len(out)
        return out

    def close(self) -> None:
        """Mark the transport closed; later sends are dropped."""
        self.closed = True


class AsyncioTransport:
    """Transport over an asyncio stream writer (the real socket path)."""

    __slots__ = ("writer", "bytes_sent", "closed")

    def __init__(self, writer: Any) -> None:
        self.writer = writer
        self.bytes_sent = 0
        self.closed = False

    def send(self, data: bytes) -> None:
        """Write bytes to the socket's buffer (no-op after close)."""
        if self.closed:
            return
        try:
            self.writer.write(data)
            self.bytes_sent += len(data)
        except (ConnectionError, RuntimeError):
            # Peer vanished mid-write: the reader loop will observe EOF
            # and disconnect the session; dropping the frame here keeps
            # "zero unhandled disconnect errors" true under churn.
            self.closed = True

    def buffered_bytes(self) -> int:
        """The event loop's unsent write-buffer size for this socket."""
        if self.closed:
            return 0
        transport = self.writer.transport
        return transport.get_write_buffer_size() if transport else 0

    def close(self) -> None:
        """Close the underlying writer, tolerating a dead peer."""
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
        except (ConnectionError, RuntimeError):
            pass
