"""Reporting helpers for the benchmark harness.

Every experiment prints a :class:`BenchTable` — fixed-width columns, a
title naming the experiment id, and a machine-readable row accessor the
EXPERIMENTS.md generator and the tests use.  Keeping the renderer here
means every figure/table in the harness has the same shape the paper's
would have had.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence


class BenchTable:
    """A titled table of benchmark rows."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[Any]] = []

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form, for per-run benchmark artifacts."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", header, sep]
        for row in cells:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - mirrors pandas-style API
        """Print the rendering (the harness's output path)."""
        print(self.render())
        print()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive values defensively)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def series_shape(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Log-log slope of a series — the growth exponent estimator.

    Fitting log(y) = a·log(x) + b by least squares gives ``a`` ≈ the
    polynomial degree; E1's assertion "naive is ~2, indexed is ~1" is a
    check on this value.
    """
    pts = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pts) < 2:
        return 0.0
    n = len(pts)
    mean_x = sum(p[0] for p in pts) / n
    mean_y = sum(p[1] for p in pts) / n
    cov = sum((px - mean_x) * (py - mean_y) for px, py in pts)
    var = sum((px - mean_x) ** 2 for px, py in pts)
    return cov / var if var else 0.0
