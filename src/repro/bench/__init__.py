"""Benchmark support: table/series reporting shared by the harness."""

from repro.bench.reporting import BenchTable, geometric_mean, series_shape

__all__ = ["BenchTable", "geometric_mean", "series_shape"]
