"""Synthetic player populations with skewed access patterns.

Real MMO workloads are Zipfian everywhere: a few auction-house items,
bank slots, and boss entities absorb most of the traffic.
:class:`PlayerPopulation` spawns a parameterized population into a
:class:`~repro.core.world.GameWorld`, and :func:`zipf_choice` /
:class:`HotspotSampler` produce the skewed key choices the concurrency
benchmarks need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.component import schema
from repro.errors import ReproError

#: Component schemas the population uses; registered idempotently.
PLAYER_COMPONENTS = {
    "Position": dict(x="float", y="float"),
    "Velocity": dict(vx=("float", 0.0), vy=("float", 0.0)),
    "Health": dict(hp=("int", 100), max_hp=("int", 100)),
    "Faction": dict(name=("str", "neutral")),
    "Wealth": dict(gold=("int", 100)),
    "Level": dict(value=("int", 1)),
}


def register_player_components(world: Any) -> None:
    """Register the standard components (skipping ones already present)."""
    for name, fields in PLAYER_COMPONENTS.items():
        if name not in world.component_names():
            world.catalog.define(schema(name, **fields))


@dataclass
class PopulationConfig:
    """Knobs for a synthetic population."""

    count: int = 100
    world_size: float = 1000.0
    factions: tuple[str, ...] = ("alliance", "horde", "neutral")
    level_max: int = 60
    gold_mean: int = 250
    seed: int = 0


class PlayerPopulation:
    """Spawns and tracks a synthetic player population."""

    def __init__(self, world: Any, config: PopulationConfig | None = None):
        self.world = world
        self.config = config or PopulationConfig()
        self.rng = random.Random(self.config.seed)
        register_player_components(world)
        self.entity_ids: list[int] = []

    def spawn_all(self) -> list[int]:
        """Spawn the configured population; returns entity ids."""
        cfg = self.config
        for _ in range(cfg.count):
            level = 1 + int((cfg.level_max - 1) * self.rng.random() ** 2)
            hp = 80 + 20 * level
            eid = self.world.spawn(
                Position={
                    "x": self.rng.uniform(0, cfg.world_size),
                    "y": self.rng.uniform(0, cfg.world_size),
                },
                Velocity={},
                Health={"hp": hp, "max_hp": hp},
                Faction={"name": self.rng.choice(cfg.factions)},
                Wealth={"gold": max(0, int(self.rng.gauss(cfg.gold_mean, 80)))},
                Level={"value": level},
            )
            self.entity_ids.append(eid)
        return list(self.entity_ids)


def zipf_choice(rng: random.Random, n: int, theta: float) -> int:
    """Draw an index in [0, n) with Zipf-like skew.

    ``theta`` = 0 gives uniform; larger values concentrate mass on low
    indexes.  Uses the standard inverse-power transform (cheap and
    deterministic, good enough for contention shaping).
    """
    if n < 1:
        raise ReproError("n must be >= 1")
    if theta <= 0:
        return rng.randrange(n)
    u = rng.random()
    # inverse CDF of p(i) ∝ 1/(i+1)^theta, approximated continuously
    index = int(n * (u ** (1.0 + theta)))
    return min(index, n - 1)


class HotspotSampler:
    """Samples keys with a configurable hot set.

    ``hot_fraction`` of draws hit a ``hot_keys``-sized prefix — a blunter
    but more interpretable skew model than Zipf, used where experiments
    want an exact "80% of traffic on 5 keys" shape.
    """

    def __init__(
        self,
        n_keys: int,
        hot_keys: int = 5,
        hot_fraction: float = 0.8,
        seed: int = 0,
    ):
        if not 0 <= hot_fraction <= 1:
            raise ReproError("hot_fraction must be in [0, 1]")
        if hot_keys > n_keys:
            raise ReproError("hot_keys cannot exceed n_keys")
        self.n_keys = n_keys
        self.hot_keys = hot_keys
        self.hot_fraction = hot_fraction
        self.rng = random.Random(seed)

    def sample(self) -> int:
        """Draw one key index."""
        if self.hot_keys and self.rng.random() < self.hot_fraction:
            return self.rng.randrange(self.hot_keys)
        return self.rng.randrange(self.n_keys)

    def sample_pair(self) -> tuple[int, int]:
        """Draw two distinct key indexes (for transfer transactions)."""
        a = self.sample()
        b = self.sample()
        while b == a:
            b = self.sample()
        return a, b
