"""Hotspot cluster workload: a crowd that forces migration.

The scenario every MMO shard operator dreads: a world event pulls the
population toward one point — and the point *moves* (a world boss
kiting across the map), dragging the crowd across region borders.
Static geographic sharding concentrates load on whichever shard owns
the hotspot and leaks cross-shard transactions along the crowd's seams;
this is the workload the cluster's dynamic rebalancer and bubble-aware
placement exist to survive.

Everything is deterministic by construction: per-entity motion depends
only on ``(seed, entity, tick)`` — via python's stable int/tuple
hashing — and the entity's own position, never on which shard currently
hosts the entity.  Two same-seed cluster runs therefore produce
identical trajectories even when their migration timing differs, which
is what makes the cluster's replay test meaningful.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.consistency.transactions import TxnSpec, read_for_update, write
from repro.core.component import ComponentSchema, schema
from repro.spatial.geometry import AABB
from repro.spatial.joins import grid_join


class _Debit:
    """Picklable gold-subtract write fn (lambdas can't cross worker pipes)."""

    __slots__ = ("amount",)

    def __init__(self, amount: int):
        self.amount = amount

    def __call__(self, old: Any, reads: Any) -> Any:
        return old - self.amount


class _Credit:
    """Picklable gold-add write fn."""

    __slots__ = ("amount",)

    def __init__(self, amount: int):
        self.amount = amount

    def __call__(self, old: Any, reads: Any) -> Any:
        return old + self.amount


def cluster_schemas() -> list[ComponentSchema]:
    """Component schemas the hotspot workload needs on every shard."""
    return [
        schema("Position", x="float", y="float"),
        schema("Wealth", gold=("int", 100)),
    ]


@dataclass
class HotspotConfig:
    """Knobs for the hotspot crowd.

    ``pull`` is the fraction of each step aimed at the hot center (the
    rest is jitter); ``orbit_period`` is how many ticks the hotspot
    takes to circle the map, so shorter periods drag the crowd across
    more region borders per run.
    """

    bounds: AABB
    count: int = 64
    speed: float = 3.0
    pull: float = 0.55
    orbit_period: int = 240
    orbit_radius_frac: float = 0.3
    interact_range: float = 15.0
    gold: int = 100
    seed: int = 0


def hot_center(cfg: HotspotConfig, tick: int) -> tuple[float, float]:
    """Where the hotspot sits at a tick (a slow circle around the map)."""
    cx = (cfg.bounds.min_x + cfg.bounds.max_x) / 2
    cy = (cfg.bounds.min_y + cfg.bounds.max_y) / 2
    radius = min(cfg.bounds.width, cfg.bounds.height) * cfg.orbit_radius_frac / 2
    angle = 2 * math.pi * tick / cfg.orbit_period
    return cx + radius * math.cos(angle), cy + radius * math.sin(angle)


def _unit_jitter(seed: int, entity: int, tick: int) -> tuple[float, float]:
    """Deterministic unit vector from (seed, entity, tick)."""
    h = hash((seed, entity, tick))
    angle = ((h & 0xFFFFF) / float(0x100000)) * 2 * math.pi
    return math.cos(angle), math.sin(angle)


def make_hotspot_system(cfg: HotspotConfig) -> Callable[[Any, int, float], None]:
    """Per-entity movement system pulling the crowd toward the hotspot.

    Register it on every shard world (``ClusterCoordinator.
    add_per_entity_system``); because the step depends only on the
    entity's own row and ``(seed, entity, tick)``, trajectories are
    identical no matter which shard executes them.
    """

    def step(world: Any, entity: int, dt: float) -> None:
        tick = world.clock.tick
        x = world.get_field(entity, "Position", "x")
        y = world.get_field(entity, "Position", "y")
        cx, cy = hot_center(cfg, tick)
        dx, dy = cx - x, cy - y
        dist = math.hypot(dx, dy)
        jx, jy = _unit_jitter(cfg.seed, entity, tick)
        if dist > 1e-9:
            sx = cfg.pull * dx / dist + (1 - cfg.pull) * jx
            sy = cfg.pull * dy / dist + (1 - cfg.pull) * jy
        else:
            sx, sy = jx, jy
        nx = min(max(x + cfg.speed * sx, cfg.bounds.min_x), cfg.bounds.max_x)
        ny = min(max(y + cfg.speed * sy, cfg.bounds.min_y), cfg.bounds.max_y)
        world.set(entity, "Position", x=nx, y=ny)

    return step


def spawn_hotspot_population(cluster: Any, cfg: HotspotConfig) -> list[int]:
    """Spawn the crowd uniformly over the bounds (seeded, deterministic)."""
    rng = random.Random(cfg.seed)
    entities = []
    for _ in range(cfg.count):
        entities.append(
            cluster.spawn(
                {
                    "Position": {
                        "x": rng.uniform(cfg.bounds.min_x, cfg.bounds.max_x),
                        "y": rng.uniform(cfg.bounds.min_y, cfg.bounds.max_y),
                    },
                    "Wealth": {"gold": cfg.gold},
                }
            )
        )
    return entities


def interaction_pairs(
    positions: dict[int, tuple[float, float]], interact_range: float
) -> set[tuple[int, int]]:
    """Pairs close enough to interact (the cluster's txn generators feed
    on these; also what the rebalancer scores assignments against)."""
    return grid_join(positions, interact_range)


def transfer_spec(a: int, b: int, amount: int = 1) -> TxnSpec:
    """A gold transfer between two entities as a cluster transaction.

    Keys are ``(entity, component, field)`` — the grain the cluster's
    two-phase commit locks.  When both entities live on one shard this
    runs as a local transaction; otherwise it pays the full 2PC round.
    """
    ka = (a, "Wealth", "gold")
    kb = (b, "Wealth", "gold")
    return TxnSpec(
        name=f"transfer:{a}->{b}",
        ops=[
            read_for_update(ka),
            read_for_update(kb),
            write(ka, _Debit(amount)),
            write(kb, _Credit(amount)),
        ],
    )


def sample_transfers(
    rng: random.Random,
    pairs: Iterable[tuple[int, int]],
    max_txns: int,
    amount: int = 1,
) -> list[TxnSpec]:
    """Pick up to ``max_txns`` interacting pairs and make transfers.

    Pairs are sorted before sampling so the draw depends only on the rng
    state, not set iteration order — the determinism contract again.
    """
    ordered = sorted(pairs)
    if len(ordered) > max_txns:
        ordered = rng.sample(ordered, max_txns)
    return [transfer_spec(a, b, amount) for a, b in sorted(ordered)]
