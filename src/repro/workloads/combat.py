"""Combat encounter generator: the workload for aggro and consistency
experiments.

An encounter is a deterministic event script — damage, heals, taunts,
with jitterable delivery order — so we can feed the *same* logical fight
to multiple replicas in different arrival orders and measure whether
their combat state agrees (E7's aggro-vs-position comparison).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consistency.aggro import AggroBrain, Participant, Role
from repro.errors import ReproError


@dataclass(frozen=True)
class CombatEvent:
    """One combat event in an encounter script."""

    tick: int
    kind: str  # "damage" | "heal" | "taunt"
    actor: int
    target: int | None = None  # monster id for damage/taunt
    amount: float = 0.0


@dataclass
class EncounterConfig:
    """Knobs for a generated encounter."""

    ticks: int = 300
    tanks: int = 1
    healers: int = 1
    dps: int = 3
    monsters: int = 2
    damage_rate: float = 0.6
    heal_rate: float = 0.15
    taunt_rate: float = 0.01
    seed: int = 0


def generate_encounter(
    config: EncounterConfig | None = None,
) -> tuple[list[Participant], list[int], list[CombatEvent]]:
    """Generate (participants, monster ids, event script)."""
    cfg = config or EncounterConfig()
    if cfg.tanks + cfg.healers + cfg.dps == 0:
        raise ReproError("encounter needs at least one participant")
    rng = random.Random(cfg.seed)
    participants: list[Participant] = []
    next_id = 1
    for _ in range(cfg.tanks):
        participants.append(Participant(next_id, Role.TANK))
        next_id += 1
    for _ in range(cfg.healers):
        participants.append(Participant(next_id, Role.HEALER, ranged=True))
        next_id += 1
    for _ in range(cfg.dps):
        participants.append(Participant(next_id, Role.DPS, ranged=rng.random() < 0.5))
        next_id += 1
    monsters = [1000 + i for i in range(cfg.monsters)]
    events: list[CombatEvent] = []
    tanks = [p for p in participants if p.role == Role.TANK]
    healers = [p for p in participants if p.role == Role.HEALER]
    fighters = [p for p in participants if p.role != Role.HEALER]
    for tick in range(cfg.ticks):
        if rng.random() < cfg.damage_rate and fighters:
            actor = rng.choice(fighters)
            monster = rng.choice(monsters)
            base = 12.0 if actor.role == Role.DPS else 6.0
            events.append(
                CombatEvent(tick, "damage", actor.entity_id, monster,
                            base * rng.uniform(0.8, 1.2))
            )
        if rng.random() < cfg.heal_rate and healers:
            actor = rng.choice(healers)
            events.append(
                CombatEvent(tick, "heal", actor.entity_id, None,
                            20.0 * rng.uniform(0.8, 1.2))
            )
        if rng.random() < cfg.taunt_rate and tanks:
            actor = rng.choice(tanks)
            monster = rng.choice(monsters)
            events.append(CombatEvent(tick, "taunt", actor.entity_id, monster))
    return participants, monsters, events


def run_encounter(
    participants: list[Participant],
    monsters: list[int],
    events: list[CombatEvent],
) -> AggroBrain:
    """Feed an event script into a fresh aggro brain; returns it."""
    brain = AggroBrain()
    for p in participants:
        brain.join(p)
    for m in monsters:
        brain.engage(m)
    for event in events:
        if event.kind == "damage":
            brain.on_damage(event.target, event.actor, event.amount)
        elif event.kind == "heal":
            brain.on_heal(event.actor, event.amount)
        elif event.kind == "taunt":
            brain.engage(event.target).taunt(event.actor)
        else:
            raise ReproError(f"unknown combat event kind {event.kind!r}")
    return brain


def jitter_positions(
    positions: dict[int, tuple[float, float]],
    magnitude: float,
    seed: int,
) -> dict[int, tuple[float, float]]:
    """A replica's view of positions: truth plus bounded drift.

    Models the coarse position tier: each replica sees positions within
    ``magnitude`` of the truth, but *different* replicas see different
    perturbations — exactly the disagreement aggro management tolerates
    and nearest-target selection does not.
    """
    rng = random.Random(seed)
    return {
        eid: (
            x + rng.uniform(-magnitude, magnitude),
            y + rng.uniform(-magnitude, magnitude),
        )
        for eid, (x, y) in positions.items()
    }
