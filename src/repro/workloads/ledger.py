"""A gold-ledger workload for the durable tier: transfers under contention.

The canonical database-y game workload — move gold between player
accounts — expressed as durable units of work so E20 can measure what
the paper's "scripts need transactional properties" claim costs:
commit throughput vs. WAL batch size, and optimistic CAS conflict
rates when account popularity is Zipf-skewed (everyone trades with the
market hub) versus uniform.

Conservation is the built-in correctness oracle: every transfer is
zero-sum, so ``total_gold()`` must equal ``accounts * starting_gold``
after any interleaving, any crash, any failover — or the tier lost or
double-applied a unit of work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.durable.store import DurableStore
from repro.durable.uow import SqlUnitOfWork, run_unit
from repro.errors import ConflictError
from repro.workloads.players import zipf_choice


@dataclass(frozen=True)
class LedgerConfig:
    """Shape of the ledger population and its contention."""

    accounts: int = 64
    theta: float = 0.8  # Zipf skew; 0 = uniform
    seed: int = 7
    starting_gold: int = 100
    amount: int = 1
    emit_events: bool = True


class LedgerWorkload:
    """Drives Zipf-skewed transfers through one :class:`DurableStore`."""

    def __init__(self, store: DurableStore, config: LedgerConfig | None = None):
        self.store = store
        self.config = config or LedgerConfig()
        self.rng = random.Random(self.config.seed)
        self.transfers = 0
        self.committed = 0
        self.attempts = 0
        self.conflicts = 0

    # -- population ----------------------------------------------------------------

    def setup(self, tick: int = 0) -> int:
        """Create every account row (one unit of work); returns count."""
        cfg = self.config

        def seed_accounts(uow: SqlUnitOfWork) -> None:
            for account in range(1, cfg.accounts + 1):
                uow.put(account, {"gold": cfg.starting_gold})

        run_unit(self.store, seed_accounts, tick=tick)
        return cfg.accounts

    def total_gold(self) -> int:
        """The conservation oracle: must never drift from the seed total."""
        total = 0
        for account in range(1, self.config.accounts + 1):
            state, _version = self.store.read_entity(account)
            total += 0 if state is None else state["gold"]
        return total

    # -- one transfer --------------------------------------------------------------

    def pick_pair(self) -> tuple[int, int]:
        """Draw a (src, dst) pair under the configured skew."""
        cfg = self.config
        src = 1 + zipf_choice(self.rng, cfg.accounts, cfg.theta)
        dst = 1 + zipf_choice(self.rng, cfg.accounts, cfg.theta)
        while dst == src:
            dst = 1 + zipf_choice(self.rng, cfg.accounts, cfg.theta)
        return src, dst

    def stage_transfer(
        self, uow: SqlUnitOfWork, src: int, dst: int, n: int
    ) -> None:
        """Stage one zero-sum transfer (and its outbox event) on ``uow``."""
        amount = self.config.amount
        src_state = uow.get(src) or {"gold": 0}
        dst_state = uow.get(dst) or {"gold": 0}
        uow.put(src, {"gold": src_state["gold"] - amount})
        uow.put(dst, {"gold": dst_state["gold"] + amount})
        if self.config.emit_events:
            uow.emit(
                "transfer", entity=src, key=f"t{n}",
                dst=dst, amount=amount,
            )

    # -- drivers -------------------------------------------------------------------

    def run(self, ops: int, tick: int = 0, retries: int = 8) -> dict[str, int]:
        """Sequential transfers (no interleaving — throughput shape)."""
        before = self.store.conflicts
        for _ in range(ops):
            self.transfers += 1
            n = self.transfers
            src, dst = self.pick_pair()
            run_unit(
                self.store,
                lambda uow: self.stage_transfer(uow, src, dst, n),
                tick=tick,
                retries=retries,
            )
            self.committed += 1
        self.conflicts += self.store.conflicts - before
        return self.snapshot()

    def run_interleaved(
        self, rounds: int, workers: int = 4, tick: int = 0, retries: int = 8
    ) -> dict[str, int]:
        """Optimistic workers racing: the CAS conflict-rate shape.

        Each round opens ``workers`` units that all *read first* (the
        optimistic snapshot), then commits them in order — exactly the
        interleaving CAS exists to catch.  Losers retry fresh, so every
        transfer still lands; what varies with skew is how often the
        first attempt collides.
        """
        for _ in range(rounds):
            staged: list[tuple[SqlUnitOfWork, int, int, int]] = []
            for _w in range(workers):
                self.transfers += 1
                n = self.transfers
                src, dst = self.pick_pair()
                uow = SqlUnitOfWork(self.store, tick=tick)
                self.stage_transfer(uow, src, dst, n)
                staged.append((uow, src, dst, n))
            for uow, src, dst, n in staged:
                self.attempts += 1
                try:
                    uow.commit()
                    self.committed += 1
                except ConflictError:
                    self.conflicts += 1
                    run_unit(
                        self.store,
                        lambda u: self.stage_transfer(u, src, dst, n),
                        tick=tick,
                        retries=retries,
                    )
                    self.committed += 1
        return self.snapshot()

    def snapshot(self) -> dict[str, int]:
        """Counters so far (rate math happens in the bench harness)."""
        return {
            "transfers": self.transfers,
            "committed": self.committed,
            "attempts": self.attempts,
            "conflicts": self.conflicts,
        }
