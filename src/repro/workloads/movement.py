"""Movement models for synthetic entity populations.

Three models cover the benchmark needs:

* :class:`RandomWaypoint` — the MMO-overworld standard: pick a point,
  walk to it, repeat.  Produces smoothly mixing, roughly uniform traffic.
* :class:`OrbitalModel` — the EVE-style solar system: ships orbit
  gravity wells and burn between them with bounded acceleration.  This
  is the workload causality bubbles were invented for, including fleet
  clustering around contested wells.
* :class:`FlockingModel` — boids-lite: cohesion/separation/alignment,
  generating the tight moving clusters that stress spatial indexes.

All models are seeded and deterministic, expose ``positions()`` /
``states()`` snapshots, and step with a fixed dt.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.consistency.bubbles import KinematicState
from repro.errors import ReproError
from repro.spatial.geometry import AABB


@dataclass
class _Mover:
    x: float
    y: float
    vx: float = 0.0
    vy: float = 0.0
    target_x: float = 0.0
    target_y: float = 0.0
    speed: float = 1.0
    well: int = 0


class _MovementBase:
    """Shared snapshot plumbing."""

    def __init__(self, bounds: AABB, seed: int):
        self.bounds = bounds
        self.rng = random.Random(seed)
        self._movers: dict[int, _Mover] = {}
        self.ticks = 0

    def positions(self) -> dict[int, tuple[float, float]]:
        """Snapshot of entity positions."""
        return {eid: (m.x, m.y) for eid, m in self._movers.items()}

    def states(self, a_max: float = 1.0) -> dict[int, KinematicState]:
        """Snapshot as kinematic states (for the bubble partitioner)."""
        return {
            eid: KinematicState(m.x, m.y, m.vx, m.vy, a_max)
            for eid, m in self._movers.items()
        }

    def entity_ids(self) -> list[int]:
        return list(self._movers)

    def __len__(self) -> int:
        return len(self._movers)

    def _clamp(self, m: _Mover) -> None:
        m.x = min(max(m.x, self.bounds.min_x), self.bounds.max_x)
        m.y = min(max(m.y, self.bounds.min_y), self.bounds.max_y)


class RandomWaypoint(_MovementBase):
    """Random-waypoint mobility over the bounds."""

    def __init__(
        self,
        bounds: AABB,
        count: int,
        speed_range: tuple[float, float] = (1.0, 4.0),
        seed: int = 0,
    ):
        super().__init__(bounds, seed)
        if count < 0:
            raise ReproError("count must be non-negative")
        for eid in range(count):
            m = _Mover(
                x=self.rng.uniform(bounds.min_x, bounds.max_x),
                y=self.rng.uniform(bounds.min_y, bounds.max_y),
                speed=self.rng.uniform(*speed_range),
            )
            self._pick_target(m)
            self._movers[eid] = m

    def _pick_target(self, m: _Mover) -> None:
        m.target_x = self.rng.uniform(self.bounds.min_x, self.bounds.max_x)
        m.target_y = self.rng.uniform(self.bounds.min_y, self.bounds.max_y)

    def step(self, dt: float = 1.0) -> None:
        """Advance every mover ``dt`` seconds."""
        self.ticks += 1
        for m in self._movers.values():
            dx = m.target_x - m.x
            dy = m.target_y - m.y
            dist = math.hypot(dx, dy)
            if dist < m.speed * dt:
                m.x, m.y = m.target_x, m.target_y
                m.vx = m.vy = 0.0
                self._pick_target(m)
                continue
            m.vx = m.speed * dx / dist
            m.vy = m.speed * dy / dist
            m.x += m.vx * dt
            m.y += m.vy * dt
            self._clamp(m)


class OrbitalModel(_MovementBase):
    """EVE-style ships orbiting gravity wells, occasionally warping.

    Ships cluster around ``wells`` points (fleets); each tick a ship
    either continues its orbit or (with ``warp_rate`` probability) picks
    a new well and burns toward it at ``warp_speed``.  Acceleration is
    bounded by ``a_max`` — the quantity the bubble partitioner integrates.
    """

    def __init__(
        self,
        bounds: AABB,
        count: int,
        wells: int = 4,
        orbit_radius: float = 30.0,
        orbit_speed: float = 2.0,
        warp_speed: float = 40.0,
        warp_rate: float = 0.002,
        a_max: float = 5.0,
        seed: int = 0,
    ):
        super().__init__(bounds, seed)
        if wells < 1:
            raise ReproError("need at least one well")
        self.a_max = a_max
        self.orbit_radius = orbit_radius
        self.orbit_speed = orbit_speed
        self.warp_speed = warp_speed
        self.warp_rate = warp_rate
        self.wells = [
            (
                self.rng.uniform(bounds.min_x + orbit_radius, bounds.max_x - orbit_radius),
                self.rng.uniform(bounds.min_y + orbit_radius, bounds.max_y - orbit_radius),
            )
            for _ in range(wells)
        ]
        self._phase: dict[int, float] = {}
        self._warping: set[int] = set()
        for eid in range(count):
            well = self.rng.randrange(wells)
            phase = self.rng.uniform(0, 2 * math.pi)
            wx, wy = self.wells[well]
            r = orbit_radius * self.rng.uniform(0.5, 1.0)
            m = _Mover(
                x=wx + r * math.cos(phase),
                y=wy + r * math.sin(phase),
                well=well,
                speed=r,  # reuse: orbit radius per ship
            )
            self._phase[eid] = phase
            self._movers[eid] = m

    def step(self, dt: float = 1.0) -> None:
        """Advance ships: orbiting or warping."""
        self.ticks += 1
        for eid, m in self._movers.items():
            if eid in self._warping:
                wx, wy = self.wells[m.well]
                dx, dy = wx - m.x, wy - m.y
                dist = math.hypot(dx, dy)
                if dist <= m.speed:
                    self._warping.discard(eid)
                    self._phase[eid] = math.atan2(m.y - wy, m.x - wx)
                    continue
                m.vx = self.warp_speed * dx / dist
                m.vy = self.warp_speed * dy / dist
                m.x += m.vx * dt
                m.y += m.vy * dt
                self._clamp(m)
                continue
            if self.rng.random() < self.warp_rate:
                m.well = self.rng.randrange(len(self.wells))
                self._warping.add(eid)
                continue
            # circular orbit: advance phase by angular velocity
            r = max(m.speed, 1e-6)
            omega = self.orbit_speed / r
            self._phase[eid] += omega * dt
            wx, wy = self.wells[m.well]
            nx = wx + r * math.cos(self._phase[eid])
            ny = wy + r * math.sin(self._phase[eid])
            m.vx = (nx - m.x) / dt
            m.vy = (ny - m.y) / dt
            m.x, m.y = nx, ny

    def fleet_sizes(self) -> dict[int, int]:
        """Ships per well (fleet concentration metric)."""
        out: dict[int, int] = {i: 0 for i in range(len(self.wells))}
        for m in self._movers.values():
            out[m.well] += 1
        return out


class FlockingModel(_MovementBase):
    """Boids-lite flocking: tight moving clusters.

    Uses a uniform grid for the neighbourhood query, so stepping is
    O(n · density) — the same lesson the rest of the library teaches.
    """

    def __init__(
        self,
        bounds: AABB,
        count: int,
        flocks: int = 3,
        neighbor_radius: float = 10.0,
        max_speed: float = 3.0,
        seed: int = 0,
    ):
        super().__init__(bounds, seed)
        self.neighbor_radius = neighbor_radius
        self.max_speed = max_speed
        for eid in range(count):
            flock = eid % max(1, flocks)
            fx = bounds.min_x + (flock + 0.5) * bounds.width / max(1, flocks)
            fy = (bounds.min_y + bounds.max_y) / 2
            self._movers[eid] = _Mover(
                x=fx + self.rng.uniform(-10, 10),
                y=fy + self.rng.uniform(-10, 10),
                vx=self.rng.uniform(-1, 1),
                vy=self.rng.uniform(-1, 1),
            )

    def step(self, dt: float = 1.0) -> None:
        """One boids step (cohesion + separation + alignment)."""
        from repro.spatial.grid import UniformGrid

        self.ticks += 1
        grid = UniformGrid(self.neighbor_radius)
        for eid, m in self._movers.items():
            grid.insert(eid, m.x, m.y)
        updates: dict[int, tuple[float, float]] = {}
        for eid, m in self._movers.items():
            neighbors = [
                self._movers[o]
                for o in grid.query_circle(m.x, m.y, self.neighbor_radius)
                if o != eid
            ]
            ax = ay = 0.0
            if neighbors:
                cx = sum(n.x for n in neighbors) / len(neighbors)
                cy = sum(n.y for n in neighbors) / len(neighbors)
                ax += (cx - m.x) * 0.01  # cohesion
                ay += (cy - m.y) * 0.01
                avx = sum(n.vx for n in neighbors) / len(neighbors)
                avy = sum(n.vy for n in neighbors) / len(neighbors)
                ax += (avx - m.vx) * 0.05  # alignment
                ay += (avy - m.vy) * 0.05
                for n in neighbors:  # separation
                    d2 = (m.x - n.x) ** 2 + (m.y - n.y) ** 2
                    if 0 < d2 < 4.0:
                        ax += (m.x - n.x) / d2
                        ay += (m.y - n.y) / d2
            updates[eid] = (ax, ay)
        for eid, (ax, ay) in updates.items():
            m = self._movers[eid]
            m.vx += ax * dt
            m.vy += ay * dt
            speed = math.hypot(m.vx, m.vy)
            if speed > self.max_speed:
                m.vx *= self.max_speed / speed
                m.vy *= self.max_speed / speed
            m.x += m.vx * dt
            m.y += m.vy * dt
            # reflect at bounds
            if not self.bounds.min_x <= m.x <= self.bounds.max_x:
                m.vx = -m.vx
            if not self.bounds.min_y <= m.y <= self.bounds.max_y:
                m.vy = -m.vy
            self._clamp(m)
