"""Synthetic workload generators: movement models, player populations,
combat encounters, and action/transaction traces."""

from repro.workloads.combat import (
    CombatEvent,
    EncounterConfig,
    generate_encounter,
    jitter_positions,
    run_encounter,
)
from repro.workloads.hotspot import (
    HotspotConfig,
    cluster_schemas,
    hot_center,
    interaction_pairs,
    make_hotspot_system,
    sample_transfers,
    spawn_hotspot_population,
    transfer_spec,
)
from repro.workloads.ledger import LedgerConfig, LedgerWorkload
from repro.workloads.movement import FlockingModel, OrbitalModel, RandomWaypoint
from repro.workloads.players import (
    HotspotSampler,
    PlayerPopulation,
    PopulationConfig,
    register_player_components,
    zipf_choice,
)
from repro.workloads.swarm import Swarm, SwarmClient, SwarmConfig, socket_client
from repro.workloads.tracegen import (
    TraceConfig,
    TxnWorkloadConfig,
    generate_action_trace,
    generate_transfer_workload,
    milestones_in,
)

__all__ = [
    "CombatEvent",
    "EncounterConfig",
    "generate_encounter",
    "jitter_positions",
    "run_encounter",
    "HotspotConfig",
    "cluster_schemas",
    "hot_center",
    "interaction_pairs",
    "make_hotspot_system",
    "sample_transfers",
    "spawn_hotspot_population",
    "transfer_spec",
    "FlockingModel",
    "LedgerConfig",
    "LedgerWorkload",
    "OrbitalModel",
    "RandomWaypoint",
    "HotspotSampler",
    "PlayerPopulation",
    "PopulationConfig",
    "register_player_components",
    "zipf_choice",
    "Swarm",
    "SwarmClient",
    "SwarmConfig",
    "socket_client",
    "TraceConfig",
    "TxnWorkloadConfig",
    "generate_action_trace",
    "generate_transfer_workload",
    "milestones_in",
]
