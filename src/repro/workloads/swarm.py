"""Swarm: a gateway load generator with churn and Zipfian hotspots.

Drives a :class:`~repro.gateway.core.GatewayCore` with up to 10⁴–10⁵
simulated clients.  Each client is a :class:`SwarmClient` — an avatar
entity in the world, a :class:`~repro.gateway.transport.MemoryTransport`
it drains like a socket, and a frame decoder counting what it receives.
The swarm itself supplies the three load shapes an edge has to survive:

* **connection churn** — a ramp to the configured population, then a
  per-tick disconnect/reconnect rate (reconnects use resume tokens, so
  churn also exercises the session-resume path);
* **Zipfian hotspots** — avatars cluster around a small set of hotspot
  centres chosen with :func:`~repro.workloads.players.zipf_choice`, so
  a few AOI neighbourhoods absorb most of the update traffic, exactly
  the skew real MMO worlds exhibit;
* **slow readers** — a configurable fraction of clients drain with a
  tiny byte budget, forcing the backpressure/eviction machinery on.

:func:`socket_client` is the same client over a real TCP connection,
used by the E19 benchmark's socket mode and the CI smoke job.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.component import schema
from repro.errors import GatewayError
from repro.gateway.framing import FrameDecoder, frame
from repro.gateway.messages import Delta, Goodbye, Hello, Ping, Reject, Welcome
from repro.gateway.transport import MemoryTransport
from repro.net.protocol import InputCommand
from repro.workloads.players import zipf_choice


@dataclass
class SwarmConfig:
    """Shape of the synthetic client population and its traffic."""

    clients: int = 1000
    ramp_ticks: int = 50
    churn_rate: float = 0.01
    zipf_theta: float = 0.8
    hotspots: int = 8
    world_size: float = 1000.0
    hotspot_sigma: float = 12.0
    speed: float = 2.0
    move_rate: float = 0.5
    aoi_radius: float = 0.0
    slow_fraction: float = 0.0
    slow_budget: int = 256
    #: Fraction of connected clients that send an ``InputCommand``
    #: each tick (0 disables input traffic).  Inputs are what the E21
    #: causal plane traces end to end, so its benchmark turns this on.
    input_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise GatewayError("swarm needs at least one client")
        if not 0 <= self.churn_rate < 1:
            raise GatewayError("churn_rate must be in [0, 1)")
        if self.hotspots < 1:
            raise GatewayError("at least one hotspot required")


@dataclass
class SwarmClient:
    """One simulated client: avatar, transport, and receive-side stats."""

    name: str
    avatar: int
    hotspot: int
    radius: float
    slow: bool = False
    transport: MemoryTransport | None = None
    cid: int | None = None
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    session: str = ""
    resume_token: str = ""
    connected: bool = False
    welcomes: int = 0
    deltas: int = 0
    enters_seen: int = 0
    exits_seen: int = 0
    updates_seen: int = 0
    coalesced_seen: int = 0
    bytes_received: int = 0
    goodbye_reason: str = ""
    rejects: int = 0
    inputs_sent: int = 0

    def absorb(self, messages: list[Any]) -> None:
        """Update stats from freshly decoded messages."""
        for msg in messages:
            if isinstance(msg, Delta):
                self.deltas += 1
                self.enters_seen += len(msg.enters)
                self.exits_seen += len(msg.exits)
                self.updates_seen += len(msg.updates)
                self.coalesced_seen += msg.coalesced
            elif isinstance(msg, Welcome):
                self.welcomes += 1
                self.session = msg.session
                self.resume_token = msg.resume_token
            elif isinstance(msg, Goodbye):
                self.goodbye_reason = msg.reason
                self.connected = False
            elif isinstance(msg, Reject):
                self.rejects += 1
                self.connected = False
                # A dead resume token (e.g. the session was evicted)
                # must not be retried; the next connect is a fresh hello.
                self.resume_token = ""
                self.session = ""


class Swarm:
    """Deterministic gateway load: ramp, churn, hotspots, slow readers."""

    def __init__(self, world: Any, core: Any, config: SwarmConfig | None = None):
        self.world = world
        self.core = core
        self.config = config or SwarmConfig()
        self.rng = random.Random(self.config.seed)
        cfg = self.config
        for name, fields in (
            ("Position", dict(x="float", y="float")),
            ("Velocity", dict(vx=("float", 0.0), vy=("float", 0.0))),
        ):
            if name not in world.component_names():
                world.catalog.define(schema(name, **fields))
        self.centers = [
            (
                self.rng.uniform(0.1, 0.9) * cfg.world_size,
                self.rng.uniform(0.1, 0.9) * cfg.world_size,
            )
            for _ in range(cfg.hotspots)
        ]
        self.clients: list[SwarmClient] = []
        for i in range(cfg.clients):
            hot = zipf_choice(self.rng, cfg.hotspots, cfg.zipf_theta)
            cx, cy = self.centers[hot]
            x = cx + self.rng.gauss(0.0, cfg.hotspot_sigma)
            y = cy + self.rng.gauss(0.0, cfg.hotspot_sigma)
            angle = self.rng.uniform(0.0, 2.0 * math.pi)
            avatar = world.spawn(
                Position={"x": x, "y": y},
                Velocity={
                    "vx": cfg.speed * math.cos(angle),
                    "vy": cfg.speed * math.sin(angle),
                },
            )
            name = f"swarm-{i:06d}"
            core.bind_avatar(name, avatar)
            self.clients.append(
                SwarmClient(
                    name=name,
                    avatar=avatar,
                    hotspot=hot,
                    radius=cfg.aoi_radius,
                    slow=self.rng.random() < cfg.slow_fraction,
                )
            )
        self.connects = 0
        self.reconnects = 0
        self.disconnects = 0
        self.inputs_sent = 0

    # -- connection churn ------------------------------------------------------------

    def connect(self, client: SwarmClient, resume: bool = False) -> None:
        """Open a connection for one client (fresh hello or resume)."""
        client.transport = MemoryTransport()
        client.decoder = FrameDecoder()
        client.cid = self.core.connect(client.transport)
        hello = Hello(
            client=client.name,
            aoi_radius=client.radius,
            resume=client.resume_token if resume else "",
        )
        self.core.on_bytes(client.cid, frame(hello))
        client.connected = True
        client.goodbye_reason = ""
        self.connects += 1
        if resume:
            self.reconnects += 1

    def disconnect(self, client: SwarmClient) -> None:
        """Drop one client's connection (the session stays resumable)."""
        if client.cid is not None:
            self.core.disconnect(client.cid)
        client.connected = False
        self.disconnects += 1

    def connected_clients(self) -> list[SwarmClient]:
        """Clients currently holding a connection."""
        return [c for c in self.clients if c.connected]

    # -- one tick of load ------------------------------------------------------------

    def step(self, tick: int) -> None:
        """Advance the swarm one tick: ramp/churn, then hotspot movement.

        Call before the world tick; drain with :meth:`drain` after the
        gateway tick so clients see this tick's deltas.
        """
        cfg = self.config
        connected = [c for c in self.clients if c.connected]
        target = min(
            cfg.clients,
            math.ceil(cfg.clients * (tick + 1) / max(cfg.ramp_ticks, 1)),
        )
        if len(connected) < target:
            for client in self.clients:
                if len(connected) >= target:
                    break
                if not client.connected:
                    self.connect(client, resume=bool(client.resume_token))
                    connected.append(client)
        elif cfg.churn_rate > 0:
            n_churn = int(len(connected) * cfg.churn_rate)
            for client in self.rng.sample(connected, n_churn):
                self.disconnect(client)
        if cfg.input_rate > 0:
            self.send_inputs(tick)
        self.move(tick)

    def send_inputs(self, tick: int) -> None:
        """A fraction of connected clients each sends one input command."""
        cfg = self.config
        connected = [c for c in self.clients if c.connected]
        if not connected:
            return
        n = max(1, int(len(connected) * cfg.input_rate))
        for client in self.rng.sample(connected, min(n, len(connected))):
            client.inputs_sent += 1
            cmd = InputCommand(
                client=client.name,
                seq=client.inputs_sent,
                action="move",
                args={"dx": 1.0, "dy": 0.0},
                tick=tick,
            )
            self.core.on_bytes(client.cid, frame(cmd))
            self.inputs_sent += 1

    def move(self, tick: int) -> None:
        """Zipfian hotspot movement: hot avatars generate most updates.

        Public so socket-mode drivers can generate traffic without the
        memory-transport connection plane.
        """
        cfg = self.config
        moves = max(1, int(len(self.clients) * cfg.move_rate))
        world = self.world
        for _ in range(moves):
            client = self.clients[
                zipf_choice(self.rng, len(self.clients), cfg.zipf_theta)
            ]
            eid = client.avatar
            pos = world.get(eid, "Position")
            vel = world.get(eid, "Velocity")
            x = pos["x"] + vel["vx"]
            y = pos["y"] + vel["vy"]
            cx, cy = self.centers[client.hotspot]
            # Bounce back toward the hotspot when drifting out of it.
            if abs(x - cx) > 4 * cfg.hotspot_sigma or abs(y - cy) > 4 * cfg.hotspot_sigma:
                angle = math.atan2(cy - y, cx - x) + self.rng.gauss(0.0, 0.3)
                world.set(
                    eid,
                    "Velocity",
                    vx=cfg.speed * math.cos(angle),
                    vy=cfg.speed * math.sin(angle),
                )
            world.set(eid, "Position", x=x, y=y)

    def drain(self) -> int:
        """Every connected client reads its transport; returns total bytes.

        Slow clients consume at most ``slow_budget`` bytes per tick —
        that *is* the slow-reader model driving backpressure.
        """
        total = 0
        for client in self.clients:
            if client.transport is None:
                continue
            budget = self.config.slow_budget if client.slow else None
            data = client.transport.drain(budget)
            if not data:
                continue
            total += len(data)
            client.bytes_received += len(data)
            client.absorb(client.decoder.feed(data))
        return total

    def stats(self) -> dict[str, Any]:
        """Aggregate swarm-side counters."""
        return {
            "clients": len(self.clients),
            "connected": sum(1 for c in self.clients if c.connected),
            "connects": self.connects,
            "reconnects": self.reconnects,
            "disconnects": self.disconnects,
            "deltas": sum(c.deltas for c in self.clients),
            "enters_seen": sum(c.enters_seen for c in self.clients),
            "exits_seen": sum(c.exits_seen for c in self.clients),
            "updates_seen": sum(c.updates_seen for c in self.clients),
            "coalesced_seen": sum(c.coalesced_seen for c in self.clients),
            "bytes_received": sum(c.bytes_received for c in self.clients),
            "evicted": sum(
                1 for c in self.clients if c.goodbye_reason.startswith("evicted")
            ),
            "rejects": sum(c.rejects for c in self.clients),
            "inputs_sent": self.inputs_sent,
        }


async def socket_client(
    host: str,
    port: int,
    name: str,
    aoi_radius: float = 0.0,
    deltas_wanted: int = 10,
    ping_every: int = 4,
    clock: Any = None,
) -> dict[str, Any]:
    """One swarm client over a real TCP connection (asyncio).

    Connects, hellos, consumes ``deltas_wanted`` deltas while sending a
    ping every ``ping_every`` deltas, then disconnects cleanly.  Returns
    the client's stats dict, including measured ping RTTs in seconds —
    the *client-visible* latency of the socket path.
    """
    now = clock or time.perf_counter
    reader, writer = await asyncio.open_connection(host, port)
    stats = SwarmClient(name=name, avatar=-1, hotspot=0, radius=aoi_radius)
    rtts: list[float] = []
    pending_pings: dict[int, float] = {}
    nonce = 0
    try:
        writer.write(frame(Hello(client=name, aoi_radius=aoi_radius)))
        await writer.drain()
        decoder = FrameDecoder()
        while stats.deltas < deltas_wanted and not stats.goodbye_reason:
            data = await reader.read(64 * 1024)
            if not data:
                break
            stats.bytes_received += len(data)
            messages = decoder.feed(data)
            for msg in messages:
                if hasattr(msg, "nonce") and msg.nonce in pending_pings:
                    rtts.append(now() - pending_pings.pop(msg.nonce))
            stats.absorb(messages)
            if stats.rejects:
                break
            if ping_every and stats.deltas and stats.deltas % ping_every == 0:
                nonce += 1
                pending_pings[nonce] = now()
                writer.write(frame(Ping(nonce=nonce)))
                await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # server closed on us (eviction/shutdown): still a clean exit
    finally:
        try:
            writer.close()
        except (ConnectionError, RuntimeError):
            pass
    return {
        "name": name,
        "deltas": stats.deltas,
        "enters_seen": stats.enters_seen,
        "bytes_received": stats.bytes_received,
        "goodbye_reason": stats.goodbye_reason,
        "rejects": stats.rejects,
        "rtts": rtts,
    }
