"""Action-trace generators for persistence and concurrency experiments.

A *trace* is an ordered list of game actions with timestamps and designer
importance — the input shape for checkpoint policies (E8) and, reshaped
into transactions, for the concurrency schedulers (E6).

The milestone structure mirrors what the tutorial describes: long
stretches of routine actions (movement ticks, trash kills) punctuated by
rare, high-importance events (boss kills, epic drops) whose loss on
recovery "may force a player to repeat a difficult fight or lose a
particularly desirable reward".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consistency.transactions import (
    TxnSpec,
    read_for_update,
    write,
)
from repro.errors import ReproError
from repro.persistence.memdb import Action
from repro.workloads.players import HotspotSampler


@dataclass
class TraceConfig:
    """Knobs for an action trace."""

    ticks: int = 10_000
    players: int = 50
    actions_per_tick: float = 2.0
    #: probability that a tick contains a milestone event
    milestone_rate: float = 0.002
    #: importance of routine vs milestone actions
    routine_importance: float = 0.01
    milestone_importance: float = 0.95
    seed: int = 0


def generate_action_trace(config: TraceConfig | None = None) -> list[Action]:
    """Generate a persistence-tier action trace.

    Routine actions are player-state puts; milestones are boss-kill /
    epic-loot puts with near-maximal importance.
    """
    cfg = config or TraceConfig()
    rng = random.Random(cfg.seed)
    trace: list[Action] = []
    carry = 0.0
    for tick in range(cfg.ticks):
        carry += cfg.actions_per_tick
        n_actions = int(carry)
        carry -= n_actions
        for _ in range(n_actions):
            player = rng.randrange(cfg.players)
            trace.append(
                Action(
                    "put",
                    "players",
                    player,
                    {"x": rng.uniform(0, 1000), "gold_delta": rng.randint(0, 3)},
                    importance=cfg.routine_importance,
                    tick=tick,
                )
            )
        if rng.random() < cfg.milestone_rate:
            player = rng.randrange(cfg.players)
            kind = rng.choice(("boss_kill", "epic_loot", "level_up"))
            trace.append(
                Action(
                    "put",
                    "milestones",
                    f"{kind}:{tick}",
                    {"player": player, "kind": kind},
                    importance=cfg.milestone_importance,
                    tick=tick,
                )
            )
    return trace


def milestones_in(trace: list[Action]) -> list[Action]:
    """The milestone subset of a trace."""
    return [a for a in trace if a.table == "milestones"]


@dataclass
class TxnWorkloadConfig:
    """Knobs for a transactional workload."""

    transactions: int = 200
    accounts: int = 50
    hot_keys: int = 5
    hot_fraction: float = 0.0  # 0 = uniform
    ops_extra_reads: int = 2
    seed: int = 0


def generate_transfer_workload(
    config: TxnWorkloadConfig | None = None,
) -> tuple[dict, list[TxnSpec]]:
    """Bank-transfer workload: returns (initial store data, txn specs).

    Each transaction reads a few unrelated accounts (browsing the
    auction house), then transfers gold between two accounts chosen by a
    hotspot sampler — contention is controlled by ``hot_fraction``.
    The invariant (total gold conserved) is what tests assert.
    """
    cfg = config or TxnWorkloadConfig()
    if cfg.accounts < 2:
        raise ReproError("need at least two accounts")
    rng = random.Random(cfg.seed)
    sampler = HotspotSampler(
        cfg.accounts, cfg.hot_keys, cfg.hot_fraction, seed=cfg.seed + 1
    )
    initial = {("gold", i): 1000 for i in range(cfg.accounts)}
    specs: list[TxnSpec] = []
    for t in range(cfg.transactions):
        src, dst = sampler.sample_pair()
        amount = rng.randint(1, 10)
        ops = []
        for _ in range(cfg.ops_extra_reads):
            browse = rng.randrange(cfg.accounts)
            ops.append(read_for_update(("gold", browse)) if browse in (src, dst)
                       else _plain_read(("gold", browse)))
        ops.extend(
            [
                read_for_update(("gold", src)),
                read_for_update(("gold", dst)),
                write(("gold", src), _make_sub(amount)),
                write(("gold", dst), _make_add(amount)),
            ]
        )
        specs.append(TxnSpec(f"transfer{t}", ops))
    return initial, specs


def _plain_read(key):
    from repro.consistency.transactions import read

    return read(key)


def _make_sub(amount: int):
    def sub(old, reads):
        return (old or 0) - amount

    return sub


def _make_add(amount: int):
    def add(old, reads):
        return (old or 0) + amount

    return add
