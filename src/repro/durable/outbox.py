"""The idempotent outbox: events leave the database exactly once (observed).

Events are *written* by :class:`~repro.durable.uow.SqlUnitOfWork` inside
the same WAL commit record as the state change — the outbox table rows
are just their projection.  This module is the other half: a
:class:`OutboxDispatcher` drains undispatched rows in ``seq`` order into
a sink (the gateway, a recording test double, anything callable) and
marks them dispatched.

Delivery is at-least-once by design — the dispatch mark is lazily
durable, and failover replays the whole outbox — while the dedup key
(``entity:event:key``) makes redelivery invisible to any consumer that
keeps a seen-set, which the gateway does per session.  At-least-once
delivery + idempotent receive = exactly-once observation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from repro.durable.store import DurableStore


@dataclass(frozen=True)
class OutboxEvent:
    """One event leaving the durable tier."""

    seq: int
    dedup: str
    entity: int
    event: str
    key: str
    payload: dict[str, Any]


class OutboxDispatcher:
    """Drains the outbox into a sink, bounded per call, in seq order."""

    def __init__(
        self,
        store: DurableStore,
        sink: Callable[[OutboxEvent], Any],
        batch: int = 64,
    ):
        self.store = store
        self.sink = sink
        self.batch = batch
        self.dispatched = 0
        self.drains = 0

    def drain(self, limit: int | None = None) -> int:
        """Hand up to ``limit`` (default ``batch``) events to the sink.

        Returns how many were dispatched.  The sink runs *before* the
        mark, so a crash between the two redelivers — never drops.
        """
        limit = self.batch if limit is None else limit
        tracer = self.store.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "outbox.dispatch", cat="durable", limit=limit
            ) as span:
                sent = self._drain_impl(limit)
                span.set(sent=sent)
                return sent
        return self._drain_impl(limit)

    def _drain_impl(self, limit: int) -> int:
        rows = self.store.undispatched(limit)
        if not rows:
            return 0
        seqs: list[int] = []
        for row in rows:
            self.sink(
                OutboxEvent(
                    seq=row["seq"],
                    dedup=row["dedup"],
                    entity=row["entity"],
                    event=row["event"],
                    key=row["evkey"],
                    payload=json.loads(row["body"]),
                )
            )
            seqs.append(row["seq"])
        self.store.mark_dispatched(seqs)
        self.dispatched += len(seqs)
        self.drains += 1
        return len(seqs)

    def drain_all(self) -> int:
        """Drain until the outbox is empty; returns total dispatched."""
        total = 0
        while True:
            sent = self.drain()
            if sent == 0:
                return total
            total += sent

    def lag(self) -> int:
        """Undispatched rows right now — the drain-lag gauge E20 plots."""
        return self.store.outbox_pending()

    def stats(self) -> dict[str, int]:
        """Counters for the obs stats row."""
        return {
            "dispatched": self.dispatched,
            "drains": self.drains,
            "pending": self.lag(),
        }


def gateway_sink(core: Any) -> Callable[[OutboxEvent], int]:
    """Adapt a ``GatewayCore`` into a dispatcher sink.

    Kept as a tiny closure (duck-typed ``publish_event``) so the durable
    tier never imports the gateway package — the dependency points the
    other way only at wiring time, in whoever owns both.
    """

    def sink(ev: OutboxEvent) -> int:
        return core.publish_event(
            entity=ev.entity,
            event=ev.event,
            key=ev.key,
            payload=ev.payload,
        )

    return sink


class RecordingSink:
    """Test double: counts every delivery per dedup key.

    ``exactly_once()`` is the assertion the crash matrix and the
    failover loss accounting both lean on: at-least-once delivery is
    expected (``deliveries`` may exceed ``unique``), but an *observing*
    consumer dedupes, so what matters is every key seen >= 1 time.
    """

    def __init__(self) -> None:
        self.events: list[OutboxEvent] = []
        self.counts: dict[str, int] = {}

    def __call__(self, ev: OutboxEvent) -> int:
        self.events.append(ev)
        self.counts[ev.dedup] = self.counts.get(ev.dedup, 0) + 1
        return 1

    @property
    def deliveries(self) -> int:
        return len(self.events)

    @property
    def unique(self) -> int:
        return len(self.counts)

    def observed(self, dedup: str) -> int:
        """Deliveries for one dedup key."""
        return self.counts.get(dedup, 0)

    def missing(self, deduped: set[str]) -> set[str]:
        """Which of ``deduped`` never arrived — must be empty for acked."""
        return {d for d in deduped if d not in self.counts}
