"""Durable inflight leases with fencing tokens.

A worker that owns a tick (or a turn in the campaign demo) first takes a
lease: ``(key, owner, token, expires)``, journaled through the durable
store's WAL before it takes effect.  If the worker dies mid-work, the
lease outlives it — any observer can see *who* was inflight and *until
when* — and once ``expires`` passes, the coordinator reclaims the key
for a new owner under a strictly larger fencing token.

The token is the safety half: a paused-but-alive worker that wakes up
after its lease was reclaimed still holds the old token, and every
commit / renew validates the token against the lease row.  Stale token →
:class:`~repro.errors.LeaseFencedError`, so the zombie cannot
double-apply a tick it no longer owns.

Expiry is measured in ticks (the simulation clock), not wall time —
deterministic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LeaseFencedError, LeaseHeldError
from repro.durable.store import DurableStore


@dataclass(frozen=True)
class Lease:
    """One granted lease: the caller's proof of ownership."""

    key: str
    owner: str
    token: int
    expires: int


class LeaseTable:
    """Acquire / renew / release / reclaim over the durable lease rows."""

    def __init__(self, store: DurableStore):
        self.store = store
        self.acquires = 0
        self.renews = 0
        self.reclaims = 0
        self.denials = 0

    # -- the worker side ----------------------------------------------------------

    def acquire(self, key: str, owner: str, ttl: int, now: int) -> Lease:
        """Take ``key`` for ``owner`` until ``now + ttl``.

        A live lease held by someone else raises
        :class:`~repro.errors.LeaseHeldError`; re-acquiring one's own
        live lease renews it; an *expired* lease — whoever held it — is
        reclaimed under a fresh (strictly larger) fencing token, which
        is what fences out the previous holder if it was merely paused.
        """
        holder = self.holder(key)
        if holder is not None and holder.expires > now:
            if holder.owner != owner:
                self.denials += 1
                raise LeaseHeldError(key, holder.owner, holder.expires)
            return self.renew(holder, ttl, now)
        op = "acquire" if holder is None else "reclaim"
        token = self.store.next_fence()
        lease = Lease(key=key, owner=owner, token=token, expires=now + ttl)
        self._journal(op, lease)
        if op == "reclaim":
            self.reclaims += 1
            self._reclaim_span(lease, holder)
        self.acquires += 1
        return lease

    def renew(self, lease: Lease, ttl: int, now: int) -> Lease:
        """Extend a held lease to ``now + ttl``; token must still rule."""
        self.validate(lease, now)
        renewed = Lease(
            key=lease.key,
            owner=lease.owner,
            token=lease.token,
            expires=now + ttl,
        )
        self._journal("renew", renewed)
        self.renews += 1
        return renewed

    def release(self, lease: Lease) -> None:
        """Drop a lease deliberately (finished the work it covered)."""
        holder = self.holder(lease.key)
        if holder is None or holder.token != lease.token:
            # Already reclaimed or released: nothing ours to drop.
            return
        self._journal("release", lease)

    def validate(self, lease: Lease, now: int) -> None:
        """Assert ``lease`` still rules its key (the commit-time fence).

        Raises :class:`~repro.errors.LeaseFencedError` if the row moved
        to a newer token or vanished, i.e. the caller was fenced out.
        """
        holder = self.holder(lease.key)
        current = 0 if holder is None else holder.token
        if holder is None or holder.token != lease.token:
            raise LeaseFencedError(lease.key, lease.token, current)
        if holder.expires <= now:
            # Expired but not yet reclaimed: refuse rather than race the
            # reclaim — the worker must re-acquire (getting a new token).
            raise LeaseFencedError(lease.key, lease.token, holder.token)

    # -- the coordinator side ------------------------------------------------------

    def holder(self, key: str) -> Lease | None:
        """The current lease row for ``key`` (expired or not)."""
        rows = self.store.engine.execute(
            "SELECT * FROM leases WHERE lease_key = ?", (key,)
        )
        if not rows:
            return None
        r = rows[0]
        return Lease(
            key=r["lease_key"],
            owner=r["owner"],
            token=r["token"],
            expires=r["expires"],
        )

    def inflight(self, now: int) -> list[Lease]:
        """All live (unexpired) leases — the crashed-worker radar's input."""
        rows = self.store.engine.execute(
            "SELECT * FROM leases WHERE expires > ?", (now,)
        )
        return [
            Lease(
                key=r["lease_key"],
                owner=r["owner"],
                token=r["token"],
                expires=r["expires"],
            )
            for r in rows
        ]

    def expired(self, now: int) -> list[Lease]:
        """Lease rows whose expiry has passed: dead workers' leftovers."""
        rows = self.store.engine.execute(
            "SELECT * FROM leases WHERE expires <= ?", (now,)
        )
        return [
            Lease(
                key=r["lease_key"],
                owner=r["owner"],
                token=r["token"],
                expires=r["expires"],
            )
            for r in rows
        ]

    def reclaim_expired(
        self, now: int, owner: str = "coordinator", ttl: int = 0
    ) -> list[Lease]:
        """Sweep expired leases, re-owning each under a fresh token.

        With ``ttl`` 0 the reclaimed lease is immediately releasable by
        the new owner (a pure fence bump); a positive ``ttl`` hands the
        key to ``owner`` for that long.  Returns the *new* leases.
        """
        out: list[Lease] = []
        for stale in self.expired(now):
            token = self.store.next_fence()
            lease = Lease(
                key=stale.key, owner=owner, token=token, expires=now + ttl
            )
            self._journal("reclaim", lease)
            self.reclaims += 1
            self._reclaim_span(lease, stale)
            out.append(lease)
        return out

    # -- plumbing ------------------------------------------------------------------

    def _journal(self, op: str, lease: Lease) -> None:
        self.store.append_lease(
            {
                "op": op,
                "key": lease.key,
                "owner": lease.owner,
                "token": lease.token,
                "expires": lease.expires,
            }
        )

    def _reclaim_span(self, lease: Lease, stale: Lease | None) -> None:
        tracer = self.store.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "lease.reclaim",
                cat="durable",
                key=lease.key,
                token=lease.token,
                from_owner="" if stale is None else stale.owner,
            ):
                pass

    def stats(self) -> dict[str, int]:
        """Counters for the obs stats row."""
        return {
            "acquires": self.acquires,
            "renews": self.renews,
            "reclaims": self.reclaims,
            "denials": self.denials,
        }
