"""The transactional serving tier: acknowledged means durable.

    "MMOs use commercial databases for persistence and to recover from
    server crashes."

Everything the in-memory game tier lacked on its own: a unit of work
with optimistic CAS over ``row_version`` (:mod:`repro.durable.uow`),
crash-reclaimable leases with fencing tokens
(:mod:`repro.durable.leases`), an idempotent outbox drained into the
gateway (:mod:`repro.durable.outbox`) — all projected from one redo WAL
(:mod:`repro.durable.store`) — and the failover drill that keeps the
promises across a primary crash (:mod:`repro.durable.failover`).
"""

from repro.durable.failover import (
    ACK_ASYNC,
    ACK_SEMISYNC,
    AckedCommit,
    DurableGroup,
    DurableTier,
    LossAccounting,
    PromotionReport,
)
from repro.durable.leases import Lease, LeaseTable
from repro.durable.outbox import (
    OutboxDispatcher,
    OutboxEvent,
    RecordingSink,
    gateway_sink,
)
from repro.durable.store import DurableStore, InjectedCrash
from repro.durable.uow import (
    CommitReceipt,
    SqlUnitOfWork,
    UnitOfWork,
    run_unit,
)

__all__ = [
    "ACK_ASYNC",
    "ACK_SEMISYNC",
    "AckedCommit",
    "CommitReceipt",
    "DurableGroup",
    "DurableStore",
    "DurableTier",
    "InjectedCrash",
    "Lease",
    "LeaseTable",
    "LossAccounting",
    "OutboxDispatcher",
    "OutboxEvent",
    "PromotionReport",
    "RecordingSink",
    "SqlUnitOfWork",
    "UnitOfWork",
    "gateway_sink",
    "run_unit",
]
