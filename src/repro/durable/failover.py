"""Failover for the durable tier: promote, then replay the outbox.

A :class:`DurableGroup` is one primary :class:`DurableStore` plus ``k``
standbys, shipping the primary's durable WAL tail (commit, dispatch and
lease records alike — the standby is a full projection, not just data).

Acknowledgement mirrors the E15 replication modes:

``async``
    Acked at the primary's WAL flush; the tail shipped since the last
    cadence dies with the primary — the documented loss window.
``semisync``
    Shipping happens synchronously inside every commit (via the store's
    ``on_durable`` hook), so acked means *on a standby* — the mode under
    which the kill-primary test proves zero acknowledged loss.

On primary death: :meth:`promote` picks the most-caught-up standby,
then runs the outbox replay — every outbox row on the new primary is
marked undispatched and re-dispatched, because the old primary's
dispatch marks may be arbitrarily stale.  Redelivery is the point:
consumers dedupe, so replaying everything is how "no acknowledged event
is ever lost" is actually enforced.  :meth:`loss_accounting` extends
E15's accounting to the durable tier: which acked commits and events
survived, entity by entity, dedup key by dedup key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConflictError, DurableError, RetriesExhaustedError
from repro.durable.outbox import OutboxDispatcher, OutboxEvent
from repro.durable.store import DurableStore
from repro.durable.uow import CommitReceipt, SqlUnitOfWork
from repro.obs.hub import Observability, resolve_obs

ACK_ASYNC = "async"
ACK_SEMISYNC = "semisync"


@dataclass(frozen=True)
class AckedCommit:
    """One acknowledged commit: the promise loss accounting audits."""

    commit_seq: int
    writes: tuple[tuple[int, int], ...]  # (entity, row_version)
    deduped: tuple[str, ...]  # outbox dedup keys


@dataclass(frozen=True)
class PromotionReport:
    """What a promotion found and replayed."""

    promoted: int
    applied_lsn: int
    outbox_replayed: int


@dataclass
class LossAccounting:
    """Durable-tier extension of E15's acked-loss ledger."""

    acked_commits: int = 0
    commits_surviving: int = 0
    commits_lost: int = 0
    acked_events: int = 0
    events_observed: int = 0
    events_lost: int = 0
    lost_commit_seqs: list[int] = field(default_factory=list)
    lost_deduped: list[str] = field(default_factory=list)

    @property
    def zero_acked_loss(self) -> bool:
        return self.commits_lost == 0 and self.events_lost == 0


class DurableGroup:
    """Primary + standbys over :class:`DurableStore`, E15 ack semantics."""

    def __init__(
        self,
        standbys: int = 1,
        ack_mode: str = ACK_SEMISYNC,
        group_commit: int = 1,
        obs: Observability | None = None,
    ):
        if ack_mode not in (ACK_ASYNC, ACK_SEMISYNC):
            raise DurableError(f"unknown ack mode {ack_mode!r}")
        if ack_mode == ACK_SEMISYNC and standbys < 1:
            raise DurableError("semisync needs at least one standby")
        self.obs = resolve_obs(obs)
        self.ack_mode = ack_mode
        self.primary = DurableStore(
            group_commit=group_commit, obs=self.obs, name="primary"
        )
        self.standbys = [
            DurableStore(obs=self.obs, name=f"standby:{i}")
            for i in range(standbys)
        ]
        self._shipped: list[int] = [0] * standbys  # LSN per standby
        self.acked: list[AckedCommit] = []
        self.primary_dead = False
        self.promotions = 0
        if ack_mode == ACK_SEMISYNC:
            self.primary.on_durable = self.ship

    # -- the write path ------------------------------------------------------------

    def run(
        self,
        fn: Callable[[SqlUnitOfWork], Any],
        tick: int = 0,
        retries: int = 5,
    ) -> CommitReceipt:
        """One unit of work against the primary, bounded optimistic retry.

        Returns the receipt once the commit is *acknowledged* under the
        group's ack mode (semisync ships inside the commit itself), and
        records the acked promise for later loss accounting.
        """
        if self.primary_dead:
            raise DurableError("primary is dead; promote() first")
        last: ConflictError | None = None
        for _attempt in range(retries):
            uow = SqlUnitOfWork(self.primary, tick=tick)
            try:
                fn(uow)
                receipt = uow.commit()
            except ConflictError as exc:
                last = exc
                continue
            record = self.primary.last_commit_record
            self.acked.append(
                AckedCommit(
                    commit_seq=receipt.commit_seq,
                    writes=tuple(
                        (entity, version)
                        for entity, version, _body in record["writes"]
                    ),
                    deduped=tuple(e[0] for e in record["events"]),
                )
            )
            return receipt
        raise RetriesExhaustedError(
            f"unit of work conflicted {retries} times",
            attempts=retries,
            last=last,
        )

    # -- shipping ------------------------------------------------------------------

    def ship(self) -> None:
        """Ship the primary's durable tail to every live standby.

        Semisync calls this from inside each commit; async calls it on
        whatever cadence the caller chooses (the loss window).
        """
        if self.primary_dead:
            return
        for i, standby in enumerate(self.standbys):
            tail = self.primary.ship_since(self._shipped[i])
            if tail:
                self._shipped[i] = standby.ingest(tail)

    # -- crash and promotion -------------------------------------------------------

    def kill_primary(self) -> int:
        """The primary's node dies: memory, disk, everything.

        Returns WAL records that were buffered but never durable.  From
        here only :meth:`promote` restores service.
        """
        lost = self.primary.crash()
        self.primary_dead = True
        return lost

    def promote(
        self, sink: Callable[[OutboxEvent], Any] | None = None
    ) -> PromotionReport:
        """Promote the most-caught-up standby, then replay the outbox.

        The new primary marks its whole outbox undispatched and — when a
        ``sink`` is given — re-drains it immediately: at-least-once
        redelivery into a deduping consumer is what makes acked events
        survive the crash observably.
        """
        if not self.primary_dead:
            raise DurableError("promote() needs a dead primary")
        if not self.standbys:
            raise DurableError("no standby to promote")
        best = max(
            range(len(self.standbys)),
            key=lambda i: (self.standbys[i].wal.flushed_lsn, -i),
        )
        promoted = self.standbys.pop(best)
        self._shipped.pop(best)
        promoted.name = "primary"
        self.primary = promoted
        self.primary_dead = False
        self.promotions += 1
        if self.ack_mode == ACK_SEMISYNC:
            self.primary.on_durable = self.ship
        replayed = self.primary.reset_dispatched()
        if sink is not None:
            OutboxDispatcher(self.primary, sink).drain_all()
        self.ship()
        return PromotionReport(
            promoted=best,
            applied_lsn=self.primary.wal.flushed_lsn,
            outbox_replayed=replayed,
        )

    # -- accounting ----------------------------------------------------------------

    def loss_accounting(self, observed: set[str]) -> LossAccounting:
        """Audit every acknowledged promise against the current primary.

        A commit survives when each of its writes is present at (or
        past) the acked ``row_version``; an event survives when its
        dedup key was observed by the consumer.  Under semisync both
        loss counts must be zero — that is the E20 acceptance bar.
        """
        acc = LossAccounting(acked_commits=len(self.acked))
        for commit in self.acked:
            present = all(
                self.primary.entity_version(entity) >= version
                for entity, version in commit.writes
            )
            if present:
                acc.commits_surviving += 1
            else:
                acc.commits_lost += 1
                acc.lost_commit_seqs.append(commit.commit_seq)
            for dedup in commit.deduped:
                acc.acked_events += 1
                if dedup in observed:
                    acc.events_observed += 1
                else:
                    acc.events_lost += 1
                    acc.lost_deduped.append(dedup)
        return acc

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DurableGroup(mode={self.ack_mode}, "
            f"standbys={len(self.standbys)}, acked={len(self.acked)}, "
            f"promotions={self.promotions})"
        )


class DurableTier:
    """Per-shard durable groups bound to a replicated cluster's failover.

    Registers on the coordinator's ``failover_hooks``: when shard *s*
    loses its primary and the cluster promotes a replica, the shard's
    durable group runs the same drill — kill, promote, replay the
    outbox into ``sink`` — so world-state failover and event redelivery
    ride one control path, in that order (promote-then-replay).
    """

    def __init__(
        self,
        coordinator: Any,
        sink: Callable[[OutboxEvent], Any],
        standbys: int = 1,
        ack_mode: str = ACK_SEMISYNC,
    ):
        self.coordinator = coordinator
        self.sink = sink
        self.groups: dict[int, DurableGroup] = {
            host.shard_id: DurableGroup(
                standbys=standbys,
                ack_mode=ack_mode,
                obs=getattr(coordinator, "obs", None),
            )
            for host in coordinator.shards
        }
        self.reports: list[tuple[int, PromotionReport]] = []
        coordinator.failover_hooks.append(self.on_failover)

    def group(self, shard_id: int) -> DurableGroup:
        """The durable group serving one shard."""
        return self.groups[shard_id]

    def on_failover(self, report: Any) -> None:
        """The hook: mirror the cluster's promotion in the durable tier."""
        grp = self.groups.get(report.shard)
        if grp is None:
            return
        if not grp.primary_dead:
            grp.kill_primary()
        promotion = grp.promote(sink=self.sink)
        self.reports.append((report.shard, promotion))
