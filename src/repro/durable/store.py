"""The durable store: SQL serving state fronted by a redo WAL.

    "MMOs use commercial databases for persistence and to recover from
    server crashes."

:class:`DurableStore` is the node-local half of the serving tier.  It
pairs the :class:`~repro.persistence.sqlbridge.MiniSQL` engine (the
serving state a unit of work reads and CAS-updates) with a
:class:`~repro.persistence.wal.WriteAheadLog` of *redo records* — the
WAL flush is the durability point, and the SQL tables are merely the
replayable projection of the log.  Three record kinds flow through it:

``commit``
    One unit of work's entity writes (each carrying its new
    ``row_version``) plus the outbox events emitted in the same unit.
    Application is idempotent: a write lands only while the stored
    version is older, an event only while its dedup key is unseen — so
    crash-recovery replay converges to exactly-once effects.
``dispatch``
    Outbox rows confirmed handed to the event sink.  Deliberately
    lazy-flushed: losing a dispatch mark merely redelivers, and the
    consumer side dedupes.
``lease``
    Every lease acquire/renew/release/reclaim, so inflight ownership
    and fencing tokens survive a crash (see
    :class:`~repro.durable.leases.LeaseTable`).

:meth:`crash` models node death honestly (the unflushed WAL tail and
the whole SQL projection are gone); :meth:`recover` rebuilds the
projection by replaying the log with ``strict=True`` reads, so a
corrupt log surfaces the typed
:class:`~repro.errors.WalCorruptionError` instead of silently serving
a truncated history.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.errors import DurableError
from repro.obs.hub import Observability, resolve_obs
from repro.persistence.sqlbridge import MiniSQL
from repro.persistence.wal import WriteAheadLog


class InjectedCrash(RuntimeError):
    """Raised by an armed failpoint; the crash-matrix tests' scalpel.

    Deliberately *not* a :class:`~repro.errors.ReproError`: production
    code must never catch it, exactly like a real ``kill -9``.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at failpoint {point!r}")
        self.point = point


class DurableStore:
    """SQL serving state + redo WAL with honest crash/recover semantics.

    ``group_commit`` batches WAL appends per fsync — the knob the E20
    benchmark sweeps for the commit throughput / latency trade.
    """

    def __init__(
        self,
        group_commit: int = 1,
        obs: Observability | None = None,
        name: str = "durable",
    ):
        self.obs = resolve_obs(obs)
        self.name = name
        self.wal = WriteAheadLog(group_commit=group_commit).bind_obs(
            self.obs, wal=name
        )
        self.engine = MiniSQL()
        self._create_tables()
        self.commit_seq = 0
        self.outbox_seq = 0
        self.fence = 0
        self.commits = 0
        self.conflicts = 0
        self.recoveries = 0
        self.replayed_commits = 0
        self.crashed = False
        self._failpoints: set[str] = set()
        #: Called with each commit record right after its WAL flush —
        #: the semi-sync shipping hook a :class:`DurableGroup` installs.
        self.on_durable: Callable[[], None] | None = None
        #: The most recent commit record (loss accounting reads it to
        #: remember exactly what each acknowledgement promised).
        self.last_commit_record: dict[str, Any] | None = None

    def _create_tables(self) -> None:
        self.engine.execute(
            "CREATE TABLE entities "
            "(entity INTEGER PRIMARY KEY, body TEXT, row_version INTEGER)"
        )
        self.engine.execute(
            "CREATE TABLE outbox (dedup TEXT PRIMARY KEY, seq INTEGER, "
            "entity INTEGER, event TEXT, evkey TEXT, body TEXT, "
            "dispatched INTEGER)"
        )
        self.engine.execute(
            "CREATE TABLE leases (lease_key TEXT PRIMARY KEY, owner TEXT, "
            "token INTEGER, expires INTEGER)"
        )

    # -- failpoints (crash-matrix tests) ------------------------------------------

    def arm_failpoint(self, point: str) -> None:
        """Arm one named failpoint; the next commit passing it dies."""
        self._failpoints.add(point)

    def hit_failpoint(self, point: str) -> None:
        """Raise :class:`InjectedCrash` if ``point`` is armed (once)."""
        if point in self._failpoints:
            self._failpoints.discard(point)
            raise InjectedCrash(point)

    # -- serving reads ------------------------------------------------------------

    def read_entity(self, entity: int) -> tuple[dict[str, Any] | None, int]:
        """One entity's state and row_version (``(None, 0)`` if absent)."""
        self._require_live()
        rows = self.engine.execute(
            "SELECT body, row_version FROM entities WHERE entity = ?",
            (entity,),
        )
        if not rows:
            return None, 0
        return json.loads(rows[0]["body"]), rows[0]["row_version"]

    def entity_version(self, entity: int) -> int:
        """Just the row_version (0 if absent) — the CAS probe."""
        rows = self.engine.execute(
            "SELECT row_version FROM entities WHERE entity = ?", (entity,)
        )
        return rows[0]["row_version"] if rows else 0

    def entity_count(self) -> int:
        """Rows in the entities table."""
        return self.engine.row_count("entities")

    # -- commit records -----------------------------------------------------------

    def append_commit(
        self,
        writes: list[tuple[int, int, str]],
        events: list[tuple[str, int, int, str, str, str]],
        tick: int,
    ) -> tuple[int, dict[str, Any]]:
        """Make one unit of work durable; returns ``(lsn, record)``.

        ``writes`` rows are ``(entity, new_version, body_json)``;
        ``events`` rows are ``(dedup, seq, entity, event, key,
        body_json)``.  The WAL flush here is the acknowledgement point.
        """
        self._require_live()
        self.commit_seq += 1
        record = {
            "kind": "commit",
            "commit": self.commit_seq,
            "tick": tick,
            "writes": [list(w) for w in writes],
            "events": [list(e) for e in events],
        }
        lsn = self.wal.append(record)
        self.wal.flush()
        self.commits += 1
        self.last_commit_record = record
        if self.on_durable is not None:
            self.on_durable()
        return lsn, record

    def apply_commit(self, record: dict[str, Any]) -> bool:
        """Apply a commit record to the SQL projection, idempotently.

        Returns True if any effect landed (False == pure replay noise).
        """
        self._require_live()
        applied = False
        for entity, version, body in record["writes"]:
            rows = self.engine.execute(
                "SELECT row_version FROM entities WHERE entity = ?",
                (entity,),
            )
            if not rows:
                self.engine.execute(
                    "INSERT INTO entities (entity, body, row_version) "
                    "VALUES (?, ?, ?)",
                    (entity, body, version),
                )
            elif rows[0]["row_version"] >= version:
                continue  # already applied (replay) or superseded
            else:
                self.engine.execute(
                    "UPDATE entities SET body = ?, row_version = ? "
                    "WHERE entity = ?",
                    (body, version, entity),
                )
            applied = True
        for dedup, seq, entity, event, evkey, body in record["events"]:
            if self.engine.execute(
                "SELECT seq FROM outbox WHERE dedup = ?", (dedup,)
            ):
                continue  # idempotent: unique per entity + event + key
            self.engine.execute(
                "INSERT INTO outbox (dedup, seq, entity, event, evkey, "
                "body, dispatched) VALUES (?, ?, ?, ?, ?, ?, 0)",
                (dedup, seq, entity, event, evkey, body),
            )
            applied = True
        return applied

    # -- outbox plumbing (dispatcher side lives in outbox.py) ----------------------

    def undispatched(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Outbox rows not yet confirmed dispatched, in seq order."""
        self._require_live()
        sql = "SELECT * FROM outbox WHERE dispatched = 0 ORDER BY seq ASC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return self.engine.execute(sql)

    def outbox_pending(self) -> int:
        """Undispatched outbox rows (the drain-lag gauge)."""
        rows = self.engine.execute(
            "SELECT COUNT (*) FROM outbox WHERE dispatched = 0"
        )
        return rows[0]["count"]

    def mark_dispatched(self, seqs: list[int]) -> None:
        """Record sink hand-off for ``seqs``; lazily durable by design.

        The WAL record rides the normal group-commit cadence (no forced
        flush): a crash can lose the mark, which merely re-delivers —
        the sink's dedup keys make redelivery invisible.
        """
        self._require_live()
        if not seqs:
            return
        for seq in seqs:
            self.engine.execute(
                "UPDATE outbox SET dispatched = 1 WHERE seq = ?", (seq,)
            )
        self.wal.append({"kind": "dispatch", "seqs": list(seqs)})

    def reset_dispatched(self) -> int:
        """Mark every outbox row undispatched (failover replay); count."""
        self._require_live()
        self.engine.execute("UPDATE outbox SET dispatched = 0")
        total = self.engine.rowcount
        self.wal.append({"kind": "dispatch-reset"})
        self.wal.flush()
        return total

    # -- lease records (table logic lives in leases.py) ----------------------------

    def append_lease(self, record: dict[str, Any]) -> int:
        """Journal one lease operation (durable before it takes effect)."""
        self._require_live()
        record = {"kind": "lease", **record}
        lsn = self.wal.append(record)
        self.wal.flush()
        self.apply_lease(record)
        return lsn

    def apply_lease(self, record: dict[str, Any]) -> None:
        """Apply a lease record to the SQL projection, idempotently."""
        op = record["op"]
        key = record["key"]
        if op in ("acquire", "renew", "reclaim"):
            if self.engine.execute(
                "SELECT token FROM leases WHERE lease_key = ?", (key,)
            ):
                self.engine.execute(
                    "UPDATE leases SET owner = ?, token = ?, expires = ? "
                    "WHERE lease_key = ?",
                    (record["owner"], record["token"], record["expires"], key),
                )
            else:
                self.engine.execute(
                    "INSERT INTO leases (lease_key, owner, token, expires) "
                    "VALUES (?, ?, ?, ?)",
                    (key, record["owner"], record["token"], record["expires"]),
                )
            self.fence = max(self.fence, record["token"])
        elif op == "release":
            self.engine.execute(
                "DELETE FROM leases WHERE lease_key = ?", (key,)
            )
        else:  # pragma: no cover - writer controls the vocabulary
            raise DurableError(f"unknown lease op {op!r}")

    def next_fence(self) -> int:
        """The next (strictly monotonic) fencing token."""
        self.fence += 1
        return self.fence

    # -- crash / recovery ----------------------------------------------------------

    def crash(self) -> int:
        """Node death: the unflushed tail and the SQL projection die.

        Returns WAL records lost.  The store refuses all traffic until
        :meth:`recover` rebuilds the projection from the durable log.
        """
        lost = self.wal.crash()
        self.engine = MiniSQL()  # memory is gone
        self.crashed = True
        return lost

    def recover(self) -> dict[str, int]:
        """Replay the durable log into a fresh projection (strict reads).

        Raises :class:`~repro.errors.WalCorruptionError` — with the bad
        record's offset — rather than serving from a log it cannot
        fully trust.  Returns replay counters.
        """
        self.engine = MiniSQL()
        self._create_tables()
        self.commit_seq = 0
        self.outbox_seq = 0
        self.fence = 0
        replayed = applied = dispatch_marks = 0
        for rec in self.wal.records(strict=True):
            payload = rec.payload
            kind = payload.get("kind")
            replayed += 1
            if kind == "commit":
                self.crashed = False
                if self.apply_commit(payload):
                    applied += 1
                self.commit_seq = max(self.commit_seq, payload["commit"])
                for _dedup, seq, *_rest in payload["events"]:
                    self.outbox_seq = max(self.outbox_seq, seq)
            elif kind == "dispatch":
                self.crashed = False
                for seq in payload["seqs"]:
                    self.engine.execute(
                        "UPDATE outbox SET dispatched = 1 WHERE seq = ?",
                        (seq,),
                    )
                dispatch_marks += 1
            elif kind == "dispatch-reset":
                self.crashed = False
                self.engine.execute("UPDATE outbox SET dispatched = 0")
            elif kind == "lease":
                self.crashed = False
                self.apply_lease(payload)
        self.crashed = False
        self.recoveries += 1
        self.replayed_commits += applied
        return {
            "replayed": replayed,
            "applied_commits": applied,
            "dispatch_marks": dispatch_marks,
        }

    def ingest(self, records: list[tuple[int, dict[str, Any]]]) -> int:
        """Standby-side apply of a shipped WAL tail; returns applied LSN.

        Each record is re-journaled locally (the standby's own
        durability) and applied to its projection — idempotently, so
        re-shipped batches are harmless.
        """
        self._require_live()
        applied_lsn = self.wal.flushed_lsn
        for lsn, payload in records:
            if lsn <= applied_lsn:
                continue
            self.wal.append(dict(payload))
            kind = payload.get("kind")
            if kind == "commit":
                self.apply_commit(payload)
                self.commit_seq = max(self.commit_seq, payload["commit"])
                for _dedup, seq, *_rest in payload["events"]:
                    self.outbox_seq = max(self.outbox_seq, seq)
            elif kind == "dispatch":
                for seq in payload["seqs"]:
                    self.engine.execute(
                        "UPDATE outbox SET dispatched = 1 WHERE seq = ?",
                        (seq,),
                    )
            elif kind == "dispatch-reset":
                self.engine.execute("UPDATE outbox SET dispatched = 0")
            elif kind == "lease":
                self.apply_lease(payload)
            applied_lsn = lsn
        self.wal.flush()
        return applied_lsn

    def ship_since(self, lsn: int) -> list[tuple[int, dict[str, Any]]]:
        """The durable tail past ``lsn`` as ``(lsn, payload)`` pairs."""
        return [(r.lsn, r.payload) for r in self.wal.records(lsn + 1)]

    def _require_live(self) -> None:
        if self.crashed:
            raise DurableError(
                f"store {self.name!r} crashed; recover() before serving"
            )

    # -- observability -------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for the obs hub's ``register_stats`` row."""
        return {
            "commits": self.commits,
            "conflicts": self.conflicts,
            "flushed_lsn": self.wal.flushed_lsn,
            "fsyncs": self.wal.fsyncs,
            "outbox_pending": 0 if self.crashed else self.outbox_pending(),
            "entities": 0 if self.crashed else self.entity_count(),
            "fence": self.fence,
            "recoveries": self.recoveries,
        }

    def __repr__(self) -> str:  # pragma: no cover
        state = "crashed" if self.crashed else "live"
        return (
            f"DurableStore({self.name!r}, {state}, "
            f"commits={self.commits}, flushed={self.wal.flushed_lsn})"
        )
