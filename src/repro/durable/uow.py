"""The unit of work: read, stage, CAS-commit — with events in the same boat.

    "…the state of the game is updated by the execution of a game
    'script' … these scripts need transactional properties."

:class:`SqlUnitOfWork` is the transaction surface game logic sees.  It
reads entities (caching the ``row_version`` each read observed), stages
full-state writes and outbox events, and on :meth:`commit`:

1. **fence** — if the unit runs under a lease, validate the fencing
   token, so a zombie worker cannot commit work it no longer owns;
2. **CAS** — re-probe every touched entity's ``row_version`` against
   the version the unit read; any mismatch raises the typed
   :class:`~repro.errors.ConflictError` and nothing is written;
3. **WAL** — append one commit record carrying the writes *and* the
   events, and flush: this is the acknowledgement point;
4. **apply** — project the record into the SQL tables.

Because the events ride inside the commit record, a client can never
observe an event whose state change was rolled back — they are durable
together or not at all.  :func:`run_unit` wraps the whole thing in the
bounded optimistic-retry loop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.errors import ConflictError, DurableError, RetriesExhaustedError
from repro.durable.leases import Lease, LeaseTable
from repro.durable.store import DurableStore
from repro.obs.causal import TraceContext


@dataclass(frozen=True)
class CommitReceipt:
    """What a successful commit hands back: proof and coordinates."""

    lsn: int
    commit_seq: int
    writes: int
    events: int


class UnitOfWork(Protocol):
    """The transaction surface game logic codes against."""

    def get(self, entity: int) -> dict[str, Any] | None:
        """Read one entity's state (version-tracked for the CAS)."""
        ...

    def put(self, entity: int, state: dict[str, Any]) -> None:
        """Stage a full-state write for one entity."""
        ...

    def emit(self, event: str, entity: int = 0, key: str = "",
             **payload: Any) -> None:
        """Stage an outbox event, idempotent per entity + event + key."""
        ...

    def commit(self) -> CommitReceipt:
        """Fence, CAS-validate, journal, apply; or raise and write nothing."""
        ...


@dataclass
class _StagedEvent:
    event: str
    entity: int
    key: str
    payload: dict[str, Any] = field(default_factory=dict)


class SqlUnitOfWork:
    """One optimistic transaction over a :class:`DurableStore`."""

    def __init__(
        self,
        store: DurableStore,
        tick: int = 0,
        lease: Lease | None = None,
        leases: LeaseTable | None = None,
        ctx: TraceContext | None = None,
        tracker: Any = None,
    ):
        if lease is not None and leases is None:
            raise DurableError("a lease-guarded unit needs its LeaseTable")
        self.store = store
        self.tick = tick
        self.lease = lease
        self.leases = leases
        # Causal plumbing: `ctx` names the request this unit serves;
        # `tracker` (a RequestTracker, duck-typed) gets the "commit"
        # segment stamped and each staged event's dedup key bound, so
        # the gateway can complete the request when the event lands.
        self.ctx = ctx
        self.tracker = tracker
        self._read_versions: dict[int, int] = {}
        self._writes: dict[int, dict[str, Any]] = {}
        self._events: list[_StagedEvent] = []
        self._done = False

    # -- reads / staging -----------------------------------------------------------

    def get(self, entity: int) -> dict[str, Any] | None:
        """Read an entity; the observed version joins the CAS footprint."""
        state, version = self.store.read_entity(entity)
        self._read_versions.setdefault(entity, version)
        return state

    def put(self, entity: int, state: dict[str, Any]) -> None:
        """Stage a full-state write (read-before-write is enforced)."""
        self._require_open()
        if entity not in self._read_versions:
            # Blind write: observe the current version now so the CAS
            # still guards against a racing creator/updater.
            self._read_versions[entity] = self.store.entity_version(entity)
        self._writes[entity] = dict(state)

    def update(self, entity: int, **fields: Any) -> dict[str, Any]:
        """Read-modify-write convenience; returns the staged state."""
        state = self.get(entity)
        if state is None:
            state = {}
        state.update(fields)
        self.put(entity, state)
        return state

    def emit(
        self, event: str, entity: int = 0, key: str = "", **payload: Any
    ) -> None:
        """Stage an outbox event riding in this unit's commit record."""
        self._require_open()
        self._events.append(
            _StagedEvent(event=event, entity=entity, key=key, payload=payload)
        )

    # -- commit --------------------------------------------------------------------

    def commit(self) -> CommitReceipt:
        """The four-step commit; see the module docstring for the order."""
        self._require_open()
        tracer = self.store.obs.tracer
        if tracer.enabled:
            args: dict[str, Any] = {
                "tick": self.tick,
                "writes": len(self._writes),
                "events": len(self._events),
            }
            if self.ctx is not None:
                args["trace_id"] = self.ctx.trace_id
            with tracer.span("uow.commit", cat="durable", **args):
                return self._commit_impl()
        return self._commit_impl()

    def _commit_impl(self) -> CommitReceipt:
        # 1. Fence: a stale token means we were reclaimed — no writes.
        if self.lease is not None:
            self.leases.validate(self.lease, self.tick)
        # 2. CAS: every entity this unit read or wrote must still be at
        #    the version it observed, or somebody committed under us.
        for entity, expected in sorted(self._read_versions.items()):
            if entity not in self._writes:
                continue  # read-only footprint: no write to protect
            found = self.store.entity_version(entity)
            if found != expected:
                self.store.conflicts += 1
                raise ConflictError(entity, expected, found)
        self.store.hit_failpoint("pre-wal")
        # 3. Journal: one record, writes + events together; the WAL
        #    flush inside append_commit is the acknowledgement point.
        writes = [
            (entity, self._read_versions[entity] + 1, json.dumps(state, sort_keys=True))
            for entity, state in sorted(self._writes.items())
        ]
        events = []
        for staged in self._events:
            self.store.outbox_seq += 1
            dedup = f"{staged.entity}:{staged.event}:{staged.key}"
            events.append(
                (
                    dedup,
                    self.store.outbox_seq,
                    staged.entity,
                    staged.event,
                    staged.key,
                    json.dumps(staged.payload, sort_keys=True),
                )
            )
        lsn, record = self.store.append_commit(writes, events, self.tick)
        self.store.hit_failpoint("post-wal")
        if self.tracker is not None and self.ctx is not None:
            self.tracker.mark(self.ctx.trace_id, "commit", self.tick)
            for dedup, *_rest in events:
                self.tracker.bind_event(dedup, self.ctx.trace_id)
        # 4. Apply: project into the serving tables.  A crash between
        #    3 and here is invisible after recovery replay.
        self.store.apply_commit(record)
        self.store.hit_failpoint("post-apply")
        self._done = True
        return CommitReceipt(
            lsn=lsn,
            commit_seq=record["commit"],
            writes=len(writes),
            events=len(events),
        )

    def _require_open(self) -> None:
        if self._done:
            raise DurableError("unit of work already committed")


def run_unit(
    store: DurableStore,
    fn: Callable[[SqlUnitOfWork], Any],
    tick: int = 0,
    retries: int = 5,
    lease: Lease | None = None,
    leases: LeaseTable | None = None,
    ctx: TraceContext | None = None,
    tracker: Any = None,
) -> Any:
    """Run ``fn(uow)`` under bounded optimistic retry.

    Each :class:`~repro.errors.ConflictError` builds a *fresh* unit (so
    ``fn`` re-reads current versions) until ``retries`` attempts are
    spent, then :class:`~repro.errors.RetriesExhaustedError` reports
    the last collision.  Fencing errors are never retried — a fenced
    worker must re-acquire, not hammer.
    """
    if retries < 1:
        raise DurableError("retries must be >= 1")
    last: ConflictError | None = None
    for _attempt in range(retries):
        uow = SqlUnitOfWork(
            store, tick=tick, lease=lease, leases=leases, ctx=ctx, tracker=tracker
        )
        try:
            result = fn(uow)
            if not uow._done:
                uow.commit()
            return result
        except ConflictError as exc:
            last = exc
    raise RetriesExhaustedError(
        f"unit of work conflicted {retries} times", attempts=retries, last=last
    )
