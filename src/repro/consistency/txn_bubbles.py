"""Transaction bubbles: causality bubbles generalized to arbitrary
transactions.

The tutorial closes its causality-bubble discussion with: "More recent
research has attempted to generalize this idea to arbitrary transactions
[Gupta et al., ICDE 2009]".  This module implements that generalization.

Kinematic bubbles predict *spatial* reachability; transaction bubbles
predict *data* reachability: two queued transactions can conflict iff
their key footprints overlap (read/write or write/write on some key).
Connected components of the conflict graph are **transaction bubbles** —
batches that can execute on different shards with *no* cross-shard
coordination, because no conflict can cross a bubble boundary by
construction.  It is exactly the bubble idea with "within weapons range
of" replaced by "touches the same row as".

The partitioner also reports the *fusion* structure games care about:
hot keys (the auction house) fuse many transactions into one giant
bubble, recreating the single-server bottleneck — the same phenomenon as
a 200-ship fleet fight collapsing spatial bubbles.  The benchmark
``bench_e13_txn_bubbles.py`` measures both regimes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.consistency.transactions import Scheduler, TxnSpec, VersionedStore
from repro.errors import TransactionError


@dataclass(frozen=True)
class TxnFootprint:
    """The predicted key footprint of one queued transaction."""

    name: str
    reads: frozenset
    writes: frozenset

    @classmethod
    def of(cls, spec: TxnSpec) -> "TxnFootprint":
        """Extract the footprint from a :class:`TxnSpec`.

        In a real system footprints come from static analysis of the
        script or from the declarative query (one more payoff of
        declarative processing: footprints are *visible*).  Here the op
        list is the declaration.
        """
        reads = frozenset(op.key for op in spec.ops if op.kind in ("r", "u"))
        writes = frozenset(op.key for op in spec.ops if op.kind in ("u", "w"))
        return cls(spec.name, reads, writes)

    def conflicts_with(self, other: "TxnFootprint") -> bool:
        """RW / WR / WW overlap test."""
        return bool(
            (self.writes & other.writes)
            | (self.writes & other.reads)
            | (self.reads & other.writes)
        )


@dataclass
class TxnBubble:
    """One conflict-closed batch of transactions."""

    bubble_id: int
    members: tuple[str, ...]
    keys: frozenset

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class TxnPartition:
    """Result of one transaction-partitioning pass."""

    bubbles: list[TxnBubble]
    shard_of_txn: dict[str, int]
    shard_of_bubble: dict[int, int]

    @property
    def bubble_count(self) -> int:
        return len(self.bubbles)

    @property
    def largest_bubble(self) -> int:
        return max((b.size for b in self.bubbles), default=0)

    def shard_loads(self) -> dict[int, int]:
        """Shard -> number of transactions assigned."""
        loads: dict[int, int] = defaultdict(int)
        for shard in self.shard_of_txn.values():
            loads[shard] += 1
        return dict(loads)

    def cross_shard_conflicts(self, specs: Sequence[TxnSpec]) -> int:
        """Conflicting pairs split across shards (0 by construction)."""
        footprints = [TxnFootprint.of(s) for s in specs]
        crossings = 0
        for i, a in enumerate(footprints):
            for b in footprints[i + 1:]:
                if a.conflicts_with(b) and (
                    self.shard_of_txn[a.name] != self.shard_of_txn[b.name]
                ):
                    crossings += 1
        return crossings


class TransactionBubblePartitioner:
    """Partitions a queued transaction batch into conflict-closed bubbles.

    The conflict graph is built key-wise (each key links the transactions
    touching it), so the pass is O(total footprint size), not O(txns²).
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise TransactionError("shards must be positive")
        self.shards = shards

    def partition(self, specs: Sequence[TxnSpec]) -> TxnPartition:
        """One pass over a batch of queued transactions."""
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise TransactionError("transaction names must be unique")
        footprints = [TxnFootprint.of(s) for s in specs]
        parent = {f.name: f.name for f in footprints}

        def find(n: str) -> str:
            root = n
            while parent[root] != root:
                root = parent[root]
            while parent[n] != root:
                parent[n], n = root, parent[n]
            return root

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        # key-wise linking: writers fuse with every toucher of the key;
        # pure co-readers do not conflict and stay separate.
        readers: dict[Hashable, list[str]] = defaultdict(list)
        writers: dict[Hashable, list[str]] = defaultdict(list)
        for f in footprints:
            for key in f.reads:
                readers[key].append(f.name)
            for key in f.writes:
                writers[key].append(f.name)
        for key, writer_list in writers.items():
            anchor = writer_list[0]
            for other in writer_list[1:]:
                union(anchor, other)
            for reader in readers.get(key, ()):
                union(anchor, reader)

        groups: dict[str, list[TxnFootprint]] = defaultdict(list)
        for f in footprints:
            groups[find(f.name)].append(f)
        bubbles = []
        for i, members in enumerate(groups.values()):
            keys: set = set()
            for f in members:
                keys |= f.reads | f.writes
            bubbles.append(TxnBubble(
                i, tuple(sorted(f.name for f in members)), frozenset(keys)
            ))
        shard_of_bubble, shard_of_txn = self._pack(bubbles)
        return TxnPartition(bubbles, shard_of_txn, shard_of_bubble)

    def _pack(
        self, bubbles: list[TxnBubble]
    ) -> tuple[dict[int, int], dict[str, int]]:
        loads = [0] * self.shards
        shard_of_bubble: dict[int, int] = {}
        shard_of_txn: dict[str, int] = {}
        for bubble in sorted(bubbles, key=lambda b: -b.size):
            shard = min(range(self.shards), key=lambda s: loads[s])
            loads[shard] += bubble.size
            shard_of_bubble[bubble.bubble_id] = shard
            for name in bubble.members:
                shard_of_txn[name] = shard
        return shard_of_bubble, shard_of_txn


def run_sharded(
    specs: Sequence[TxnSpec],
    partition: TxnPartition,
    store_data: Mapping[Hashable, object],
    scheduler_factory,
    concurrency: int = 8,
) -> dict[str, object]:
    """Execute each shard's transactions independently and merge results.

    Because bubbles are conflict-closed, shards share no keys and the
    merged state equals a single-store execution — asserted by the tests.
    Returns ``{"state": merged_state, "steps": max_shard_steps,
    "total_steps": sum_shard_steps, "committed": n}`` where ``steps``
    models wall-clock (shards run in parallel) and ``total_steps`` models
    aggregate work.
    """
    by_shard: dict[int, list[TxnSpec]] = defaultdict(list)
    for spec in specs:
        by_shard[partition.shard_of_txn[spec.name]].append(spec)
    merged: dict[Hashable, object] = dict(store_data)
    max_steps = total_steps = committed = 0
    for shard, shard_specs in sorted(by_shard.items()):
        keys_needed: set = set()
        for spec in shard_specs:
            for op in spec.ops:
                keys_needed.add(op.key)
        shard_store = VersionedStore(
            {k: store_data.get(k) for k in keys_needed}
        )
        scheduler: Scheduler = scheduler_factory(shard_store)
        stats = scheduler.run(shard_specs, concurrency=concurrency)
        committed += stats.committed
        max_steps = max(max_steps, stats.steps)
        total_steps += stats.steps
        merged.update(shard_store.snapshot())
    return {
        "state": merged,
        "steps": max_steps,
        "total_steps": total_steps,
        "committed": committed,
    }
