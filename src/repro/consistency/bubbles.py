"""Causality bubbles: predictive, kinematics-driven dynamic partitioning.

    "EVE online runs a continuous differential equation that takes into
    account the acceleration of every space ship in a solar system.  This
    differential equation allows them to determine, for any given time
    interval, which ships can move within range of each other; this way
    they can dynamically partition the map into feasible units."

The implementation follows that description directly.  For each entity
with position ``p``, velocity ``v``, and acceleration bound ``a_max``,
its **reachable disc** over horizon ``T`` has radius

    R(T) = |v|·T + ½·a_max·T²

(the solution of the worst-case kinematic equation — the "differential
equation" integrated in closed form).  Two entities *can possibly*
interact within the horizon iff their discs approach within the
interaction range:

    dist(p_i, p_j) ≤ R_i + R_j + r_interact

Connected components of this possibility graph are the **causality
bubbles**: no information can cross a bubble boundary within T, so each
bubble is an independently-simulable unit.  Bubbles are then packed onto
shards (greedy bin-packing by load) — unlike static geography, *zero*
possible interaction ever crosses a shard boundary, at the price of
re-partitioning every horizon and of bubbles merging under crowding.

The possibility graph is built with the grid join from
:mod:`repro.spatial.joins`, so partitioning itself is O(n · density),
not O(n²).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import SpatialError
from repro.spatial.grid import UniformGrid
from repro.consistency.partition import PartitionMetrics, evaluate_assignment


@dataclass(frozen=True)
class KinematicState:
    """Snapshot of one entity's motion: position, velocity, accel bound."""

    x: float
    y: float
    vx: float = 0.0
    vy: float = 0.0
    a_max: float = 0.0

    def reach(self, horizon: float) -> float:
        """Worst-case travel distance within ``horizon`` seconds."""
        speed = math.hypot(self.vx, self.vy)
        return speed * horizon + 0.5 * self.a_max * horizon * horizon


@dataclass
class Bubble:
    """One causality bubble: a set of mutually-reachable entities."""

    bubble_id: int
    members: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class BubblePartition:
    """Result of one partitioning pass."""

    bubbles: list[Bubble]
    assignment: dict[int, int]  # entity -> shard
    bubble_of: dict[int, int]   # entity -> bubble id
    horizon: float
    possible_pairs: int

    @property
    def bubble_count(self) -> int:
        return len(self.bubbles)

    @property
    def largest_bubble(self) -> int:
        return max((b.size for b in self.bubbles), default=0)

    def evaluate(
        self, interacting_pairs: Iterable[tuple[int, int]]
    ) -> PartitionMetrics:
        """Score against pairs that actually interacted (oracle check).

        By construction every *possible* interaction is intra-bubble and
        bubbles never split across shards, so cross_partition_pairs is 0
        whenever the oracle pairs are within the kinematic envelope —
        the property tests assert exactly this.
        """
        return evaluate_assignment(self.assignment, interacting_pairs)


class CausalityBubblePartitioner:
    """Builds causality bubbles and packs them onto shards.

    Parameters
    ----------
    interaction_range:
        Gameplay interaction radius r (weapons range, collision radius).
    horizon:
        Re-partitioning interval T in seconds; bubbles are valid for T.
    shards:
        Number of servers to pack bubbles onto.
    """

    def __init__(self, interaction_range: float, horizon: float, shards: int):
        if interaction_range < 0:
            raise SpatialError("interaction_range must be non-negative")
        if horizon <= 0:
            raise SpatialError("horizon must be positive")
        if shards < 1:
            raise SpatialError("shards must be positive")
        self.interaction_range = interaction_range
        self.horizon = horizon
        self.shards = shards

    # -- the partitioning pass -----------------------------------------------------

    def partition(self, states: Mapping[int, KinematicState]) -> BubblePartition:
        """One full pass: possibility graph -> components -> shard packing."""
        if not states:
            return BubblePartition([], {}, {}, self.horizon, 0)
        reach = {eid: s.reach(self.horizon) for eid, s in states.items()}
        max_reach = max(reach.values())
        # Conservative pair radius: any pair beyond this cannot interact.
        pair_radius = 2 * max_reach + self.interaction_range
        positions = {eid: (s.x, s.y) for eid, s in states.items()}
        edges = self._possible_edges(positions, reach, pair_radius)
        components = _connected_components(set(states), edges)
        bubbles = [
            Bubble(i, frozenset(comp)) for i, comp in enumerate(components)
        ]
        assignment, bubble_of = self._pack(bubbles)
        return BubblePartition(
            bubbles=bubbles,
            assignment=assignment,
            bubble_of=bubble_of,
            horizon=self.horizon,
            possible_pairs=len(edges),
        )

    def _possible_edges(
        self,
        positions: dict[int, tuple[float, float]],
        reach: dict[int, float],
        pair_radius: float,
    ) -> list[tuple[int, int]]:
        grid = UniformGrid(max(pair_radius, 1e-9))
        for eid, (x, y) in positions.items():
            grid.insert(eid, x, y)
        edges = []
        for a, b in grid.pairs_within(pair_radius):
            ax, ay = positions[a]
            bx, by = positions[b]
            limit = reach[a] + reach[b] + self.interaction_range
            if math.hypot(ax - bx, ay - by) <= limit:
                edges.append((a, b))
        return edges

    def _pack(
        self, bubbles: list[Bubble]
    ) -> tuple[dict[int, int], dict[int, int]]:
        """Greedy largest-first bin packing of bubbles onto shards."""
        loads = [0] * self.shards
        assignment: dict[int, int] = {}
        bubble_of: dict[int, int] = {}
        for bubble in sorted(bubbles, key=lambda b: -b.size):
            shard = min(range(self.shards), key=lambda s: loads[s])
            loads[shard] += bubble.size
            for eid in bubble.members:
                assignment[eid] = shard
                bubble_of[eid] = bubble.bubble_id
        return assignment, bubble_of


def _connected_components(
    nodes: set[int], edges: Iterable[tuple[int, int]]
) -> list[set[int]]:
    """Union-find connected components."""
    parent = {n: n for n in nodes}

    def find(n: int) -> int:
        root = n
        while parent[root] != root:
            root = parent[root]
        while parent[n] != root:
            parent[n], n = root, parent[n]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for a, b in edges:
        union(a, b)
    groups: dict[int, set[int]] = defaultdict(set)
    for n in nodes:
        groups[find(n)].add(n)
    return list(groups.values())


@dataclass
class BubbleTimeline:
    """Repartitioning history over a simulation run (for E5's series)."""

    partitions: list[BubblePartition] = field(default_factory=list)

    def record(self, partition: BubblePartition) -> None:
        self.partitions.append(partition)

    def mean_bubble_count(self) -> float:
        """Average number of bubbles across passes."""
        if not self.partitions:
            return 0.0
        return sum(p.bubble_count for p in self.partitions) / len(self.partitions)

    def mean_largest_bubble(self) -> float:
        """Average size of the largest bubble across passes."""
        if not self.partitions:
            return 0.0
        return sum(p.largest_bubble for p in self.partitions) / len(self.partitions)
