"""Interest management: who needs to hear about whom.

An MMO server cannot send every state change to every client; it computes
each player's *area of interest* (AOI) and replicates only entities
inside it.  This is the read-side counterpart of causality bubbles: both
prune the O(n²) everyone-about-everyone matrix using space.

:class:`InterestManager` maintains AOI sets incrementally with hysteresis
(enter radius < exit radius, so entities straddling the boundary do not
flap), produces enter/exit events, and accounts the update traffic each
subscriber generates.  Experiment E12 sweeps the radius against bandwidth
and missed-interaction rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SpatialError
from repro.spatial.grid import UniformGrid

Positions = Mapping[int, tuple[float, float]]


@dataclass
class InterestEvent:
    """One AOI membership change."""

    kind: str  # "enter" | "exit"
    observer: int
    subject: int
    tick: int


@dataclass
class InterestStats:
    """Traffic accounting across the run."""

    enter_events: int = 0
    exit_events: int = 0
    updates_sent: int = 0

    @property
    def churn(self) -> int:
        """Total membership changes."""
        return self.enter_events + self.exit_events


class InterestManager:
    """Radius-based AOI with hysteresis.

    Parameters
    ----------
    radius:
        Enter radius: a subject closer than this joins the AOI.
    hysteresis:
        Exit radius = radius × (1 + hysteresis).  0 disables.
    """

    def __init__(self, radius: float, hysteresis: float = 0.15):
        if radius <= 0:
            raise SpatialError("radius must be positive")
        if hysteresis < 0:
            raise SpatialError("hysteresis must be non-negative")
        self.radius = radius
        self.exit_radius = radius * (1.0 + hysteresis)
        self._aoi: dict[int, set[int]] = {}
        self.stats = InterestStats()
        self._tick = 0

    # -- membership ------------------------------------------------------------------

    def aoi_of(self, observer: int) -> set[int]:
        """Current AOI set of an observer (copy)."""
        return set(self._aoi.get(observer, ()))

    def drop_observer(self, observer: int) -> None:
        """Forget an observer entirely (a disconnected subscriber).

        No exit events are produced — the subscriber is gone, nobody is
        listening — and the membership changes are not counted as churn.
        """
        self._aoi.pop(observer, None)

    def update(
        self,
        observers: Iterable[int],
        positions: Positions,
    ) -> list[InterestEvent]:
        """Recompute AOIs for a position snapshot; returns enter/exit events.

        Uses a shared grid over all subjects so the pass is
        O(n · density) rather than O(observers × subjects).
        """
        self._tick += 1
        grid = UniformGrid(max(self.exit_radius, 1e-9))
        for eid, (x, y) in positions.items():
            grid.insert(eid, x, y)
        events: list[InterestEvent] = []
        for observer in observers:
            if observer not in positions:
                continue
            ox, oy = positions[observer]
            current = self._aoi.setdefault(observer, set())
            near_enter = {
                s for s in grid.query_circle(ox, oy, self.radius) if s != observer
            }
            near_exit = {
                s
                for s in grid.query_circle(ox, oy, self.exit_radius)
                if s != observer
            }
            for subject in sorted(near_enter - current):
                current.add(subject)
                self.stats.enter_events += 1
                events.append(
                    InterestEvent("enter", observer, subject, self._tick)
                )
            for subject in sorted(current - near_exit):
                current.discard(subject)
                self.stats.exit_events += 1
                events.append(
                    InterestEvent("exit", observer, subject, self._tick)
                )
        return events

    def route_update(self, subject: int, observers: Iterable[int]) -> list[int]:
        """Observers whose AOI contains ``subject`` (who gets this update).

        Increments the traffic counter per recipient, modelling one state
        update fanned out to interested clients.
        """
        recipients = [
            obs for obs in observers if subject in self._aoi.get(obs, ())
        ]
        self.stats.updates_sent += len(recipients)
        return recipients

    def missed_interactions(
        self,
        positions: Positions,
        interacting_pairs: Iterable[tuple[int, int]],
    ) -> int:
        """Count interacting pairs invisible to each other's AOI.

        A pair (a, b) is *missed* when b is not in a's AOI or vice versa —
        the gameplay artefact of too small a radius (you get hit by an
        enemy your client never showed).
        """
        missed = 0
        for a, b in interacting_pairs:
            if b not in self._aoi.get(a, ()) or a not in self._aoi.get(b, ()):
                missed += 1
        return missed
