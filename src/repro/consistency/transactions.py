"""Concurrency control for game-world transactions.

    "games require that their data — which is often the state of the
    entire world — be in a consistent state. … traditional approaches
    such as locking transactions are often too slow for games."

This module makes that claim testable.  It provides a versioned key/value
world store, a transaction abstraction (an ordered list of read/write
operations whose write values are computed from prior reads), and three
classic schedulers:

* :class:`TwoPhaseLocking` — strict 2PL with waits-for deadlock detection;
* :class:`OptimisticCC` — backward-validation OCC (read snapshot, buffer
  writes, validate read set at commit);
* :class:`TimestampOrdering` — basic T/O with immediate aborts.

Concurrency is simulated deterministically: each in-flight transaction is
a task stepped round-robin (one operation = one simulated time unit), so
conflicts, blocking, and aborts arise exactly as they would across server
threads, but runs are reproducible.  All schedulers produce histories
that are *serializable*; the tests verify committed results against a
serial replay, and experiment E6 compares throughput/abort behaviour
under contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

from repro.consistency.lockmgr import LockManager, LockMode
from repro.errors import TransactionError

#: A write function computes the new value from (old value, reads-so-far).
WriteFn = Callable[[Any, dict[Hashable, Any]], Any]


@dataclass(frozen=True)
class Op:
    """One transaction operation.

    ``kind`` is ``"r"`` (read), ``"u"`` (read *for update* — semantically a
    read, but lock-based schedulers take the exclusive lock up front,
    avoiding the S→X upgrade deadlock storm), or ``"w"`` (write).  For
    writes, ``fn(old, reads)`` computes the stored value, where ``reads``
    maps keys to the values this transaction has read so far — enough to
    express transfers, increments, and compare-and-swap game logic.
    """

    kind: str
    key: Hashable
    fn: WriteFn | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("r", "u", "w"):
            raise TransactionError(f"bad op kind {self.kind!r}")
        if self.kind == "w" and self.fn is None:
            raise TransactionError("write op requires fn")


def read(key: Hashable) -> Op:
    """Convenience: a read operation."""
    return Op("r", key)


def read_for_update(key: Hashable) -> Op:
    """Convenience: a read that will be followed by a write to ``key``."""
    return Op("u", key)


def write(key: Hashable, fn: WriteFn) -> Op:
    """Convenience: a write operation."""
    return Op("w", key, fn)


class Increment:
    """Picklable add-``amount`` write function.

    A module-level class instead of a lambda so transaction ops survive
    the pipe crossing into parallel shard workers (see
    :mod:`repro.parallel.procpool`); custom :func:`write` functions must
    follow the same rule to be usable under ``parallel=``.
    """

    __slots__ = ("amount",)

    def __init__(self, amount: float = 1):
        self.amount = amount

    def __call__(self, old: Any, reads: Mapping[Hashable, Any]) -> Any:
        return (old or 0) + self.amount


def increment(key: Hashable, amount: float = 1) -> Op:
    """Write op adding ``amount`` to the key's current value."""
    return Op("w", key, Increment(amount))


@dataclass
class TxnSpec:
    """A transaction: a name and its ordered operations."""

    name: str
    ops: list[Op]


@dataclass
class CCStats:
    """Outcome of one scheduler run."""

    committed: int = 0
    aborted: int = 0
    deadlock_aborts: int = 0
    validation_aborts: int = 0
    ts_aborts: int = 0
    steps: int = 0
    blocked_steps: int = 0
    commit_order: list[str] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Commits per simulated step."""
        return self.committed / self.steps if self.steps else 0.0

    @property
    def abort_rate(self) -> float:
        """Aborts per attempted execution (retries count as attempts)."""
        attempts = self.committed + self.aborted
        return self.aborted / attempts if attempts else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean steps from first start to commit (approximated via totals)."""
        return self.steps / self.committed if self.committed else float("inf")


class VersionedStore:
    """Key/value store with per-key version counters."""

    def __init__(self, initial: dict[Hashable, Any] | None = None):
        self._data: dict[Hashable, Any] = dict(initial or {})
        self._version: dict[Hashable, int] = {k: 0 for k in self._data}

    def get(self, key: Hashable) -> Any:
        return self._data.get(key)

    def version(self, key: Hashable) -> int:
        return self._version.get(key, 0)

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._version[key] = self._version.get(key, 0) + 1

    def snapshot(self) -> dict[Hashable, Any]:
        """Copy of all data (tests compare against serial replays)."""
        return dict(self._data)

    def keys(self) -> list[Hashable]:
        return list(self._data)


def serial_replay(
    store_data: dict[Hashable, Any], specs: Iterable[TxnSpec]
) -> dict[Hashable, Any]:
    """Execute transactions one at a time; the correctness oracle."""
    data = dict(store_data)
    for spec in specs:
        reads: dict[Hashable, Any] = {}
        for op in spec.ops:
            if op.kind in ("r", "u"):
                reads[op.key] = data.get(op.key)
            else:
                data[op.key] = op.fn(data.get(op.key), dict(reads))
    return data


class _Task:
    """One in-flight transaction execution attempt."""

    __slots__ = (
        "txn_id", "spec", "pc", "reads", "read_versions", "write_buffer",
        "undo_log", "start_ts", "restarts", "done", "blocked_on",
        "sleep_steps",
    )

    def __init__(self, txn_id: int, spec: TxnSpec, start_ts: int):
        self.txn_id = txn_id
        self.spec = spec
        self.pc = 0
        self.reads: dict[Hashable, Any] = {}
        self.read_versions: dict[Hashable, int] = {}
        self.write_buffer: dict[Hashable, Any] = {}
        self.undo_log: list[tuple[Hashable, Any]] = []
        self.start_ts = start_ts
        self.restarts = 0
        self.done = False
        self.blocked_on: Hashable | None = None
        self.sleep_steps = 0

    def restart(self, new_ts: int) -> None:
        self.pc = 0
        self.reads.clear()
        self.read_versions.clear()
        self.write_buffer.clear()
        self.undo_log.clear()
        self.start_ts = new_ts
        self.restarts += 1
        self.blocked_on = None


class Scheduler:
    """Base class: round-robin stepping of concurrent transactions.

    Subclasses implement :meth:`_step_task`, returning True when the task
    consumed a simulated time unit of useful work.
    """

    name = "base"

    def __init__(self, store: VersionedStore, max_restarts: int = 1000):
        self.store = store
        self.max_restarts = max_restarts
        self.stats = CCStats()
        self._ts_counter = 0

    def run(
        self, specs: list[TxnSpec], concurrency: int = 8, max_steps: int = 10 ** 7
    ) -> CCStats:
        """Run all transactions with up to ``concurrency`` in flight."""
        pending = list(specs)
        active: list[_Task] = []
        next_id = 0
        while (pending or active) and self.stats.steps < max_steps:
            while pending and len(active) < concurrency:
                spec = pending.pop(0)
                task = _Task(next_id, spec, self._next_ts())
                next_id += 1
                active.append(task)
                self._on_start(task)
            progressed = False
            for task in list(active):
                self.stats.steps += 1
                if task.sleep_steps > 0:
                    task.sleep_steps -= 1
                    self.stats.blocked_steps += 1
                    # Backoff progress counts: a sleeping task will wake, so
                    # the scheduler is not stalled.
                    progressed = True
                    continue
                moved = self._step_task(task)
                if moved:
                    progressed = True
                else:
                    self.stats.blocked_steps += 1
                if task.done:
                    active.remove(task)
            if not progressed and active:
                # Everyone blocked: resolve a deadlock or error out.
                if not self._resolve_stall(active):
                    raise TransactionError(
                        f"{self.name}: scheduler stalled with no deadlock; "
                        f"{len(active)} tasks blocked"
                    )
        return self.stats

    # -- subclass hooks ------------------------------------------------------------

    def _on_start(self, task: _Task) -> None:
        """Called when a task first enters the active set."""

    def _step_task(self, task: _Task) -> bool:
        raise NotImplementedError

    def _resolve_stall(self, active: list[_Task]) -> bool:
        """Break a global stall; return True when progress is possible."""
        return False

    # -- shared helpers ----------------------------------------------------------------

    def _next_ts(self) -> int:
        self._ts_counter += 1
        return self._ts_counter

    def _abort_common(self, task: _Task, counter: str) -> None:
        self.stats.aborted += 1
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if task.restarts >= self.max_restarts:
            task.done = True
            raise TransactionError(
                f"{self.name}: transaction {task.spec.name} exceeded "
                f"{self.max_restarts} restarts"
            )
        task.restart(self._next_ts())
        # Exponential-ish backoff so repeated losers stop dueling forever
        # (the practical fix for timestamp-ordering livelock).
        task.sleep_steps = min(4 * task.restarts, 64)

    def _commit_common(self, task: _Task) -> None:
        task.done = True
        self.stats.committed += 1
        self.stats.commit_order.append(task.spec.name)


class TwoPhaseLocking(Scheduler):
    """Strict 2PL: lock on access, hold to commit, detect deadlocks."""

    name = "2pl"

    def __init__(self, store: VersionedStore, max_restarts: int = 1000):
        super().__init__(store, max_restarts)
        self.locks = LockManager()

    def _step_task(self, task: _Task) -> bool:
        if task.pc >= len(task.spec.ops):
            self.locks.release_all(task.txn_id)
            self._commit_common(task)
            return True
        op = task.spec.ops[task.pc]
        mode = LockMode.SHARED if op.kind == "r" else LockMode.EXCLUSIVE
        if not self.locks.try_acquire(task.txn_id, op.key, mode):
            task.blocked_on = op.key
            return False
        task.blocked_on = None
        if op.kind in ("r", "u"):
            task.reads[op.key] = self.store.get(op.key)
        else:
            old = self.store.get(op.key)
            task.undo_log.append((op.key, old))
            self.store.put(op.key, op.fn(old, dict(task.reads)))
        task.pc += 1
        return True

    def _resolve_stall(self, active: list[_Task]) -> bool:
        cycle = self.locks.find_deadlock()
        if not cycle:
            return False
        # Victim: youngest (highest start_ts) transaction in the cycle.
        by_id = {t.txn_id: t for t in active}
        victims = [by_id[t] for t in cycle if t in by_id]
        if not victims:
            return False
        victim = max(victims, key=lambda t: t.start_ts)
        self._abort_2pl(victim)
        return True

    def _abort_2pl(self, task: _Task) -> None:
        # Undo writes in reverse order, release locks, retry.
        for key, old in reversed(task.undo_log):
            self.store.put(key, old)
        self.locks.release_all(task.txn_id)
        self._abort_common(task, "deadlock_aborts")


class OptimisticCC(Scheduler):
    """Backward-validation OCC.

    Reads record the key's version; writes buffer locally.  At commit,
    the read set is revalidated against current versions — any change
    means a concurrent commit overlapped, and the transaction retries.
    """

    name = "occ"

    def _step_task(self, task: _Task) -> bool:
        ops = task.spec.ops
        if task.pc >= len(ops):
            return self._try_commit(task)
        op = ops[task.pc]
        if op.kind in ("r", "u"):
            if op.key in task.write_buffer:
                task.reads[op.key] = task.write_buffer[op.key]
            else:
                task.reads[op.key] = self.store.get(op.key)
                task.read_versions.setdefault(op.key, self.store.version(op.key))
        else:
            if op.key in task.write_buffer:
                old = task.write_buffer[op.key]
            else:
                old = self.store.get(op.key)
                # a blind write still depends on the old value via fn
                task.read_versions.setdefault(op.key, self.store.version(op.key))
            task.write_buffer[op.key] = op.fn(old, dict(task.reads))
        task.pc += 1
        return True

    def _try_commit(self, task: _Task) -> bool:
        for key, version in task.read_versions.items():
            if self.store.version(key) != version:
                self._abort_common(task, "validation_aborts")
                return True
        for key, value in task.write_buffer.items():
            self.store.put(key, value)
        self._commit_common(task)
        return True


class TimestampOrdering(Scheduler):
    """Basic timestamp ordering with immediate restart on violation.

    Each key tracks the largest read/write timestamps that touched it;
    an operation arriving "too late" aborts its transaction, which
    restarts with a fresh (larger) timestamp.  Writes apply immediately
    (no Thomas write rule), with undo on abort.
    """

    name = "ts"

    def __init__(self, store: VersionedStore, max_restarts: int = 1000):
        super().__init__(store, max_restarts)
        self._read_ts: dict[Hashable, int] = {}
        self._write_ts: dict[Hashable, int] = {}
        #: writer that produced the current value (for cascade-free undo we
        #: forbid reading uncommitted data: key -> txn holding dirty write)
        self._dirty: dict[Hashable, int] = {}

    def _step_task(self, task: _Task) -> bool:
        ops = task.spec.ops
        if task.pc >= len(ops):
            for key, holder in list(self._dirty.items()):
                if holder == task.txn_id:
                    del self._dirty[key]
            self._commit_common(task)
            return True
        op = ops[task.pc]
        ts = task.start_ts
        dirty_holder = self._dirty.get(op.key)
        if dirty_holder is not None and dirty_holder != task.txn_id:
            # Wait for the writer to finish (avoids cascading aborts).
            task.blocked_on = op.key
            return False
        task.blocked_on = None
        if op.kind in ("r", "u"):
            if ts < self._write_ts.get(op.key, 0):
                self._abort_ts(task)
                return True
            task.reads[op.key] = self.store.get(op.key)
            self._read_ts[op.key] = max(self._read_ts.get(op.key, 0), ts)
        else:
            if ts < self._read_ts.get(op.key, 0) or ts < self._write_ts.get(op.key, 0):
                self._abort_ts(task)
                return True
            old = self.store.get(op.key)
            task.undo_log.append((op.key, old))
            self.store.put(op.key, op.fn(old, dict(task.reads)))
            self._write_ts[op.key] = ts
            self._dirty[op.key] = task.txn_id
        task.pc += 1
        return True

    def _abort_ts(self, task: _Task) -> None:
        for key, old in reversed(task.undo_log):
            self.store.put(key, old)
        for key, holder in list(self._dirty.items()):
            if holder == task.txn_id:
                del self._dirty[key]
        self._abort_common(task, "ts_aborts")

    def _resolve_stall(self, active: list[_Task]) -> bool:
        # Dirty-wait cycles: abort the youngest blocked task.
        blocked = [t for t in active if t.blocked_on is not None]
        if not blocked:
            return False
        victim = max(blocked, key=lambda t: t.start_ts)
        self._abort_ts(victim)
        return True


class TwoPhaseParticipant:
    """Participant-side hooks for two-phase commit across shards.

    Layered on the same vocabulary the local schedulers use — ``Op``
    specs, a keyed store with ``get``/``put``, and a :class:`LockManager`
    — so a cluster shard exposes its world to distributed transactions
    without a second transaction engine.  The policy is **no-wait**:
    a lock conflict at prepare time refuses the transaction instead of
    queueing, which makes distributed deadlock impossible (at the price
    of aborts under contention, which the E14 bench measures).

    Protocol per transaction id:

    * :meth:`prepare` — lock every key, read current values, and return
      the read map (the participant's yes-vote payload); ``None`` means
      refused (locks released, nothing changed).
    * :meth:`commit` — apply coordinator-computed writes, release locks.
    * :meth:`abort` — release locks; the store is untouched by design
      because prepare buffers nothing and writes only land on commit.
    * :meth:`execute_local` — one-shot fast path for single-shard
      transactions: lock, run the ops serially, apply, release.
    """

    def __init__(self, store: Any, locks: LockManager | None = None):
        self.store = store
        self.locks = locks or LockManager()
        self._prepared: dict[int, list[Hashable]] = {}
        self.prepares = 0
        self.refusals = 0
        self.commits = 0
        self.aborts = 0

    def _lock_all(self, txn_id: int, keys: Iterable[tuple[str, Hashable]]) -> bool:
        """Acquire every (mode, key) lock or roll back; no waiting."""
        for kind, key in keys:
            mode = LockMode.SHARED if kind == "r" else LockMode.EXCLUSIVE
            if not self.locks.try_acquire(txn_id, key, mode):
                self.locks.release_all(txn_id)
                return False
        return True

    def prepare(
        self, txn_id: int, keyed_ops: Iterable[tuple[str, Hashable]]
    ) -> dict[Hashable, Any] | None:
        """Vote on ``[(kind, key), ...]``; returns reads or ``None`` (refused)."""
        self.prepares += 1
        ops = list(keyed_ops)
        if not self._lock_all(txn_id, ops):
            # A failed incremental prepare (entity migration can land two
            # key-slices of one txn here) refuses the whole transaction
            # at this participant; the coordinator will abort it anyway.
            self._prepared.pop(txn_id, None)
            self.refusals += 1
            return None
        self._prepared.setdefault(txn_id, []).extend(key for _kind, key in ops)
        return {key: self.store.get(key) for _kind, key in ops}

    def commit(self, txn_id: int, writes: Mapping[Hashable, Any]) -> None:
        """Apply the coordinator's computed writes and release locks."""
        prepared = self._prepared.pop(txn_id, None)
        if prepared is None:
            raise TransactionError(f"commit for unprepared txn {txn_id}")
        for key, value in writes.items():
            self.store.put(key, value)
        self.locks.release_all(txn_id)
        self.commits += 1

    def abort(self, txn_id: int) -> None:
        """Drop a prepared transaction; the store is left unchanged."""
        if self._prepared.pop(txn_id, None) is not None:
            self.locks.release_all(txn_id)
        self.aborts += 1

    def export_prepared(self) -> dict[int, list[tuple[str, Hashable]]]:
        """Snapshot in-flight prepared transactions for process handoff.

        A cluster worker stopping mid-run may hold yes-votes whose
        commit/abort decisions have not arrived yet.  The snapshot pairs
        every prepared key with the lock mode held (``"w"`` exclusive,
        ``"r"`` shared) so :meth:`import_prepared` can rebuild both the
        prepared table and the lock table in the adopting participant.
        """
        return {
            txn_id: [
                (
                    "w"
                    if self.locks.holds(txn_id, key, LockMode.EXCLUSIVE)
                    else "r",
                    key,
                )
                for key in keys
            ]
            for txn_id, keys in self._prepared.items()
        }

    def import_prepared(
        self, prepared: Mapping[int, Iterable[tuple[str, Hashable]]]
    ) -> None:
        """Adopt another participant's prepared state (see above).

        Replaces any local entry for the same transaction id — the
        exporter's view is a superset when both descend from one fork.
        Lock acquisition is re-entrant, so re-importing is idempotent.
        """
        for txn_id, keyed in prepared.items():
            keyed = list(keyed)
            if not self._lock_all(txn_id, keyed):
                raise TransactionError(
                    f"import of prepared txn {txn_id} lost its locks"
                )
            self._prepared[txn_id] = [key for _kind, key in keyed]

    def execute_local(self, txn_id: int, ops: Iterable[Op]) -> bool:
        """Run a wholly-local transaction atomically; False when refused."""
        ops = list(ops)
        self.prepares += 1
        if not self._lock_all(txn_id, [(op.kind, op.key) for op in ops]):
            self.refusals += 1
            return False
        reads: dict[Hashable, Any] = {}
        writes: dict[Hashable, Any] = {}
        for op in ops:
            current = writes.get(op.key, self.store.get(op.key))
            if op.kind in ("r", "u"):
                reads[op.key] = current
            else:
                writes[op.key] = op.fn(current, dict(reads))
        for key, value in writes.items():
            self.store.put(key, value)
        self.locks.release_all(txn_id)
        self.commits += 1
        return True

    def prepared_count(self) -> int:
        """Transactions currently holding prepare locks."""
        return len(self._prepared)

    def prepared_keys(self) -> set[Hashable]:
        """Keys locked by prepared transactions awaiting a decision.

        Cluster shards consult this before evicting an entity: handing
        off state under a prepared transaction would orphan the commit.
        """
        return {key for keys in self._prepared.values() for key in keys}


def compute_writes(
    ops: Iterable[Op], reads: Mapping[Hashable, Any]
) -> dict[Hashable, Any]:
    """Coordinator-side write computation for distributed commit.

    Replays the op list serially against the participants' merged read
    map — exactly :func:`serial_replay` semantics, so a distributed
    commit produces the same values a single-shard execution would.
    """
    data = dict(reads)
    seen: dict[Hashable, Any] = {}
    writes: dict[Hashable, Any] = {}
    for op in ops:
        if op.kind in ("r", "u"):
            seen[op.key] = data.get(op.key)
        else:
            value = op.fn(data.get(op.key), dict(seen))
            data[op.key] = value
            writes[op.key] = value
    return writes


SCHEDULERS: dict[str, type[Scheduler]] = {
    "2pl": TwoPhaseLocking,
    "occ": OptimisticCC,
    "ts": TimestampOrdering,
}


def make_scheduler(
    name: str, store: VersionedStore, max_restarts: int = 1000
) -> Scheduler:
    """Factory: scheduler by name (``2pl`` | ``occ`` | ``ts``)."""
    cls = SCHEDULERS.get(name)
    if cls is None:
        raise TransactionError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        )
    return cls(store, max_restarts)
