"""Static spatial partitioning — the baseline causality bubbles beat.

Classic MMO sharding: carve the map into fixed regions and pin each
region to a server.  Cheap and predictable, but (a) load skews when
players crowd one region, and (b) interactions that straddle a boundary
need cross-server coordination — the expensive case the tutorial's
"causality bubbles" minimise by partitioning along *actual* interaction
structure instead of geography.

:class:`StaticGridPartitioner` implements the fixed-grid scheme and the
metrics both partitioners share (:class:`PartitionMetrics`), so E5
compares like with like.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.errors import SpatialError
from repro.spatial.geometry import AABB

Positions = Mapping[int, tuple[float, float]]


@dataclass
class PartitionMetrics:
    """Shared quality metrics for a partitioning of entities into shards.

    ``cross_partition_pairs`` counts interacting pairs whose members live
    on different shards — each one is a distributed transaction in a real
    MMO.  ``max_load``/``imbalance`` capture hot-spotting.
    """

    shard_count: int
    loads: dict[Hashable, int]
    cross_partition_pairs: int
    internal_pairs: int

    @classmethod
    def from_loads(cls, loads: Mapping[Hashable, int]) -> "PartitionMetrics":
        """Metrics from shard loads alone (no interaction information).

        The cluster's observability layer reports load imbalance every
        tick, long before any interaction pairs are observed.
        """
        return cls(
            shard_count=len(loads),
            loads=dict(loads),
            cross_partition_pairs=0,
            internal_pairs=0,
        )

    @property
    def max_load(self) -> int:
        return max(self.loads.values()) if self.loads else 0

    @property
    def mean_load(self) -> float:
        return (
            sum(self.loads.values()) / len(self.loads) if self.loads else 0.0
        )

    @property
    def imbalance(self) -> float:
        """max/mean load ratio (1.0 = perfectly balanced)."""
        mean = self.mean_load
        return self.max_load / mean if mean else 0.0

    @property
    def cross_partition_fraction(self) -> float:
        """Fraction of interacting pairs that straddle shards."""
        total = self.cross_partition_pairs + self.internal_pairs
        return self.cross_partition_pairs / total if total else 0.0


def evaluate_assignment(
    assignment: Mapping[int, Hashable],
    interacting_pairs: Iterable[tuple[int, int]],
) -> PartitionMetrics:
    """Score any entity->shard assignment against an interaction set."""
    loads: dict[Hashable, int] = defaultdict(int)
    for shard in assignment.values():
        loads[shard] += 1
    cross = internal = 0
    for a, b in interacting_pairs:
        if assignment[a] == assignment[b]:
            internal += 1
        else:
            cross += 1
    return PartitionMetrics(
        shard_count=len(loads),
        loads=dict(loads),
        cross_partition_pairs=cross,
        internal_pairs=internal,
    )


class StaticGridPartitioner:
    """Fixed grid of regions, regions assigned round-robin to shards."""

    def __init__(self, bounds: AABB, cells_x: int, cells_y: int, shards: int):
        if cells_x < 1 or cells_y < 1:
            raise SpatialError("cell counts must be positive")
        if shards < 1:
            raise SpatialError("shard count must be positive")
        self.bounds = bounds
        self.cells_x = cells_x
        self.cells_y = cells_y
        self.shards = shards

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Grid cell containing a point (clamped to bounds)."""
        fx = (x - self.bounds.min_x) / self.bounds.width if self.bounds.width else 0
        fy = (y - self.bounds.min_y) / self.bounds.height if self.bounds.height else 0
        cx = min(self.cells_x - 1, max(0, math.floor(fx * self.cells_x)))
        cy = min(self.cells_y - 1, max(0, math.floor(fy * self.cells_y)))
        return (cx, cy)

    def shard_of(self, x: float, y: float) -> int:
        """Shard owning the point's cell."""
        cx, cy = self.cell_of(x, y)
        return (cy * self.cells_x + cx) % self.shards

    def assign(self, positions: Positions) -> dict[int, int]:
        """Entity -> shard assignment for a position snapshot."""
        return {
            eid: self.shard_of(x, y) for eid, (x, y) in positions.items()
        }

    def evaluate(
        self,
        positions: Positions,
        interacting_pairs: Iterable[tuple[int, int]],
    ) -> PartitionMetrics:
        """Assign and score in one call."""
        return evaluate_assignment(self.assign(positions), interacting_pairs)


class SingleServerPartitioner:
    """Degenerate baseline: everyone on one shard.

    Zero cross-partition traffic, unbounded load — the configuration the
    tutorial says EVE ran *within* a solar system, which is why their
    bubble partitioner exists.
    """

    def assign(self, positions: Positions) -> dict[int, int]:
        """Everything maps to shard 0."""
        return {eid: 0 for eid in positions}

    def evaluate(
        self,
        positions: Positions,
        interacting_pairs: Iterable[tuple[int, int]],
    ) -> PartitionMetrics:
        """Assign and score in one call."""
        return evaluate_assignment(self.assign(positions), interacting_pairs)
