"""Lock manager: shared/exclusive locks with a waits-for deadlock detector.

This is the storage-engine-style lock table behind the strict-2PL
scheduler in :mod:`repro.consistency.transactions`.  Keys are arbitrary
hashables (the transaction layer uses ``(component, entity, field)``-
shaped tuples or coarser grains).

Deadlock handling is detection, not prevention: a waits-for graph is
maintained incrementally and searched on block; the youngest transaction
in the cycle is chosen as victim, which is what most engines ship.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable, Iterable



class LockMode(Enum):
    """Shared (read) or exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held == LockMode.SHARED and requested == LockMode.SHARED


@dataclass
class _LockState:
    """Lock table entry for one key."""

    holders: dict[int, LockMode] = field(default_factory=dict)
    #: FIFO wait queue of (txn_id, mode)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Grant/queue/release S and X locks; detect deadlocks on demand."""

    def __init__(self) -> None:
        self._table: dict[Hashable, _LockState] = defaultdict(_LockState)
        self._held_by_txn: dict[int, set[Hashable]] = defaultdict(set)
        self.grants = 0
        self.blocks = 0
        self.deadlocks_found = 0

    # -- acquisition -----------------------------------------------------------

    def try_acquire(self, txn_id: int, key: Hashable, mode: LockMode) -> bool:
        """Attempt to acquire; returns False (and queues) when blocked.

        Re-entrant: a holder re-requesting its own mode succeeds; a holder
        upgrading S→X succeeds only when it is the sole holder.
        """
        state = self._table[key]
        current = state.holders.get(txn_id)
        if current is not None:
            if current == mode or current == LockMode.EXCLUSIVE:
                return True
            # upgrade request S -> X
            if mode == LockMode.EXCLUSIVE:
                others = [t for t in state.holders if t != txn_id]
                if not others and not state.waiters:
                    state.holders[txn_id] = LockMode.EXCLUSIVE
                    self.grants += 1
                    return True
                self._enqueue(state, txn_id, mode)
                return False
        # Fairness: cannot jump a non-empty queue unless fully compatible
        # with both holders and queued requests.
        if not state.waiters and all(
            _compatible(m, mode) for m in state.holders.values()
        ):
            state.holders[txn_id] = mode
            self._held_by_txn[txn_id].add(key)
            self.grants += 1
            return True
        self._enqueue(state, txn_id, mode)
        return False

    def _enqueue(self, state: _LockState, txn_id: int, mode: LockMode) -> None:
        if (txn_id, mode) not in state.waiters:
            state.waiters.append((txn_id, mode))
            self.blocks += 1

    # -- release --------------------------------------------------------------------

    def release_all(self, txn_id: int) -> list[Hashable]:
        """Release every lock held or requested by ``txn_id``.

        Returns keys whose queues may now admit waiters (the scheduler
        re-polls blocked transactions; grant happens on their next try).
        """
        touched: list[Hashable] = []
        for key in self._held_by_txn.pop(txn_id, set()):
            state = self._table[key]
            state.holders.pop(txn_id, None)
            touched.append(key)
        for key, state in self._table.items():
            before = len(state.waiters)
            state.waiters = [(t, m) for t, m in state.waiters if t != txn_id]
            if len(state.waiters) != before:
                touched.append(key)
        self._promote(touched)
        return touched

    def _promote(self, keys: Iterable[Hashable]) -> None:
        """Grant queued requests that are now compatible (FIFO order)."""
        for key in keys:
            state = self._table.get(key)
            if state is None:
                continue
            while state.waiters:
                txn_id, mode = state.waiters[0]
                holders_ok = all(
                    _compatible(m, mode)
                    for t, m in state.holders.items()
                    if t != txn_id
                )
                upgrade_ok = True
                if txn_id in state.holders and mode == LockMode.EXCLUSIVE:
                    upgrade_ok = all(t == txn_id for t in state.holders)
                if holders_ok and upgrade_ok and (not state.holders or holders_ok):
                    state.waiters.pop(0)
                    state.holders[txn_id] = mode
                    self._held_by_txn[txn_id].add(key)
                    self.grants += 1
                else:
                    break

    # -- introspection ---------------------------------------------------------------------

    def holds(self, txn_id: int, key: Hashable, mode: LockMode | None = None) -> bool:
        """Whether ``txn_id`` currently holds a (matching) lock on ``key``."""
        held = self._table.get(key, _LockState()).holders.get(txn_id)
        if held is None:
            return False
        if mode is None:
            return True
        return held == mode or held == LockMode.EXCLUSIVE

    def waits_for_graph(self) -> dict[int, set[int]]:
        """Edges txn -> txns it waits on (holders and earlier waiters)."""
        graph: dict[int, set[int]] = defaultdict(set)
        for state in self._table.values():
            for i, (waiter, mode) in enumerate(state.waiters):
                for holder, hmode in state.holders.items():
                    if holder != waiter and not _compatible(hmode, mode):
                        graph[waiter].add(holder)
                for earlier, emode in state.waiters[:i]:
                    if earlier != waiter and not (
                        _compatible(emode, mode) and _compatible(mode, emode)
                    ):
                        graph[waiter].add(earlier)
        return dict(graph)

    def find_deadlock(self) -> list[int] | None:
        """Find one cycle in the waits-for graph, or None.

        Returns the cycle as a txn-id list (first == last omitted).
        """
        graph = self.waits_for_graph()
        WHITE, GREY, BLACK = 0, 1, 2
        color = {t: WHITE for t in graph}
        stack: list[int] = []

        def dfs(node: int) -> list[int] | None:
            color[node] = GREY
            stack.append(node)
            for nxt in sorted(graph.get(node, ())):
                if color.get(nxt, WHITE) == GREY:
                    i = stack.index(nxt)
                    return stack[i:]
                if color.get(nxt, WHITE) == WHITE and nxt in graph:
                    found = dfs(nxt)
                    if found:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in sorted(graph):
            if color[node] == WHITE:
                cycle = dfs(node)
                if cycle:
                    self.deadlocks_found += 1
                    return cycle
        return None

    def lock_count(self, txn_id: int) -> int:
        """Number of keys ``txn_id`` holds locks on."""
        return len(self._held_by_txn.get(txn_id, ()))
