"""Tiered consistency levels for replicated game state.

    "Sometimes this means ensuring that world is consistent at only a
    very coarse level; animation or other uncontested activity in the
    game may be out of sync between computers but the persistent game
    state is the same."

State fields are classified into tiers; each tier replicates with a
different protocol and pays a different bandwidth/staleness price:

* ``STRONG``  — replicated synchronously every change (persistent game
  state: gold, inventory, hp). Replicas never diverge.
* ``COARSE``  — replicated at a fixed cadence and quantised (positions):
  replicas agree to within the quantum, and exactly at sync points.
* ``EVENTUAL`` — replicated best-effort when bandwidth is left over
  (cosmetics, animation phase): replicas converge when updates stop.

:class:`ReplicatedField` tracks a primary value and per-replica copies,
simulating the protocol per tick and accounting bytes; experiment E7
sweeps tiers against staleness and bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import NetError


class ConsistencyLevel(Enum):
    """Replication tier for one field."""

    STRONG = "strong"
    COARSE = "coarse"
    EVENTUAL = "eventual"


#: Simulated wire cost of one field update, in bytes (id + field + value).
UPDATE_BYTES = 12


@dataclass
class ReplicaStats:
    """Accounting for one replicated field across all replicas."""

    updates_sent: int = 0
    bytes_sent: int = 0
    max_staleness_ticks: int = 0
    divergence_samples: list[float] = field(default_factory=list)

    @property
    def mean_divergence(self) -> float:
        """Mean |primary - replica| over all samples (numeric fields)."""
        if not self.divergence_samples:
            return 0.0
        return sum(self.divergence_samples) / len(self.divergence_samples)


class ReplicatedField:
    """One field replicated from a primary to N replicas under a tier.

    Drive it with :meth:`write` (primary mutation) and :meth:`tick`
    (per-frame protocol step).  ``quantum`` rounds COARSE values so
    sub-quantum jitter never hits the wire; ``coarse_interval`` is the
    cadence in ticks; ``eventual_budget`` is the probability-free
    deterministic budget: one eventual update flushes every
    ``eventual_interval`` ticks only if the value changed.
    """

    def __init__(
        self,
        name: str,
        level: ConsistencyLevel,
        replicas: int,
        initial: Any = 0.0,
        quantum: float = 1.0,
        coarse_interval: int = 5,
        eventual_interval: int = 30,
    ):
        if replicas < 1:
            raise NetError("need at least one replica")
        self.name = name
        self.level = level
        self.primary: Any = initial
        self.replicas: list[Any] = [initial] * replicas
        self.quantum = quantum
        self.coarse_interval = coarse_interval
        self.eventual_interval = eventual_interval
        self.stats = ReplicaStats()
        self._dirty = False
        self._last_sync_tick = 0
        self._tick = 0

    # -- primary-side API -----------------------------------------------------------

    def write(self, value: Any) -> None:
        """Mutate the primary.

        STRONG fields propagate immediately (synchronous replication);
        other tiers mark dirty and wait for their cadence.
        """
        self.primary = value
        if self.level == ConsistencyLevel.STRONG:
            self._broadcast(value)
        else:
            self._dirty = True

    def tick(self) -> None:
        """Advance one frame of the replication protocol."""
        self._tick += 1
        if self.level == ConsistencyLevel.COARSE:
            if self._dirty and self._tick % self.coarse_interval == 0:
                self._broadcast(self._quantise(self.primary))
                self._dirty = False
        elif self.level == ConsistencyLevel.EVENTUAL:
            if self._dirty and self._tick % self.eventual_interval == 0:
                self._broadcast(self.primary)
                self._dirty = False
        if self._dirty:
            staleness = self._tick - self._last_sync_tick
            self.stats.max_staleness_ticks = max(
                self.stats.max_staleness_ticks, staleness
            )
        self._sample_divergence()

    def force_sync(self) -> None:
        """Flush regardless of tier (zone transitions, combat start)."""
        self._broadcast(self.primary)
        self._dirty = False

    # -- inspection ------------------------------------------------------------------

    def replica_value(self, index: int) -> Any:
        """Current value at one replica."""
        return self.replicas[index]

    @property
    def synchronized(self) -> bool:
        """Whether every replica currently equals the (quantised) primary."""
        target = (
            self._quantise(self.primary)
            if self.level == ConsistencyLevel.COARSE
            else self.primary
        )
        return all(r == target for r in self.replicas)

    # -- internals ------------------------------------------------------------------------

    def _broadcast(self, value: Any) -> None:
        for i in range(len(self.replicas)):
            self.replicas[i] = value
        self.stats.updates_sent += len(self.replicas)
        self.stats.bytes_sent += UPDATE_BYTES * len(self.replicas)
        self._last_sync_tick = self._tick

    def _quantise(self, value: Any) -> Any:
        if isinstance(value, (int, float)) and self.quantum > 0:
            return round(value / self.quantum) * self.quantum
        return value

    def _sample_divergence(self) -> None:
        if isinstance(self.primary, (int, float)):
            for replica in self.replicas:
                if isinstance(replica, (int, float)):
                    self.stats.divergence_samples.append(
                        abs(self.primary - replica)
                    )


class ConsistencyPolicy:
    """Maps field names to tiers; builds replicated fields accordingly.

    The designer-facing configuration: "hp is STRONG, position is COARSE,
    cape colour is EVENTUAL".
    """

    def __init__(self, default: ConsistencyLevel = ConsistencyLevel.STRONG):
        self.default = default
        self._levels: dict[str, ConsistencyLevel] = {}

    def set_level(self, field_name: str, level: ConsistencyLevel) -> None:
        """Assign a tier to a field name."""
        self._levels[field_name] = level

    def level_of(self, field_name: str) -> ConsistencyLevel:
        """Tier for a field (default when unset)."""
        return self._levels.get(field_name, self.default)

    def build_field(
        self, field_name: str, replicas: int, initial: Any = 0.0, **kwargs: Any
    ) -> ReplicatedField:
        """Construct a :class:`ReplicatedField` under this policy."""
        return ReplicatedField(
            field_name,
            self.level_of(field_name),
            replicas,
            initial=initial,
            **kwargs,
        )
