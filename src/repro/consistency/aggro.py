"""Aggro management: combat consistency without spatial fidelity.

    "'aggro management' is the technique that World of Warcraft uses to
    target opponents and process combat.  It assigns abstract roles to
    the participants, which allows the game to handle combat without
    exact spatial fidelity."

The insight: combat outcomes should depend on *threat*, an abstract
per-(monster, player) accumulator, not on exact positions that replicas
disagree about.  Replicas that see slightly different positions still
agree on targeting, because threat updates are totally ordered by the
server while position is only loosely synced.

:class:`ThreatTable` is the per-monster accumulator with the standard
WoW-like rules (damage → threat, healing → split threat, taunt → forced
top, 110%/130% overtake thresholds for melee/ranged).  :class:`AggroBrain`
assigns roles (TANK / HEALER / DPS) and drives target selection.
Experiment E7 shows that aggro-based targeting agrees across replicas
whose position replicas have drifted, while exact-nearest-target
disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.errors import ReproError


class Role(Enum):
    """Abstract combat roles."""

    TANK = "tank"
    HEALER = "healer"
    DPS = "dps"


#: Threat multiplier applied to damage, by role: tanks generate extra
#: threat so monsters stick to them (the designed behaviour).
ROLE_THREAT_MULTIPLIER = {
    Role.TANK: 3.0,
    Role.HEALER: 1.0,
    Role.DPS: 1.0,
}

#: A new attacker must exceed the current target's threat by this factor
#: to pull aggro (melee rule; ranged uses the higher one).
MELEE_OVERTAKE = 1.1
RANGED_OVERTAKE = 1.3


class ThreatTable:
    """Per-monster threat accumulator with sticky-target semantics."""

    def __init__(self, monster_id: int):
        self.monster_id = monster_id
        self._threat: dict[int, float] = {}
        self._current_target: int | None = None
        self._taunted_by: int | None = None
        self.events = 0

    # -- threat events ----------------------------------------------------------

    def add_damage(self, attacker: int, amount: float, role: Role = Role.DPS) -> None:
        """Damage dealt to the monster by ``attacker``."""
        if amount < 0:
            raise ReproError("damage must be non-negative")
        self.events += 1
        mult = ROLE_THREAT_MULTIPLIER[role]
        self._threat[attacker] = self._threat.get(attacker, 0.0) + amount * mult

    def add_healing(self, healer: int, amount: float, enemies_in_combat: int = 1) -> None:
        """Healing generates threat split across engaged monsters."""
        if amount < 0:
            raise ReproError("healing must be non-negative")
        self.events += 1
        split = max(1, enemies_in_combat)
        self._threat[healer] = self._threat.get(healer, 0.0) + 0.5 * amount / split

    def taunt(self, taunter: int) -> None:
        """Force-target ``taunter`` and raise them to top threat."""
        self.events += 1
        top = max(self._threat.values(), default=0.0)
        self._threat[taunter] = max(self._threat.get(taunter, 0.0), top) * 1.0 + 1.0
        self._taunted_by = taunter
        self._current_target = taunter

    def remove(self, participant: int) -> None:
        """Drop a dead/fled participant from the table."""
        self._threat.pop(participant, None)
        if self._current_target == participant:
            self._current_target = None
        if self._taunted_by == participant:
            self._taunted_by = None

    def wipe(self) -> None:
        """Combat reset."""
        self._threat.clear()
        self._current_target = None
        self._taunted_by = None

    # -- target selection --------------------------------------------------------------

    def threat_of(self, participant: int) -> float:
        """Current threat of one participant."""
        return self._threat.get(participant, 0.0)

    def ranking(self) -> list[tuple[int, float]]:
        """Participants by descending threat (ties: lower id first).

        The deterministic tie-break is the point: every replica computes
        the same ranking from the same threat events.
        """
        return sorted(self._threat.items(), key=lambda kv: (-kv[1], kv[0]))

    def select_target(self, ranged_attackers: Iterable[int] = ()) -> int | None:
        """Sticky target selection with overtake thresholds.

        The current target is kept unless a challenger exceeds its threat
        by the melee (110%) or ranged (130%) overtake factor.
        """
        ranking = self.ranking()
        if not ranking:
            self._current_target = None
            return None
        ranged = set(ranged_attackers)
        if self._current_target is None or self._current_target not in self._threat:
            self._current_target = ranking[0][0]
            return self._current_target
        current_threat = self._threat[self._current_target]
        for challenger, threat in ranking:
            if challenger == self._current_target:
                break
            needed = RANGED_OVERTAKE if challenger in ranged else MELEE_OVERTAKE
            if threat > current_threat * needed:
                self._current_target = challenger
                break
        return self._current_target

    def state_digest(self) -> tuple:
        """Hashable digest for cross-replica agreement checks."""
        return (self._current_target, tuple(self.ranking()))


@dataclass
class Participant:
    """One combatant from the aggro system's point of view."""

    entity_id: int
    role: Role
    ranged: bool = False


class AggroBrain:
    """Coordinates threat tables for a group of monsters in one encounter."""

    def __init__(self) -> None:
        self._tables: dict[int, ThreatTable] = {}
        self._participants: dict[int, Participant] = {}

    def join(self, participant: Participant) -> None:
        """Add a combatant to the encounter."""
        self._participants[participant.entity_id] = participant

    def engage(self, monster_id: int) -> ThreatTable:
        """Add (or fetch) a monster's threat table."""
        table = self._tables.get(monster_id)
        if table is None:
            table = ThreatTable(monster_id)
            self._tables[monster_id] = table
        return table

    def on_damage(self, monster_id: int, attacker: int, amount: float) -> None:
        """Record a damage event (role-aware threat)."""
        role = self._role_of(attacker)
        self.engage(monster_id).add_damage(attacker, amount, role)

    def on_heal(self, healer: int, amount: float) -> None:
        """Healing generates threat on *every* engaged monster."""
        n = len(self._tables)
        for table in self._tables.values():
            table.add_healing(healer, amount, enemies_in_combat=n)

    def target_of(self, monster_id: int) -> int | None:
        """Current target for a monster under the aggro rules."""
        table = self._tables.get(monster_id)
        if table is None:
            return None
        ranged = {
            p.entity_id for p in self._participants.values() if p.ranged
        }
        return table.select_target(ranged)

    def on_death(self, entity_id: int) -> None:
        """Remove a dead participant (or monster) from the encounter."""
        self._tables.pop(entity_id, None)
        self._participants.pop(entity_id, None)
        for table in self._tables.values():
            table.remove(entity_id)

    def digest(self) -> tuple:
        """Hashable digest of the whole encounter (replica comparison)."""
        return tuple(
            (mid, self._tables[mid].state_digest())
            for mid in sorted(self._tables)
        )

    def _role_of(self, entity_id: int) -> Role:
        participant = self._participants.get(entity_id)
        return participant.role if participant else Role.DPS
