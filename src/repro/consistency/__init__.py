"""MMO consistency substrate: transactions (2PL/OCC/TS), causality
bubbles, static partitioning, aggro management, consistency tiers, and
interest management."""

from repro.consistency.aggro import (
    AggroBrain,
    MELEE_OVERTAKE,
    Participant,
    RANGED_OVERTAKE,
    ROLE_THREAT_MULTIPLIER,
    Role,
    ThreatTable,
)
from repro.consistency.bubbles import (
    Bubble,
    BubblePartition,
    BubbleTimeline,
    CausalityBubblePartitioner,
    KinematicState,
)
from repro.consistency.interest import InterestEvent, InterestManager, InterestStats
from repro.consistency.levels import (
    ConsistencyLevel,
    ConsistencyPolicy,
    ReplicatedField,
    ReplicaStats,
    UPDATE_BYTES,
)
from repro.consistency.lockmgr import LockManager, LockMode
from repro.consistency.partition import (
    PartitionMetrics,
    SingleServerPartitioner,
    StaticGridPartitioner,
    evaluate_assignment,
)
from repro.consistency.txn_bubbles import (
    TransactionBubblePartitioner,
    TxnBubble,
    TxnFootprint,
    TxnPartition,
    run_sharded,
)
from repro.consistency.transactions import (
    CCStats,
    Op,
    OptimisticCC,
    SCHEDULERS,
    Scheduler,
    TimestampOrdering,
    TwoPhaseLocking,
    TxnSpec,
    VersionedStore,
    increment,
    make_scheduler,
    read,
    read_for_update,
    serial_replay,
    write,
)

__all__ = [
    "AggroBrain",
    "MELEE_OVERTAKE",
    "Participant",
    "RANGED_OVERTAKE",
    "ROLE_THREAT_MULTIPLIER",
    "Role",
    "ThreatTable",
    "Bubble",
    "BubblePartition",
    "BubbleTimeline",
    "CausalityBubblePartitioner",
    "KinematicState",
    "InterestEvent",
    "InterestManager",
    "InterestStats",
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "ReplicatedField",
    "ReplicaStats",
    "UPDATE_BYTES",
    "LockManager",
    "LockMode",
    "PartitionMetrics",
    "SingleServerPartitioner",
    "StaticGridPartitioner",
    "evaluate_assignment",
    "TransactionBubblePartitioner",
    "TxnBubble",
    "TxnFootprint",
    "TxnPartition",
    "run_sharded",
    "CCStats",
    "Op",
    "OptimisticCC",
    "SCHEDULERS",
    "Scheduler",
    "TimestampOrdering",
    "TwoPhaseLocking",
    "TxnSpec",
    "VersionedStore",
    "increment",
    "make_scheduler",
    "read",
    "read_for_update",
    "serial_replay",
    "write",
]
