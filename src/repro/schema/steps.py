"""Declarative schema-change steps — one migration language for E9 and E22.

A schema change is a list of small declarative steps (add, drop, rename,
retype, split, transform).  The same step objects drive three executors:

* :mod:`repro.persistence.migration` rewrites structured persistence
  tables offline or online (experiment E9);
* :class:`repro.schema.catalog.Catalog` migrates a *live* ticking
  :class:`~repro.core.world.GameWorld` with incremental backfill and
  dual-version reads (experiment E22);
* the cluster coordinator broadcasts steps to shards and the
  replication journal replays them on standbys — which is why steps
  (de)serialize to plain records via :func:`steps_to_records`.

Derivations are *string expressions* evaluated over the old row with no
builtins (``"hp * 2"``, ``"x - y"``): deterministic, side-effect free,
and safe to put on a wire or in a WAL.  :class:`TransformColumn` keeps
the E9-era python-callable escape hatch; it works locally but is
rejected wherever steps must serialize (cluster rollout, replication).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Callable, Iterable, Mapping

from repro.core.component import FIELD_TYPES, ComponentSchema, FieldDef
from repro.errors import SchemaError


@dataclass(frozen=True)
class AddColumn:
    """Add a column, filled from ``derive`` (an expression over the old
    row) or ``default``.  The ``(name, default)`` positional form is the
    E9 vocabulary and still works unchanged."""

    name: str
    default: Any = None
    type_name: str = "float"
    derive: str | None = None
    nullable: bool = False


@dataclass(frozen=True)
class DropColumn:
    """Remove a column."""

    name: str


@dataclass(frozen=True)
class RenameColumn:
    """Rename a column (type, default, and values are preserved)."""

    old: str
    new: str


@dataclass(frozen=True)
class RetypeColumn:
    """Change a column's type, casting every stored value."""

    name: str
    type_name: str


@dataclass(frozen=True)
class SplitColumn:
    """Derive several new columns from one source row, optionally
    dropping the source.  ``exprs[i]`` fills ``into[i]``; ``types[i]``
    (default ``float``) types the new column."""

    source: str
    into: tuple[str, ...]
    exprs: tuple[str, ...]
    types: tuple[str, ...] = ()
    drop_source: bool = True


@dataclass(frozen=True)
class TransformColumn:
    """Recompute a column from the whole row: ``fn(row) -> value``.

    The callable escape hatch — usable on a single world or an E9
    persistence table, but not serializable: cluster rollouts and
    replicated worlds reject it (see :func:`steps_to_records`).
    """

    name: str
    fn: Callable[[Mapping[str, Any]], Any]


Step = (
    AddColumn | DropColumn | RenameColumn | RetypeColumn | SplitColumn
    | TransformColumn
)


# ---------------------------------------------------------------------------
# Derivation expressions
# ---------------------------------------------------------------------------

_EXPR_CACHE: dict[str, Any] = {}


def eval_expr(expr: str, row: Mapping[str, Any]) -> Any:
    """Evaluate a derivation expression over one row.

    The expression sees the row's fields as names and nothing else — no
    builtins, no imports — so the same expression on the same row yields
    the same value on every shard and every replica.
    """
    code = _EXPR_CACHE.get(expr)
    if code is None:
        try:
            code = compile(expr, "<derive>", "eval")
        except SyntaxError as exc:
            raise SchemaError(f"bad derivation {expr!r}: {exc}") from None
        _EXPR_CACHE[expr] = code
    try:
        return eval(code, {"__builtins__": {}}, dict(row))  # noqa: S307
    except Exception as exc:
        raise SchemaError(f"derivation {expr!r} failed: {exc}") from None


def cast_value(value: Any, type_name: str, field: str) -> Any:
    """Cast one stored value for :class:`RetypeColumn`.

    int→float is exact for every int64; float→int requires an integral
    value (silent truncation would be data loss).
    """
    if value is None:
        return None
    try:
        if type_name == "float":
            if isinstance(value, bool):
                raise SchemaError(f"retype {field!r}: bool is not a float")
            return float(value)
        if type_name in ("int", "entity"):
            if isinstance(value, bool):
                raise SchemaError(f"retype {field!r}: bool is not an int")
            if isinstance(value, float):
                if not value.is_integer():
                    raise SchemaError(
                        f"retype {field!r}: {value!r} is not integral"
                    )
                return int(value)
            if isinstance(value, int):
                return value
            raise SchemaError(
                f"retype {field!r}: cannot cast {type(value).__name__} to int"
            )
        if type_name == "str":
            return str(value)
    except OverflowError as exc:
        raise SchemaError(f"retype {field!r}: {exc}") from None
    raise SchemaError(f"retype {field!r}: unsupported target {type_name!r}")


# ---------------------------------------------------------------------------
# Row-level application (shared by E9 rewrites and E22 backfill)
# ---------------------------------------------------------------------------


def apply_step_to_row(step: Step, row: dict[str, Any]) -> dict[str, Any]:
    """Apply one step to a row dict, in place; returns the row."""
    if isinstance(step, AddColumn):
        if step.derive is not None:
            row[step.name] = eval_expr(step.derive, row)
        else:
            row.setdefault(step.name, step.default)
    elif isinstance(step, DropColumn):
        row.pop(step.name, None)
    elif isinstance(step, RenameColumn):
        if step.old in row:
            row[step.new] = row.pop(step.old)
    elif isinstance(step, RetypeColumn):
        if step.name in row:
            row[step.name] = cast_value(row[step.name], step.type_name, step.name)
    elif isinstance(step, SplitColumn):
        source_row = dict(row)
        for target, expr in zip(step.into, step.exprs):
            row[target] = eval_expr(expr, source_row)
        if step.drop_source:
            row.pop(step.source, None)
    elif isinstance(step, TransformColumn):
        row[step.name] = step.fn(dict(row))
    else:
        raise SchemaError(f"unknown migration step {step!r}")
    return row


def apply_steps_to_row(
    steps: Iterable[Step], row: Mapping[str, Any]
) -> dict[str, Any]:
    """Run every step over one row, returning the new row."""
    out = dict(row)
    for step in steps:
        apply_step_to_row(step, out)
    return out


# ---------------------------------------------------------------------------
# Schema-level application (live ComponentSchema evolution)
# ---------------------------------------------------------------------------


def _split_types(step: SplitColumn) -> tuple[str, ...]:
    if step.types:
        if len(step.types) != len(step.into):
            raise SchemaError(
                f"split {step.source!r}: {len(step.into)} targets but "
                f"{len(step.types)} types"
            )
        return step.types
    return ("float",) * len(step.into)


def apply_steps_to_schema(
    schema: ComponentSchema, steps: Iterable[Step]
) -> ComponentSchema:
    """Compute the schema the steps produce (the next catalog version)."""
    fields: dict[str, FieldDef] = dict(schema.fields)

    def _add(name: str, type_name: str, default: Any, nullable: bool) -> None:
        if name in fields:
            raise SchemaError(
                f"component {schema.name!r}: field {name!r} already exists"
            )
        fdef = FieldDef(name, type_name, nullable=nullable)
        if default is not None:
            fdef = _dc_replace(fdef, default=fdef.validate(default))
        fields[name] = fdef

    for step in steps:
        if isinstance(step, AddColumn):
            if step.type_name not in FIELD_TYPES:
                raise SchemaError(
                    f"add {step.name!r}: unknown type {step.type_name!r}"
                )
            _add(step.name, step.type_name, step.default, step.nullable)
        elif isinstance(step, DropColumn):
            if step.name not in fields:
                raise SchemaError(
                    f"component {schema.name!r} has no field {step.name!r}"
                )
            del fields[step.name]
        elif isinstance(step, RenameColumn):
            if step.old not in fields:
                raise SchemaError(
                    f"component {schema.name!r} has no field {step.old!r}"
                )
            if step.new in fields:
                raise SchemaError(
                    f"component {schema.name!r}: field {step.new!r} already exists"
                )
            fdef = fields.pop(step.old)
            fields[step.new] = _dc_replace(fdef, name=step.new)
        elif isinstance(step, RetypeColumn):
            if step.name not in fields:
                raise SchemaError(
                    f"component {schema.name!r} has no field {step.name!r}"
                )
            old = fields[step.name]
            default = None
            if old.default is not None:
                default = cast_value(old.default, step.type_name, step.name)
            fields[step.name] = FieldDef(
                step.name, step.type_name, default=default,
                indexable=old.indexable, nullable=old.nullable,
            )
        elif isinstance(step, SplitColumn):
            if step.source not in fields:
                raise SchemaError(
                    f"component {schema.name!r} has no field {step.source!r}"
                )
            if len(step.into) != len(step.exprs):
                raise SchemaError(
                    f"split {step.source!r}: {len(step.into)} targets but "
                    f"{len(step.exprs)} expressions"
                )
            for target, type_name in zip(step.into, _split_types(step)):
                _add(target, type_name, None, False)
            if step.drop_source:
                del fields[step.source]
        elif isinstance(step, TransformColumn):
            if step.name not in fields:
                raise SchemaError(
                    f"component {schema.name!r} has no field {step.name!r}"
                )
        else:
            raise SchemaError(f"unknown migration step {step!r}")
    return ComponentSchema(schema.name, fields.values())


def affected_fields(steps: Iterable[Step]) -> frozenset[str]:
    """Fields whose *target-schema* values require backfill computation."""
    out: set[str] = set()
    for step in steps:
        if isinstance(step, AddColumn):
            out.add(step.name)
        elif isinstance(step, (RetypeColumn, TransformColumn)):
            out.add(step.name)
        elif isinstance(step, SplitColumn):
            out.update(step.into)
    return frozenset(out)


def removed_fields(steps: Iterable[Step]) -> frozenset[str]:
    """Old-schema fields that no longer exist under their old name."""
    out: set[str] = set()
    for step in steps:
        if isinstance(step, DropColumn):
            out.add(step.name)
        elif isinstance(step, RenameColumn):
            out.add(step.old)
        elif isinstance(step, SplitColumn) and step.drop_source:
            out.add(step.source)
    return frozenset(out)


# ---------------------------------------------------------------------------
# Serialization (cluster rollout messages, replication journal records)
# ---------------------------------------------------------------------------


def step_to_record(step: Step) -> dict[str, Any]:
    """One step as a plain record (raises for non-serializable steps)."""
    if isinstance(step, AddColumn):
        return {
            "op": "add", "name": step.name, "default": step.default,
            "type": step.type_name, "derive": step.derive,
            "nullable": step.nullable,
        }
    if isinstance(step, DropColumn):
        return {"op": "drop", "name": step.name}
    if isinstance(step, RenameColumn):
        return {"op": "rename", "old": step.old, "new": step.new}
    if isinstance(step, RetypeColumn):
        return {"op": "retype", "name": step.name, "type": step.type_name}
    if isinstance(step, SplitColumn):
        return {
            "op": "split", "source": step.source, "into": list(step.into),
            "exprs": list(step.exprs), "types": list(_split_types(step)),
            "drop_source": step.drop_source,
        }
    if isinstance(step, TransformColumn):
        raise SchemaError(
            f"TransformColumn({step.name!r}) carries a python callable and "
            "cannot be serialized; use a derivation expression instead"
        )
    raise SchemaError(f"unknown migration step {step!r}")


def step_from_record(record: Mapping[str, Any]) -> Step:
    """Inverse of :func:`step_to_record`."""
    op = record["op"]
    if op == "add":
        return AddColumn(
            record["name"], record.get("default"),
            record.get("type", "float"), record.get("derive"),
            record.get("nullable", False),
        )
    if op == "drop":
        return DropColumn(record["name"])
    if op == "rename":
        return RenameColumn(record["old"], record["new"])
    if op == "retype":
        return RetypeColumn(record["name"], record["type"])
    if op == "split":
        return SplitColumn(
            record["source"], tuple(record["into"]), tuple(record["exprs"]),
            tuple(record.get("types", ())), record.get("drop_source", True),
        )
    raise SchemaError(f"unknown step record {record!r}")


def steps_to_records(steps: Iterable[Step]) -> tuple[dict[str, Any], ...]:
    """Serialize a step list for the wire or the WAL."""
    return tuple(step_to_record(s) for s in steps)


def steps_from_records(records: Iterable[Mapping[str, Any]]) -> tuple[Step, ...]:
    """Deserialize a step list shipped by a coordinator or a journal."""
    return tuple(step_from_record(r) for r in records)


def schema_to_record(schema: ComponentSchema) -> dict[str, Any]:
    """A ComponentSchema as a plain record (for ``define`` journal entries)."""
    return {
        "name": schema.name,
        "fields": [
            {
                "name": f.name, "type": f.type_name, "default": f.default,
                "indexable": f.indexable, "nullable": f.nullable,
            }
            for f in schema.fields.values()
        ],
    }


def schema_from_record(record: Mapping[str, Any]) -> ComponentSchema:
    """Inverse of :func:`schema_to_record`."""
    return ComponentSchema(
        record["name"],
        [
            FieldDef(
                f["name"], f["type"], default=f.get("default"),
                indexable=f.get("indexable", True),
                nullable=f.get("nullable", False),
            )
            for f in record["fields"]
        ],
    )


def placeholder_for(fdef: FieldDef) -> Any:
    """Type-correct placeholder stored in a new column before backfill."""
    if fdef.nullable:
        return None
    return {
        "float": 0.0, "int": 0, "entity": 0, "str": "", "bool": False,
        "blob": b"",
    }[fdef.type_name]
