"""The Catalog — one façade for every schema operation on a live world.

``world.catalog`` is the single DDL entry point:

* :meth:`Catalog.define` registers a component type (replacing the old
  ``GameWorld.register_component``, now a deprecation shim);
* :meth:`Catalog.alter` applies a declarative step list to a component
  *while the world keeps ticking* — the table switches to the target
  schema immediately (dual-version reads), and :meth:`Catalog.pump`
  backfills N rows per tick until the alter commits;
* :meth:`Catalog.describe` reports versions and backfill progress.

Every component carries a numbered catalog version (1 at define, +1 per
committed alter).  The version is the coherence point for the rest of
the stack: cached plans key on it, the cluster coordinator stamps it
into handoff and 2PC payloads, and the replication journal replays
``alter`` records so replicas land on the same version with bit-identical
rows.  Catalog hooks (``fn(kind, record)``) observe ``define`` /
``alter_begin`` / ``alter_batch`` / ``alter_commit`` as plain records —
the journal subscribes one, which is all replication needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.component import ComponentSchema, schema as _make_schema
from repro.errors import SchemaError, UnknownComponentError
from repro.obs.metrics import Counter, StatsRow
from repro.schema.steps import (
    AddColumn,
    SplitColumn,
    Step,
    affected_fields,
    apply_steps_to_row,
    apply_steps_to_schema,
    removed_fields,
    schema_from_record,
    schema_to_record,
    steps_from_records,
    steps_to_records,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.table import ComponentTable
    from repro.core.world import GameWorld

#: Catalog hook signature: (kind, record) with kind in
#: "define" | "alter_begin" | "alter_batch" | "alter_commit".
CatalogHook = Callable[[str, Mapping[str, Any]], None]

#: Default backfill batch size: rows migrated per tick per active alter.
DEFAULT_BATCH_ROWS = 256


class CatalogStats(StatsRow):
    """Snapshot of the catalog's registry-backed counters."""

    COLUMNS = (
        "components", "catalog_version", "alters_started",
        "alters_committed", "rows_migrated", "active_alters",
    )


class _ActiveAlter:
    """One in-flight online alter (begin seen, commit pending)."""

    __slots__ = ("steps", "records", "to_version", "batch_rows",
                 "new_schema", "rows_migrated")

    def __init__(self, steps, records, to_version, batch_rows, new_schema):
        self.steps = steps
        self.records = records
        self.to_version = to_version
        self.batch_rows = batch_rows
        self.new_schema = new_schema
        self.rows_migrated = 0


class _Entry:
    """Catalog record for one component type."""

    __slots__ = ("name", "schema", "version", "history", "active",
                 "last_rows_migrated")

    def __init__(self, name: str, schema: ComponentSchema):
        self.name = name
        self.schema = schema
        self.version = 1
        #: from-version -> serialized steps of the alter that produced
        #: from-version + 1 (None for local alters with callables)
        self.history: dict[int, tuple | None] = {}
        self.active: _ActiveAlter | None = None
        self.last_rows_migrated = 0


class AlterHandle:
    """Progress handle returned by :meth:`Catalog.alter`."""

    def __init__(self, catalog: "Catalog", component: str, to_version: int):
        self._catalog = catalog
        self.component = component
        self.to_version = to_version

    @property
    def done(self) -> bool:
        """Whether the alter has committed."""
        return self._catalog.version_of(self.component) >= self.to_version

    @property
    def rows_migrated(self) -> int:
        """Rows backfilled so far (final count once committed)."""
        entry = self._catalog._entries[self.component]
        if entry.active is not None and entry.active.to_version == self.to_version:
            return entry.active.rows_migrated
        return entry.last_rows_migrated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.done else "backfilling"
        return (
            f"AlterHandle({self.component} -> v{self.to_version}, {state}, "
            f"rows={self.rows_migrated})"
        )


class Catalog:
    """Versioned schema catalog of one :class:`~repro.core.world.GameWorld`.

    Not constructed directly — every world exposes one as
    ``world.catalog``.
    """

    def __init__(self, world: "GameWorld"):
        self._world = world
        self._entries: dict[str, _Entry] = {}
        self._hooks: list[CatalogHook] = []
        #: bumped on every define, alter begin, and alter commit
        self.catalog_version = 0
        obs = getattr(world, "obs", None)
        registry = obs.metrics if obs is not None else None

        def cell(name: str) -> Counter:
            if registry is not None:
                return registry.counter(f"schema.{name}")
            return Counter(f"schema.{name}", {})

        self._c_defines = cell("defines")
        self._c_alters_started = cell("alters_started")
        self._c_alters_committed = cell("alters_committed")
        self._c_rows_migrated = cell("rows_migrated")

    # -- hooks ---------------------------------------------------------------

    def add_hook(self, hook: CatalogHook) -> None:
        """Register a DDL observer (the replication journal uses this)."""
        self._hooks.append(hook)

    def remove_hook(self, hook: CatalogHook) -> None:
        """Unregister a previously-added hook."""
        self._hooks.remove(hook)

    def _emit(self, kind: str, record: Mapping[str, Any]) -> None:
        for hook in self._hooks:
            hook(kind, record)

    # -- DDL surface ---------------------------------------------------------

    def define(
        self,
        schema_or_name: ComponentSchema | str,
        /,
        **field_specs: str | tuple,
    ) -> "ComponentTable":
        """Register a component type; returns its table (version 1).

        Accepts a prebuilt :class:`ComponentSchema`, or a name plus the
        concise keyword field specs of :func:`repro.core.component.schema`::

            world.catalog.define("Health", hp=("int", 100))
        """
        if isinstance(schema_or_name, str):
            comp_schema = _make_schema(schema_or_name, **field_specs)
        else:
            if field_specs:
                raise SchemaError(
                    "define() takes field specs only with a component name, "
                    "not with a prebuilt ComponentSchema"
                )
            comp_schema = schema_or_name
        table = self._world._install_table(comp_schema)
        self._entries[comp_schema.name] = _Entry(comp_schema.name, comp_schema)
        self.catalog_version += 1
        self._c_defines.value += 1
        self._emit(
            "define",
            {"c": comp_schema.name, "schema": schema_to_record(comp_schema)},
        )
        return table

    def alter(
        self,
        component: str,
        steps: Iterable[Step],
        *,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        online: bool = True,
    ) -> AlterHandle:
        """Apply declarative schema steps to a live component.

        The logical schema switches to the target immediately: reads see
        target-schema rows (computed on the fly for unmigrated rows) and
        writes land at the target schema, never blocking.  Backfill then
        proceeds ``batch_rows`` rows per tick through :meth:`pump` until
        the alter commits.  ``online=False`` migrates everything before
        returning — the stop-the-world reference mode.

        Indexes over affected fields are dropped (recreate them after
        commit); aggregates over affected fields must likewise be
        recreated.  Alters are rejected while a parallel executor is
        active.
        """
        entry = self._require(component)
        if entry.active is not None:
            raise SchemaError(
                f"component {component!r} already has an alter in progress "
                f"(to v{entry.active.to_version})"
            )
        if self._world.parallel_executor is not None:
            raise SchemaError(
                "cannot alter schemas while parallel execution is active; "
                "call disable_parallel() first"
            )
        steps = tuple(steps)
        if not steps:
            raise SchemaError("alter requires at least one step")
        for step in steps:
            if isinstance(step, AddColumn):
                self._check_backfillable(step.name, step, component)
            elif isinstance(step, SplitColumn):
                for target in step.into:
                    self._check_backfillable(target, None, component)
        new_schema = apply_steps_to_schema(entry.schema, steps)
        try:
            records = steps_to_records(steps)
        except SchemaError:
            if self._hooks:
                raise  # replicated worlds must be able to journal the steps
            records = None
        table = self._world.table(component)
        self._world.index_manager(component).on_schema_alter(
            removed_fields(steps), affected_fields(steps)
        )
        table.begin_alter(new_schema, steps)
        to_version = entry.version + 1
        entry.history[entry.version] = records
        entry.active = _ActiveAlter(
            steps, records, to_version, batch_rows, new_schema
        )
        self.catalog_version += 1
        self._c_alters_started.value += 1
        self._emit(
            "alter_begin",
            {
                "c": component,
                "steps": records,
                "to": to_version,
                "batch": batch_rows,
            },
        )
        handle = AlterHandle(self, component, to_version)
        if not online:
            self._pump_entry(entry, limit=None)
        return handle

    def describe(
        self, component: str | None = None
    ) -> dict[str, Any] | dict[str, dict[str, Any]]:
        """Schema versions, field types, and backfill progress.

        One component's record with ``component`` given, else a mapping
        for every defined component.
        """
        if component is None:
            return {name: self.describe(name) for name in sorted(self._entries)}
        entry = self._require(component)
        table = self._world.table(component)
        return {
            "component": component,
            "version": entry.version,
            "target_version": (
                entry.active.to_version if entry.active is not None else None
            ),
            "fields": {
                f.name: f.type_name for f in entry.schema.fields.values()
            } if entry.active is None else {
                f.name: f.type_name
                for f in entry.active.new_schema.fields.values()
            },
            "rows": len(table),
            "unmigrated": table.unmigrated_count,
        }

    # -- version queries -----------------------------------------------------

    def components(self) -> tuple[str, ...]:
        """All defined component names (declaration order)."""
        return tuple(self._entries)

    def version_of(self, component: str) -> int:
        """The component's committed catalog version."""
        return self._require(component).version

    def effective_version(self, component: str) -> int:
        """The version reads and writes see: the alter target while one
        is backfilling, the committed version otherwise."""
        entry = self._require(component)
        if entry.active is not None:
            return entry.active.to_version
        return entry.version

    def alter_in_progress(self, component: str) -> bool:
        """Whether the component is mid-backfill."""
        return self._require(component).active is not None

    # -- backfill pump (called once per world tick) --------------------------

    def pump(self) -> int:
        """Advance every active alter one batch; returns rows migrated.

        Wired into :meth:`GameWorld.tick`; the no-active-alter case is a
        single attribute check, so steady-state frames pay nothing.
        """
        total = 0
        for entry in self._entries.values():
            if entry.active is not None:
                total += self._pump_entry(entry, entry.active.batch_rows)
        return total

    def _pump_entry(self, entry: _Entry, limit: int | None) -> int:
        table = self._world.table(entry.name)
        tracer = self._world.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "schema.backfill", cat="schema", component=entry.name,
                to_version=entry.active.to_version,
            ) as sp:
                ids = table.migrate_batch(limit)
                sp.set(rows=len(ids), remaining=table.unmigrated_count)
        else:
            ids = table.migrate_batch(limit)
        if ids:
            entry.active.rows_migrated += len(ids)
            self._c_rows_migrated.value += len(ids)
            self._emit("alter_batch", {"c": entry.name, "ids": list(ids)})
        if table.unmigrated_count == 0:
            self._commit_entry(entry)
        return len(ids)

    def _commit_entry(self, entry: _Entry) -> None:
        table = self._world.table(entry.name)
        table.commit_alter()
        act = entry.active
        entry.version = act.to_version
        entry.schema = act.new_schema
        entry.last_rows_migrated = act.rows_migrated
        entry.active = None
        self.catalog_version += 1
        self._c_alters_committed.value += 1
        self._emit("alter_commit", {"c": entry.name, "to": entry.version})

    # -- cross-version payload upgrade (cluster handoffs) --------------------

    def upgrade_payload(
        self, component: str, row: Mapping[str, Any], from_version: int
    ) -> dict[str, Any]:
        """Replay recorded alter steps to lift a row shipped at an older
        catalog version up to this world's effective version."""
        entry = self._require(component)
        target = self.effective_version(component)
        out = dict(row)
        version = from_version
        while version < target:
            records = entry.history.get(version)
            if records is None:
                raise SchemaError(
                    f"component {component!r}: no recorded steps to upgrade "
                    f"a payload from v{version} to v{version + 1}"
                )
            out = apply_steps_to_row(steps_from_records(records), out)
            version += 1
        return out

    # -- replication / failover ---------------------------------------------

    def apply_journal_record(self, kind: str, record: Mapping[str, Any]) -> None:
        """Replay one journaled DDL record (replica and recovery path).

        ``alter_batch`` records carry the exact entity ids the primary
        migrated, so the replica's backfill order — and therefore every
        intermediate state — matches bit for bit.
        """
        if kind == "define":
            if record["c"] not in self._entries:
                self.define(schema_from_record(record["schema"]))
            return
        if kind == "alter_begin":
            if record["steps"] is None:
                raise SchemaError(
                    "journaled alter carries no serialized steps"
                )
            component = record["c"]
            entry = self._require(component)
            if entry.active is not None or entry.version >= record["to"]:
                return  # duplicate replay (e.g. WAL re-ship)
            self.alter(
                component,
                steps_from_records(record["steps"]),
                batch_rows=record.get("batch", DEFAULT_BATCH_ROWS),
            )
            return
        if kind == "alter_batch":
            component = record["c"]
            table = self._world.table(component)
            n = table.migrate_ids(record["ids"])
            entry = self._require(component)
            if entry.active is not None:
                entry.active.rows_migrated += n
            self._c_rows_migrated.value += n
            if table.unmigrated_count == 0 and entry.active is not None:
                self._commit_entry(entry)
            return
        if kind == "alter_commit":
            entry = self._require(record["c"])
            if entry.active is None:
                return  # already committed via the last batch record
            table = self._world.table(record["c"])
            if table.unmigrated_count:
                raise SchemaError(
                    f"journal commit for {record['c']!r} with "
                    f"{table.unmigrated_count} rows unmigrated"
                )
            self._commit_entry(entry)
            return
        raise SchemaError(f"unknown catalog journal record {kind!r}")

    def schema_state(self) -> dict[str, Any]:
        """Portable summary of versions + step history (failover catch-up)."""
        return {
            name: {
                "version": entry.version,
                "target": (
                    entry.active.to_version
                    if entry.active is not None
                    else None
                ),
                "history": {
                    str(v): None if recs is None else list(recs)
                    for v, recs in entry.history.items()
                },
            }
            for name, entry in self._entries.items()
        }

    def catch_up(self, state: Mapping[str, Any]) -> int:
        """Replay another catalog's committed *and in-flight* alters.

        Used at failover before restoring a replica snapshot onto a
        fresh world: the snapshot's rows already read at the donor's
        effective schema (dual-version reads), so the promoted world
        must reach that schema first.  The world is empty here, so each
        alter completes instantly.  Returns the number replayed.
        """
        replayed = 0
        for name in sorted(state):
            entry = self._entries.get(name)
            if entry is None:
                continue
            st = state[name]
            target = st["target"] if st["target"] is not None else st["version"]
            while entry.version < target:
                records = st["history"].get(str(entry.version))
                if records is None:
                    raise SchemaError(
                        f"component {name!r}: missing steps to catch up "
                        f"from v{entry.version}"
                    )
                self.alter(
                    name, steps_from_records(records), online=False
                )
                replayed += 1
        return replayed

    # -- stats ---------------------------------------------------------------

    def stats(self) -> CatalogStats:
        """Counter snapshot (a :class:`StatsRow`) for reports and benches."""
        return CatalogStats(
            components=len(self._entries),
            catalog_version=self.catalog_version,
            alters_started=self._c_alters_started.value,
            alters_committed=self._c_alters_committed.value,
            rows_migrated=self._c_rows_migrated.value,
            active_alters=sum(
                1 for e in self._entries.values() if e.active is not None
            ),
        )

    # -- internals -----------------------------------------------------------

    def _require(self, component: str) -> _Entry:
        try:
            return self._entries[component]
        except KeyError:
            raise UnknownComponentError(
                f"component {component!r} is not defined; "
                f"known: {sorted(self._entries)}"
            ) from None

    @staticmethod
    def _check_backfillable(name: str, step: Any, component: str) -> None:
        if step is not None and (
            step.derive is not None or step.default is not None or step.nullable
        ):
            return
        if step is None:
            return  # split targets always derive
        raise SchemaError(
            f"alter {component!r}: added field {name!r} needs a default, "
            "a derivation expression, or nullable=True to backfill "
            "existing rows"
        )
