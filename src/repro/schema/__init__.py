"""repro.schema — versioned component schemas with online migration.

The schema plane of the game database: declarative migration steps
(:mod:`repro.schema.steps`) shared with the persistence layer, and the
:class:`~repro.schema.catalog.Catalog` façade every world exposes as
``world.catalog`` — define, alter (with live incremental backfill and
dual-version reads), describe.
"""

from repro.schema.steps import (
    AddColumn,
    DropColumn,
    RenameColumn,
    RetypeColumn,
    SplitColumn,
    Step,
    TransformColumn,
    apply_steps_to_row,
    apply_steps_to_schema,
    steps_from_records,
    steps_to_records,
)
from repro.schema.catalog import (
    DEFAULT_BATCH_ROWS,
    AlterHandle,
    Catalog,
    CatalogStats,
)

__all__ = [
    "AddColumn",
    "DropColumn",
    "RenameColumn",
    "RetypeColumn",
    "SplitColumn",
    "TransformColumn",
    "Step",
    "apply_steps_to_row",
    "apply_steps_to_schema",
    "steps_from_records",
    "steps_to_records",
    "AlterHandle",
    "Catalog",
    "CatalogStats",
    "DEFAULT_BATCH_ROWS",
]
