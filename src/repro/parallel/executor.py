"""In-world parallel tick executor: thread-pooled state-effect phases.

Installed by :meth:`GameWorld.enable_parallel`, this replaces the serial
``SystemScheduler.run_tick`` walk with the phased plan from
:func:`repro.parallel.scheduler.build_tick_plan`:

* **singleton phases** run exactly like the serial scheduler (same spans,
  same frame-budget measurement) — these are the systems that mutate
  state directly or declared no spec;
* **concurrent phases** fan ``collect_effects`` out on a thread pool —
  every system reads the same frozen pre-phase state — then merge the
  returned :class:`~repro.parallel.effects.EffectBuffer`s on the main
  thread in registration order.  A system whose collection returns
  ``None`` (e.g. a lowered script aborting to the interpreter) runs
  directly *in its canonical slot* during the merge, so the fallback is
  invisible to determinism.

When tracing is enabled the phases execute serially (the tracer's span
stack is single-threaded) but still emit ``tick.phase`` and
``effect.merge`` spans, so traces show the phase structure the untraced
run would execute.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, TYPE_CHECKING

from repro.core.systems import BatchSystem
from repro.errors import QueryError
from repro.obs.metrics import StatsRow
from repro.obs.tracer import NOOP_SPAN
from repro.parallel.effects import EffectBuffer
from repro.parallel.scheduler import TickPlan, build_tick_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.systems import System
    from repro.core.world import GameWorld


class ParallelExecutorStats(StatsRow):
    """Snapshot of the executor's tick/phase/merge counters.

    ``chunks_executed`` counts per-worker row-range kernels run for
    elementwise batch systems; ``sync_ms`` is cumulative wall time spent
    in the canonical-order merge (where parallel phases synchronize);
    ``bytes_shipped`` is always 0 here (threads share memory) and exists
    so the two executors' stats rows stay column-compatible.
    """

    COLUMNS = (
        "workers",
        "phases",
        "parallel_phases",
        "ticks",
        "effects_merged",
        "fallbacks",
        "chunks_executed",
        "bytes_shipped",
        "sync_ms",
    )


class ParallelTickExecutor:
    """Phase-parallel tick execution for one :class:`GameWorld`.

    The tick plan is rebuilt automatically whenever the scheduler's
    system list changes.  ``workers`` bounds the thread pool; 1 is legal
    and degenerates to serial execution through the same phased code
    path (useful for debugging phase structure).
    """

    def __init__(self, world: "GameWorld", workers: int = 2):
        if workers < 1:
            raise QueryError("parallel executor needs at least 1 worker")
        self.world = world
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-par"
        )
        self._plan: TickPlan | None = None
        self._plan_key: tuple[int, ...] | None = None
        self.ticks = 0
        self.effects_merged = 0
        self.fallbacks = 0
        self.chunks_executed = 0
        self.chunk_min_rows = 256
        self._sync_s = 0.0
        self._stats_name = world.obs.register_stats("parallel", self.stats)

    # -- plan maintenance ----------------------------------------------------

    def plan(self) -> TickPlan:
        """The current phased tick plan (rebuilt on scheduler changes)."""
        systems = self.world.scheduler.systems()
        key = tuple(id(s) for s in systems)
        if self._plan is None or key != self._plan_key:
            self._plan = build_tick_plan(systems)
            self._plan_key = key
        return self._plan

    def explain(self) -> str:
        """Render the phase structure (the scheduler's EXPLAIN)."""
        return self.plan().describe()

    # -- execution -----------------------------------------------------------

    def run_tick(self, tick: int, dt: float) -> None:
        """Run one frame through the phased plan."""
        world = self.world
        plan = self.plan()
        tracer = world.obs.tracer
        traced = tracer.enabled
        budget = world.budget
        self.ticks += 1
        for index, phase in enumerate(plan.phases):
            due = [s for s in phase.systems if s.should_run(tick)]
            if not due:
                continue
            if len(due) == 1 and not (
                self.workers > 1 and self._chunkable(due[0])
            ):
                self._run_serial(due[0], dt, tracer if traced else None, budget)
            elif traced or self.workers == 1:
                self._run_phase_serial(due, dt, tracer if traced else None,
                                       budget, index)
            else:
                self._run_phase_parallel(due, dt, budget, index)

    def _run_serial(self, system: "System", dt: float, tracer, budget) -> None:
        with (
            tracer.span(system.name, cat="system") if tracer else NOOP_SPAN
        ):
            if budget is not None:
                with budget.measure(system.name):
                    system.run(self.world, dt)
            else:
                system.run(self.world, dt)

    # -- chunked elementwise kernels -----------------------------------------

    def _chunk_bounds(self, n: int) -> "list[tuple[int, int]] | None":
        """Split ``n`` rows into per-worker ranges, or None if not worth it."""
        k = min(self.workers, max(1, n // self.chunk_min_rows))
        if k <= 1:
            return None
        step = -(-n // k)
        return [(lo, min(lo + step, n)) for lo in range(0, n, step)]

    @staticmethod
    def _chunkable(system: "System") -> bool:
        return (
            isinstance(system, BatchSystem)
            and system.elementwise
            and system.spec is not None
        )

    @staticmethod
    def _run_chunk(system, world, ids, columns, lo, hi, dt):
        chunk_cols = {ref: col[lo:hi] for ref, col in columns.items()}
        return system.compute_chunk(world, ids[lo:hi], chunk_cols, dt)

    def _assemble_chunks(self, system, ids, parts) -> EffectBuffer:
        """Concatenate per-chunk write dicts into one full-range buffer."""
        buffer = EffectBuffer()
        refs = list(parts[0].keys()) if parts else []
        for part in parts[1:]:
            if set(part.keys()) != set(refs):
                raise QueryError(
                    f"BatchSystem {system.name!r}: elementwise chunks returned "
                    f"differing write sets"
                )
        for ref in refs:
            comp, _, fld = ref.partition(".")
            merged: list = []
            for part in parts:
                merged.extend(part[ref])
            buffer.write_column(comp, fld, ids, merged)
        return buffer

    def _collect_chunked_serial(
        self, system, dt: float, tracer, index: int
    ) -> "EffectBuffer | None":
        """Serial-shadow chunk execution with ``parallel.chunk`` spans."""
        world = self.world
        ids, columns = system.gather_columns(world)
        bounds = self._chunk_bounds(len(ids))
        if bounds is None:
            return None
        system.runs += 1
        parts = []
        for ci, (lo, hi) in enumerate(bounds):
            with (
                tracer.span("parallel.chunk", cat="parallel",
                            system=system.name, phase=index, chunk=ci,
                            rows=hi - lo)
                if tracer
                else NOOP_SPAN
            ):
                parts.append(self._run_chunk(system, world, ids, columns,
                                             lo, hi, dt))
        self.chunks_executed += len(bounds)
        return self._assemble_chunks(system, ids, parts)

    def _run_phase_serial(
        self, due: "list[System]", dt: float, tracer, budget, index: int
    ) -> None:
        # Tracing (or workers=1): same phase structure, one thread.  The
        # tracer's span stack is not thread-safe, so the traced run is the
        # serial shadow of what the untraced run does in parallel.
        with (
            tracer.span("tick.phase", cat="parallel", phase=index,
                        systems=len(due))
            if tracer
            else NOOP_SPAN
        ):
            collected = []
            for system in due:
                with (
                    tracer.span(system.name, cat="system")
                    if tracer
                    else NOOP_SPAN
                ):
                    if budget is not None:
                        with budget.measure(system.name):
                            collected.append(
                                (system, self._collect_one(system, dt, tracer,
                                                           index))
                            )
                    else:
                        collected.append(
                            (system, self._collect_one(system, dt, tracer,
                                                       index))
                        )
            with (
                tracer.span("effect.merge", cat="parallel", phase=index)
                if tracer
                else NOOP_SPAN
            ):
                self._merge(collected, dt)

    def _collect_one(self, system, dt: float, tracer, index: int):
        if self._chunkable(system):
            buffer = self._collect_chunked_serial(system, dt, tracer, index)
            if buffer is not None:
                return buffer
        return system.collect_effects(self.world, dt)

    def _run_phase_parallel(
        self, due: "list[System]", dt: float, budget, index: int
    ) -> None:
        world = self.world
        label = f"phase:{index}"
        if budget is not None:
            with budget.measure(label):
                collected = self._collect_parallel(due, dt)
                self._merge(collected, dt)
        else:
            collected = self._collect_parallel(due, dt)
            self._merge(collected, dt)
        metrics = world.obs.metrics
        if metrics is not None:
            for system, _buffer, worker in collected:
                metrics.counter("parallel.worker.tasks", worker=worker).inc()

    def _collect_parallel(self, due: "list[System]", dt: float):
        world = self.world

        def collect(system):
            buffer = system.collect_effects(world, dt)
            worker = threading.current_thread().name.rpartition("_")[2]
            return buffer, worker

        # Submit everything first — chunk kernels for eligible elementwise
        # batch systems, whole-system collects for the rest — then gather.
        entries = []
        for system in due:
            if self._chunkable(system):
                ids, columns = system.gather_columns(world)
                bounds = self._chunk_bounds(len(ids))
                if bounds is not None:
                    system.runs += 1
                    futures = [
                        self._pool.submit(self._run_chunk, system, world,
                                          ids, columns, lo, hi, dt)
                        for lo, hi in bounds
                    ]
                    entries.append((system, "chunks", (ids, futures)))
                    continue
            entries.append((system, "collect", self._pool.submit(collect,
                                                                 system)))
        collected = []
        for system, kind, payload in entries:
            if kind == "chunks":
                ids, futures = payload
                parts = [f.result() for f in futures]
                self.chunks_executed += len(parts)
                collected.append(
                    (system, self._assemble_chunks(system, ids, parts),
                     "chunked")
                )
            else:
                buffer, worker = payload.result()
                collected.append((system, buffer, worker))
        return collected

    def _merge(self, collected, dt: float) -> None:
        # Canonical order = registration order: apply each buffer (or run
        # the fallen-back system directly) in the exact slot serial
        # execution would have used.
        world = self.world
        started = perf_counter()
        for entry in collected:
            system, buffer = entry[0], entry[1]
            if buffer is None:
                self.fallbacks += 1
                system.run(world, dt)
            else:
                self.effects_merged += 1
                buffer.apply(world)
        self._sync_s += perf_counter() - started

    # -- lifecycle / stats ---------------------------------------------------

    def stats(self) -> ParallelExecutorStats:
        """Counter snapshot (a :class:`StatsRow`)."""
        plan = self.plan()
        return ParallelExecutorStats(
            workers=self.workers,
            phases=len(plan.phases),
            parallel_phases=sum(1 for p in plan.phases if p.concurrent),
            ticks=self.ticks,
            effects_merged=self.effects_merged,
            fallbacks=self.fallbacks,
            chunks_executed=self.chunks_executed,
            bytes_shipped=0,
            sync_ms=round(self._sync_s * 1000.0, 3),
        )

    def close(self) -> None:
        """Shut the thread pool down and deregister stats."""
        self._pool.shutdown(wait=True)
        self.world.obs.unregister_stats(self._stats_name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ParallelTickExecutor(workers={self.workers}, ticks={self.ticks})"
