"""In-world parallel tick executor: thread-pooled state-effect phases.

Installed by :meth:`GameWorld.enable_parallel`, this replaces the serial
``SystemScheduler.run_tick`` walk with the phased plan from
:func:`repro.parallel.scheduler.build_tick_plan`:

* **singleton phases** run exactly like the serial scheduler (same spans,
  same frame-budget measurement) — these are the systems that mutate
  state directly or declared no spec;
* **concurrent phases** fan ``collect_effects`` out on a thread pool —
  every system reads the same frozen pre-phase state — then merge the
  returned :class:`~repro.parallel.effects.EffectBuffer`s on the main
  thread in registration order.  A system whose collection returns
  ``None`` (e.g. a lowered script aborting to the interpreter) runs
  directly *in its canonical slot* during the merge, so the fallback is
  invisible to determinism.

When tracing is enabled the phases execute serially (the tracer's span
stack is single-threaded) but still emit ``tick.phase`` and
``effect.merge`` spans, so traces show the phase structure the untraced
run would execute.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, TYPE_CHECKING

from repro.errors import QueryError
from repro.obs.metrics import StatsRow
from repro.obs.tracer import NOOP_SPAN
from repro.parallel.scheduler import TickPlan, build_tick_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.systems import System
    from repro.core.world import GameWorld


class ParallelExecutorStats(StatsRow):
    """Snapshot of the executor's tick/phase/merge counters."""

    COLUMNS = (
        "workers",
        "phases",
        "parallel_phases",
        "ticks",
        "effects_merged",
        "fallbacks",
    )


class ParallelTickExecutor:
    """Phase-parallel tick execution for one :class:`GameWorld`.

    The tick plan is rebuilt automatically whenever the scheduler's
    system list changes.  ``workers`` bounds the thread pool; 1 is legal
    and degenerates to serial execution through the same phased code
    path (useful for debugging phase structure).
    """

    def __init__(self, world: "GameWorld", workers: int = 2):
        if workers < 1:
            raise QueryError("parallel executor needs at least 1 worker")
        self.world = world
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-par"
        )
        self._plan: TickPlan | None = None
        self._plan_key: tuple[int, ...] | None = None
        self.ticks = 0
        self.effects_merged = 0
        self.fallbacks = 0
        self._stats_name = world.obs.register_stats("parallel", self.stats)

    # -- plan maintenance ----------------------------------------------------

    def plan(self) -> TickPlan:
        """The current phased tick plan (rebuilt on scheduler changes)."""
        systems = self.world.scheduler.systems()
        key = tuple(id(s) for s in systems)
        if self._plan is None or key != self._plan_key:
            self._plan = build_tick_plan(systems)
            self._plan_key = key
        return self._plan

    def explain(self) -> str:
        """Render the phase structure (the scheduler's EXPLAIN)."""
        return self.plan().describe()

    # -- execution -----------------------------------------------------------

    def run_tick(self, tick: int, dt: float) -> None:
        """Run one frame through the phased plan."""
        world = self.world
        plan = self.plan()
        tracer = world.obs.tracer
        traced = tracer.enabled
        budget = world.budget
        self.ticks += 1
        for index, phase in enumerate(plan.phases):
            due = [s for s in phase.systems if s.should_run(tick)]
            if not due:
                continue
            if len(due) == 1:
                self._run_serial(due[0], dt, tracer if traced else None, budget)
            elif traced or self.workers == 1:
                self._run_phase_serial(due, dt, tracer if traced else None,
                                       budget, index)
            else:
                self._run_phase_parallel(due, dt, budget, index)

    def _run_serial(self, system: "System", dt: float, tracer, budget) -> None:
        with (
            tracer.span(system.name, cat="system") if tracer else NOOP_SPAN
        ):
            if budget is not None:
                with budget.measure(system.name):
                    system.run(self.world, dt)
            else:
                system.run(self.world, dt)

    def _run_phase_serial(
        self, due: "list[System]", dt: float, tracer, budget, index: int
    ) -> None:
        # Tracing (or workers=1): same phase structure, one thread.  The
        # tracer's span stack is not thread-safe, so the traced run is the
        # serial shadow of what the untraced run does in parallel.
        with (
            tracer.span("tick.phase", cat="parallel", phase=index,
                        systems=len(due))
            if tracer
            else NOOP_SPAN
        ):
            collected = []
            for system in due:
                with (
                    tracer.span(system.name, cat="system")
                    if tracer
                    else NOOP_SPAN
                ):
                    if budget is not None:
                        with budget.measure(system.name):
                            collected.append(
                                (system, system.collect_effects(self.world, dt))
                            )
                    else:
                        collected.append(
                            (system, system.collect_effects(self.world, dt))
                        )
            with (
                tracer.span("effect.merge", cat="parallel", phase=index)
                if tracer
                else NOOP_SPAN
            ):
                self._merge(collected, dt)

    def _run_phase_parallel(
        self, due: "list[System]", dt: float, budget, index: int
    ) -> None:
        world = self.world
        label = f"phase:{index}"
        if budget is not None:
            with budget.measure(label):
                collected = self._collect_parallel(due, dt)
                self._merge(collected, dt)
        else:
            collected = self._collect_parallel(due, dt)
            self._merge(collected, dt)
        metrics = world.obs.metrics
        if metrics is not None:
            for system, _buffer, worker in collected:
                metrics.counter("parallel.worker.tasks", worker=worker).inc()

    def _collect_parallel(self, due: "list[System]", dt: float):
        world = self.world

        def collect(system):
            buffer = system.collect_effects(world, dt)
            worker = threading.current_thread().name.rpartition("_")[2]
            return system, buffer, worker

        futures = [self._pool.submit(collect, system) for system in due]
        return [f.result() for f in futures]

    def _merge(self, collected, dt: float) -> None:
        # Canonical order = registration order: apply each buffer (or run
        # the fallen-back system directly) in the exact slot serial
        # execution would have used.
        world = self.world
        for entry in collected:
            system, buffer = entry[0], entry[1]
            if buffer is None:
                self.fallbacks += 1
                system.run(world, dt)
            else:
                self.effects_merged += 1
                buffer.apply(world)

    # -- lifecycle / stats ---------------------------------------------------

    def stats(self) -> ParallelExecutorStats:
        """Counter snapshot (a :class:`StatsRow`)."""
        plan = self.plan()
        return ParallelExecutorStats(
            workers=self.workers,
            phases=len(plan.phases),
            parallel_phases=sum(1 for p in plan.phases if p.concurrent),
            ticks=self.ticks,
            effects_merged=self.effects_merged,
            fallbacks=self.fallbacks,
        )

    def close(self) -> None:
        """Shut the thread pool down and deregister stats."""
        self._pool.shutdown(wait=True)
        self.world.obs.unregister_stats(self._stats_name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ParallelTickExecutor(workers={self.workers}, ticks={self.ticks})"
