"""Effect buffers — the write half of the state-effect pattern.

Sowell et al. formalize parallel game scripting as *state-effect*: a
system reads the frozen pre-phase state and emits **effects** (writes and
event emissions) instead of mutating in place; the engine then merges all
effects in a canonical order.  Two systems in the same phase can thus run
on different threads without observing each other's writes, and the
merged result is bit-identical to running them serially.

:class:`EffectBuffer` is that effect set: ``update_batch``-shaped column
writes plus deferred event emissions, applied via :meth:`apply` on the
owning thread in registration order.  This module deliberately imports
nothing from the rest of the package so ``repro.core`` can reference it
lazily without an import cycle.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


class EffectBuffer:
    """Buffered writes + events from one system's state-effect frame.

    Writes are ``GameWorld.update_batch``-shaped: a ``(component, ids,
    {field: values})`` triple per entry, applied in insertion order.
    Events go through ``world.emit`` at apply time, so handlers observe
    the post-merge state exactly as they would under serial execution.
    """

    __slots__ = ("writes", "events")

    def __init__(self) -> None:
        self.writes: list[tuple[str, list[int], dict[str, Sequence[Any]]]] = []
        self.events: list[tuple[str, dict, Any, float]] = []

    def write_column(
        self,
        component: str,
        field: str,
        ids: Iterable[int],
        values: Sequence[Any],
    ) -> None:
        """Buffer a single-column bulk write."""
        self.writes.append((component, list(ids), {field: values}))

    def write_batch(
        self,
        component: str,
        ids: Iterable[int],
        columns: Mapping[str, Sequence[Any]],
    ) -> None:
        """Buffer a multi-column bulk write (``update_batch`` shape)."""
        self.writes.append((component, list(ids), dict(columns)))

    def emit(
        self,
        topic: str,
        data: dict | None = None,
        source: Any = None,
        importance: float = 0.0,
    ) -> None:
        """Buffer an event emission to publish at merge time."""
        self.events.append((topic, data or {}, source, importance))

    @property
    def empty(self) -> bool:
        """Whether the buffer holds no effects at all."""
        return not self.writes and not self.events

    def apply(self, world: Any) -> int:
        """Land every buffered effect on ``world``; returns changed cells.

        Must run on the world's owning thread: this is the merge step the
        executor performs in canonical (registration) order.
        """
        changed = 0
        for component, ids, columns in self.writes:
            changed += world.update_batch(component, ids, columns)
        for topic, data, source, importance in self.events:
            world.emit(topic, data, source=source, importance=importance)
        return changed

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"EffectBuffer({len(self.writes)} writes, "
            f"{len(self.events)} events)"
        )
