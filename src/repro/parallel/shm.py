"""Shared-memory columnar plane for the process shard executor.

The process executor's workers own the live shard worlds, which makes
every parent-side read (``positions()``, resume-after-stop) a pipe
round-trip through pickle.  This module moves the *numeric* columns of
every shard table into ``multiprocessing.shared_memory`` segments that
both sides map:

* the **parent** creates one :class:`ShmTableBlock` per ``(shard,
  component)`` pair before forking, sized for the whole cluster's
  entity population plus headroom, and fills it from its tables;
* each **worker** (a fork, so it inherits the mapped segments) rebinds
  its tables' entity vector and typed columns onto the segments via
  :class:`ShmWorkerBinding` — from then on every insert/update/delete
  the worker makes lands directly in shared memory;
* between barrier steps the parent reads ids and column values straight
  out of the segments (:meth:`ShmTableBlock.read`) — no pipe, no
  pickle, no worker involvement.

Layout of one block (all cells are 8 bytes, ``d`` or ``q``)::

    [count:q][ids: q * capacity][field0 * capacity][field1 * capacity]...

``count`` is maintained by the worker's entity vector on every
insert/delete; ``-1`` is the spill sentinel.  **Spill**: a block whose
row count would exceed its fixed capacity (or whose column must demote,
e.g. int64 overflow) falls back to worker-local list storage for the
whole block.  The worker then journals that component's numeric state
as ordinary delta records instead — correctness is preserved, only the
zero-copy read path is lost for that block.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.core.columns import TypedColumn
from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.shard import ShardHost
    from repro.core.table import ComponentTable

_CELL = 8  # both 'd' and 'q' cells are 8 bytes — uniform stride

#: Spill callback signature: (shard_id, component_name).
SpillCallback = Callable[[int, str], None]


class ShmTableBlock:
    """One shared segment holding a table's ids plus its typed columns."""

    __slots__ = ("shard_id", "component", "fields", "codes", "capacity", "shm")

    def __init__(
        self,
        shard_id: int,
        component: str,
        fields: tuple[str, ...],
        codes: tuple[str, ...],
        capacity: int,
    ):
        if capacity < 1:
            raise ClusterError("shm block capacity must be positive")
        self.shard_id = shard_id
        self.component = component
        self.fields = fields
        self.codes = codes
        self.capacity = capacity
        size = _CELL * (1 + capacity * (1 + len(fields)))
        self.shm = shared_memory.SharedMemory(create=True, size=size)

    # -- layout --------------------------------------------------------------

    def _ids_span(self) -> tuple[int, int]:
        return _CELL, _CELL * (1 + self.capacity)

    def field_layout(self) -> Iterator[tuple[str, str, int, int]]:
        """Yield ``(field, typecode, start_offset, end_offset)`` per field."""
        base = _CELL * (1 + self.capacity)
        stride = _CELL * self.capacity
        for i, (field, code) in enumerate(zip(self.fields, self.codes)):
            start = base + i * stride
            yield field, code, start, start + stride

    # -- parent side ---------------------------------------------------------

    def fill(self, table: "ComponentTable") -> None:
        """Copy the parent table's current rows into the segment (pre-fork)."""
        from array import array

        n = len(table.entity_ids)
        if n > self.capacity:
            raise ClusterError(
                f"shm block {self.component!r}@shard{self.shard_id}: "
                f"{n} rows exceed capacity {self.capacity}"
            )
        buf = self.shm.buf
        count = buf[:_CELL].cast("q")
        try:
            count[0] = n
        finally:
            count.release()
        lo, hi = self._ids_span()
        ids_mv = buf[lo:hi].cast("q")
        try:
            if n:
                ids_mv[:n] = memoryview(array("q", table.entity_ids))
        finally:
            ids_mv.release()
        for field, code, start, end in self.field_layout():
            col = table._columns[field]
            values = col.tolist() if isinstance(col, TypedColumn) else list(col)
            mv = buf[start:end].cast(code)
            try:
                if n:
                    mv[:n] = memoryview(array(code, values))
            finally:
                mv.release()

    def read(
        self, fields: Iterable[str] | None = None
    ) -> "tuple[list[int], dict[str, list]] | None":
        """Copy ``(ids, columns)`` out of the segment, or None if spilled.

        All memoryview casts are created and released inside the call, so
        the parent can still :meth:`close` the segment afterwards.
        """
        wanted = None if fields is None else set(fields)
        buf = self.shm.buf
        count = buf[:_CELL].cast("q")
        try:
            n = count[0]
        finally:
            count.release()
        if n < 0:  # worker marked the block spilled
            return None
        lo, hi = self._ids_span()
        ids_mv = buf[lo:hi].cast("q")
        try:
            ids = ids_mv[:n].tolist()
        finally:
            ids_mv.release()
        columns: dict[str, list] = {}
        for field, code, start, end in self.field_layout():
            if wanted is not None and field not in wanted:
                continue
            mv = buf[start:end].cast(code)
            try:
                columns[field] = mv[:n].tolist()
            finally:
                mv.release()
        return ids, columns

    def close(self, unlink: bool = False) -> None:
        """Unmap (and optionally destroy) the segment — parent side."""
        self.shm.close()
        if unlink:
            self.shm.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmTableBlock(shard={self.shard_id}, comp={self.component!r}, "
            f"fields={self.fields}, cap={self.capacity})"
        )


class _ShmColumn(TypedColumn):
    """A typed column whose packed storage is a slice of a shared segment.

    Fixed capacity: an append past ``capacity`` (or a value that cannot
    pack) spills the *whole block* to worker-local lists via the owning
    :class:`ShmWorkerBinding` — all sibling columns demote together so
    the table stays internally consistent.
    """

    __slots__ = ("_cap", "_n", "_binding")

    def __init__(self, typecode, mv, cap, n, binding):
        super().__init__(typecode)
        self._data = mv
        self._cap = cap
        self._n = n
        self._binding = binding

    # -- spill ---------------------------------------------------------------

    def _demote(self) -> list:
        # A single column demoting (e.g. int64 overflow) spills the whole
        # block; spill() runs _demote_local on every member, us included.
        self._binding.spill()
        return self._data

    def _demote_local(self) -> None:
        if not self.demoted:
            self._data = list(self._data[: self._n])

    def _after_resize(self) -> None:
        """Hook for the ids column to publish the new row count."""

    # -- packed protocol over the memoryview ---------------------------------

    def _norm(self, i: int) -> int:
        i = i + self._n if i < 0 else i
        if not 0 <= i < self._n:
            raise IndexError("column index out of range")
        return i

    def _packed_len(self) -> int:
        return self._n

    def _packed_get(self, i: int) -> Any:
        return self._data[self._norm(i)]

    def _packed_set(self, i: int, value: Any) -> None:
        self._data[self._norm(i)] = (
            float(value) if self.typecode == "d" else value
        )

    def _packed_append(self, value: Any) -> None:
        if self._n >= self._cap:
            self._binding.spill()  # demotes self; _data is a list now
            self._data.append(value)
            return
        self._data[self._n] = float(value) if self.typecode == "d" else value
        self._n += 1
        self._after_resize()

    def _packed_pop(self) -> Any:
        if self._n == 0:
            raise IndexError("pop from empty column")
        self._n -= 1
        value = self._data[self._n]
        self._after_resize()
        return value

    def _packed_gather(self, slots) -> list:
        data = self._data
        return [data[s] for s in slots]

    def _packed_view(self) -> memoryview:
        return self._data[: self._n].toreadonly()

    def _packed_replace(self, values) -> None:
        from array import array

        try:
            self._data[: self._n] = memoryview(array(self.typecode, values))
        except OverflowError:  # beyond int64: whole block spills
            self._binding.spill()
            self._data[:] = values

    def tolist(self) -> list:
        return list(self._data) if self.demoted else list(self._data[: self._n])


class _ShmIdsColumn(_ShmColumn):
    """The entity-id vector: also maintains the block's shared row count."""

    __slots__ = ("_count_mv",)

    def __init__(self, mv, cap, n, binding, count_mv):
        super().__init__("q", mv, cap, n, binding)
        self._count_mv = count_mv

    def _after_resize(self) -> None:
        self._count_mv[0] = self._n

    def _demote_local(self) -> None:
        if not self.demoted:
            self._count_mv[0] = -1  # spill sentinel for parent readers
            self._data = list(self._data[: self._n])


class ShmWorkerBinding:
    """Worker-side attachment of one block to its live ComponentTable."""

    __slots__ = ("block", "on_spill", "spilled", "members")

    def __init__(
        self, block: ShmTableBlock, table: "ComponentTable",
        on_spill: SpillCallback,
    ):
        self.block = block
        self.on_spill = on_spill
        self.spilled = False
        buf = block.shm.buf
        count_mv = buf[:_CELL].cast("q")
        n = count_mv[0]
        if n != len(table.entity_ids):  # pragma: no cover - wiring guard
            raise ClusterError(
                f"shm block {block.component!r}@shard{block.shard_id}: "
                f"segment count {n} != table rows {len(table.entity_ids)}"
            )
        lo, hi = block._ids_span()
        ids_col = _ShmIdsColumn(
            buf[lo:hi].cast("q"), block.capacity, n, self, count_mv
        )
        table._entities = ids_col  # type: ignore[assignment]
        self.members: list[_ShmColumn] = [ids_col]
        for field, code, start, end in block.field_layout():
            col = _ShmColumn(code, buf[start:end].cast(code), block.capacity,
                             n, self)
            table._columns[field] = col
            self.members.append(col)

    def spill(self) -> None:
        """Demote every member to local list storage; notify the worker."""
        if self.spilled:
            return
        self.spilled = True
        for member in self.members:
            member._demote_local()
        self.on_spill(self.block.shard_id, self.block.component)


class ShmColumnPlane:
    """All shared blocks for one cluster run, keyed ``(shard_id, comp)``.

    Built by the parent *before* forking workers (fork inherits the
    mappings for free; nothing is pickled).  ``capacity`` should cover
    the worst-case single-shard population — the executor uses the whole
    directory size plus headroom, so even every entity migrating onto
    one shard cannot overflow, only post-fork spawns beyond the headroom
    can (and those spill gracefully).
    """

    def __init__(self, shards: "list[ShardHost]", capacity: int):
        self.capacity = capacity
        self.blocks: dict[tuple[int, str], ShmTableBlock] = {}
        try:
            for host in shards:
                world = host.world
                for comp in world.component_names():
                    table = world.table(comp)
                    fields = table.typed_fields()
                    if not fields:
                        continue
                    codes = tuple(
                        table._columns[f].typecode for f in fields
                    )
                    block = ShmTableBlock(
                        host.shard_id, comp, fields, codes, capacity
                    )
                    self.blocks[(host.shard_id, comp)] = block
                    block.fill(table)
        except BaseException:
            self.close(unlink=True)
            raise

    def numeric_fields(self, shard_id: int) -> dict[str, frozenset[str]]:
        """``{component: shm-backed fields}`` for one shard's blocks."""
        return {
            comp: frozenset(block.fields)
            for (sid, comp), block in self.blocks.items()
            if sid == shard_id
        }

    def bind_worker(
        self, host: "ShardHost", on_spill: SpillCallback
    ) -> dict[str, ShmWorkerBinding]:
        """Rebind one shard's tables onto the segments (worker side)."""
        bindings = {}
        for (sid, comp), block in self.blocks.items():
            if sid != host.shard_id:
                continue
            table = host.world.table(comp)
            bindings[comp] = ShmWorkerBinding(block, table, on_spill)
        return bindings

    def close(self, unlink: bool = False) -> None:
        """Unmap (and optionally destroy) every segment — parent side."""
        for block in self.blocks.values():
            try:
                block.close(unlink=unlink)
            except OSError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShmColumnPlane(blocks={len(self.blocks)}, cap={self.capacity})"
