"""Multiprocess shard execution: whole ``ShardHost``s in worker processes.

The cluster's serial tick steps shards one after another on one core.
:class:`ProcessShardExecutor` forks worker processes that each own a
slice of the shards and step them in parallel, while the parent keeps
the :class:`~repro.net.simnet.SimNetwork` authoritative:

1. the parent drains each shard endpoint's delivered messages and ships
   them over a pipe to the owning worker;
2. each worker steps its shards **in shard-id order** (inbox + world
   frame), buffering every outbound protocol message instead of touching
   a network;
3. the parent replays the buffered sends into the real ``SimNetwork`` in
   shard-id order — the exact order serial execution would have produced
   them (``SimNetwork`` never delivers same-tick, and its jitter RNGs
   are per-link, so replayed order is the only thing that matters).

That replay discipline is what keeps cluster ``state_hash`` bit-identical
to serial execution.  Workers are created with the ``fork`` start method
so the already-built hosts are inherited by memory, not pickled; only
per-tick messages cross the pipes (which is why transaction ops must use
picklable callables — see :mod:`repro.consistency.transactions`).

The parent's copies of the shard worlds go stale the moment workers
start; the executor therefore also answers ``positions()`` /
``state_hashes()`` / entity installs on the workers' behalf and syncs
ownership and stats back every tick.  :meth:`stop` pulls full world
snapshots back into the parent so serial execution can resume.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Mapping, TYPE_CHECKING

from repro.cluster.stats import _SHARD_FIELDS
from repro.errors import ClusterError
from repro.obs.metrics import StatsRow

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.shard import ShardHost


class ProcessExecutorStats(StatsRow):
    """Snapshot of the process executor's per-tick counters."""

    COLUMNS = ("workers", "shards", "ticks", "messages_routed", "sends_replayed")


class _BufferNet:
    """Worker-side network stub: records sends, exposes the current tick.

    Stands in for ``SimNetwork`` inside a worker process; everything a
    stepping :class:`ShardHost` touches (``send`` and ``now``) is here,
    and the buffered sends travel back to the parent for replay.
    """

    __slots__ = ("now", "sends")

    def __init__(self) -> None:
        self.now = 0
        self.sends: list[tuple[str, str, Any, int]] = []

    def send(
        self, src: str, dst: str, payload: Any, size: int = 0,
        ctx: Any = None,
    ) -> None:
        # ctx is dropped: worker processes trace in their own address
        # space; causal flows across the fork boundary are out of scope.
        self.sends.append((src, dst, payload, size))


def _shard_stats_dict(host: "ShardHost") -> dict[str, int]:
    """Settable-field snapshot of a host's registry-backed ShardStats.

    Keyed by the StatView *field* names (not the display COLUMNS), so the
    parent can ``setattr`` the values straight back onto its own view.
    """
    return {f: getattr(host.stats, f) for f in _SHARD_FIELDS}


def _worker_main(conn, hosts: "list[ShardHost]", worker_id: int) -> None:
    """Worker loop: own ``hosts``, answer parent commands until "stop"."""
    buffer = _BufferNet()
    by_id = {}
    last_owned: dict[int, tuple[int, ...]] = {}
    for host in hosts:
        host.net = buffer  # type: ignore[assignment]
        by_id[host.shard_id] = host
        last_owned[host.shard_id] = tuple(sorted(host.owned))
    while True:
        command = conn.recv()
        op = command[0]
        if op == "tick":
            _, now, inboxes = command
            buffer.now = now
            reply: dict[int, dict[str, Any]] = {}
            for sid in sorted(by_id):
                host = by_id[sid]
                buffer.sends = []
                host.process_inbox(inboxes.get(sid, ()))
                host.tick()
                owned = tuple(sorted(host.owned))
                reply[sid] = {
                    "sends": buffer.sends,
                    "owned": None if owned == last_owned[sid] else owned,
                    "deferred": host.deferred_handoffs,
                    "retained": host.retained_evictions,
                    "stats": _shard_stats_dict(host),
                }
                last_owned[sid] = owned
            conn.send(("tick", reply))
        elif op == "install":
            _, sid, entity, components = command
            by_id[sid].install_entity(entity, components)
            last_owned[sid] = tuple(sorted(by_id[sid].owned))
            conn.send(("ok",))
        elif op == "positions":
            out: dict[int, tuple[float, float]] = {}
            for sid in sorted(by_id):
                world = by_id[sid].world
                if "Position" in world.component_names():
                    for eid, row in world.table("Position").rows():
                        out[eid] = (row["x"], row["y"])
            conn.send(("positions", out))
        elif op == "state_hash":
            conn.send(
                (
                    "state_hash",
                    {
                        sid: by_id[sid].world.state_hash()
                        for sid in sorted(by_id)
                    },
                )
            )
        elif op == "snapshot":
            snap = {}
            for sid in sorted(by_id):
                host = by_id[sid]
                snap[sid] = {
                    "world": host.world.snapshot(),
                    "owned": tuple(sorted(host.owned)),
                    "forwarding": (
                        dict(host.forwarding._next_hop),
                        host.forwarding.forwards,
                    ),
                    "retained": dict(host._retained_evictions),
                    "deferred": list(host._deferred_handoffs),
                    "stats": _shard_stats_dict(host),
                }
            conn.send(("snapshot", snap))
        elif op == "stop":
            conn.send(("bye",))
            conn.close()
            return
        else:  # pragma: no cover - protocol guard
            raise ClusterError(f"worker {worker_id}: unknown command {op!r}")


class ProcessShardExecutor:
    """Steps a coordinator's shards across forked worker processes."""

    def __init__(self, coordinator: "ClusterCoordinator", workers: int = 2):
        if workers < 1:
            raise ClusterError("process executor needs at least 1 worker")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            raise ClusterError(
                "parallel cluster execution requires the 'fork' start method"
            ) from None
        self.coordinator = coordinator
        shards = coordinator.shards
        self.workers = min(workers, len(shards))
        # Contiguous slices keep shard-id order trivially reconstructible.
        assignment: list[list] = [[] for _ in range(self.workers)]
        for i, host in enumerate(shards):
            assignment[i % self.workers].append(host)
        self._owner: dict[int, int] = {}
        for wid, hosts in enumerate(assignment):
            for host in hosts:
                self._owner[host.shard_id] = wid
        self._pipes = []
        self._procs = []
        for wid, hosts in enumerate(assignment):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, hosts, wid),
                daemon=True,
                name=f"repro-shard-worker-{wid}",
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)
        self.ticks = 0
        self.messages_routed = 0
        self.sends_replayed = 0
        #: Per-shard deferred/retained counts from the latest tick, for
        #: the coordinator's quiescence check.
        self.deferred_counts: dict[int, int] = {
            host.shard_id: host.deferred_handoffs for host in shards
        }
        self.retained_counts: dict[int, int] = {
            host.shard_id: host.retained_evictions for host in shards
        }
        self._stats_name = coordinator.obs.register_stats(
            "parallel.cluster", self.stats
        )
        self._stopped = False

    # -- the parallel step ---------------------------------------------------

    def step(self) -> None:
        """One barrier step of every shard, fanned across the workers."""
        coord = self.coordinator
        net = coord.net
        tracer = coord.obs.tracer
        # 1. Drain this tick's deliveries per shard endpoint.
        inboxes_by_worker: list[dict[int, list]] = [
            {} for _ in range(self.workers)
        ]
        for host in coord.shards:
            messages = list(net.receive(host.endpoint))
            if messages:
                self.messages_routed += len(messages)
            inboxes_by_worker[self._owner[host.shard_id]][host.shard_id] = (
                messages
            )
        # 2. Fan out, then barrier on every worker's reply.
        for wid, pipe in enumerate(self._pipes):
            pipe.send(("tick", net.now, inboxes_by_worker[wid]))
        replies: dict[int, dict[str, Any]] = {}
        for wid, pipe in enumerate(self._pipes):
            tag, reply = pipe.recv()
            if tag != "tick":  # pragma: no cover - protocol guard
                raise ClusterError(f"worker {wid}: bad reply {tag!r}")
            if tracer.enabled:
                tracer.event(
                    "worker",
                    cat="parallel",
                    worker=wid,
                    shards=len(reply),
                    sends=sum(len(r["sends"]) for r in reply.values()),
                )
            replies.update(reply)
        # 3. Merge: replay sends in shard-id order (the serial order),
        #    then sync ownership and stats into the parent's hosts.
        if tracer.enabled:
            span = tracer.span("effect.merge", cat="parallel")
        else:
            span = None
        try:
            if span is not None:
                span.__enter__()
            for sid in sorted(replies):
                for src, dst, payload, size in replies[sid]["sends"]:
                    net.send(src, dst, payload, size)
                    self.sends_replayed += 1
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        metrics = coord.metrics
        for sid in sorted(replies):
            reply = replies[sid]
            host = coord.shards[sid]
            if reply["owned"] is not None:
                host.owned = set(reply["owned"])
            self.deferred_counts[sid] = reply["deferred"]
            self.retained_counts[sid] = reply["retained"]
            for fieldname, value in reply["stats"].items():
                setattr(host.stats, fieldname, value)
        for wid in range(self.workers):
            shard_ids = [s for s, w in self._owner.items() if w == wid]
            metrics.gauge("parallel.worker.shards", worker=wid).set(
                len(shard_ids)
            )
            metrics.counter("parallel.worker.sends", worker=wid).inc(
                sum(len(replies[s]["sends"]) for s in shard_ids)
            )
        self.ticks += 1

    # -- reads routed to the workers ----------------------------------------

    def install(
        self, shard_id: int, entity: int, components: Mapping[str, Any]
    ) -> None:
        """Install a spawned entity on the worker that owns the shard."""
        pipe = self._pipes[self._owner[shard_id]]
        pipe.send(("install", shard_id, entity, components))
        tag, *_ = pipe.recv()
        if tag != "ok":  # pragma: no cover - protocol guard
            raise ClusterError(f"install on shard {shard_id} failed: {tag!r}")

    def positions(self) -> dict[int, tuple[float, float]]:
        """Global Position snapshot gathered from every worker."""
        for pipe in self._pipes:
            pipe.send(("positions",))
        out: dict[int, tuple[float, float]] = {}
        for pipe in self._pipes:
            tag, positions = pipe.recv()
            if tag != "positions":  # pragma: no cover - protocol guard
                raise ClusterError(f"bad positions reply {tag!r}")
            out.update(positions)
        return out

    def state_hashes(self) -> dict[int, str]:
        """Per-shard world state hashes computed inside the workers."""
        for pipe in self._pipes:
            pipe.send(("state_hash",))
        out: dict[int, str] = {}
        for pipe in self._pipes:
            tag, hashes = pipe.recv()
            if tag != "state_hash":  # pragma: no cover - protocol guard
                raise ClusterError(f"bad state_hash reply {tag!r}")
            out.update(hashes)
        return out

    # -- lifecycle -----------------------------------------------------------

    def stop(self, sync: bool = True) -> None:
        """Stop the workers; by default pull their state into the parent.

        With ``sync=True`` every shard's world snapshot, ownership set,
        forwarding table, and handoff bookkeeping are restored into the
        parent's hosts, so serial ticking can resume exactly where the
        workers left off.
        """
        if self._stopped:
            return
        if sync:
            for pipe in self._pipes:
                pipe.send(("snapshot",))
            for pipe in self._pipes:
                tag, snap = pipe.recv()
                if tag != "snapshot":  # pragma: no cover - protocol guard
                    raise ClusterError(f"bad snapshot reply {tag!r}")
                for sid, state in snap.items():
                    host = self.coordinator.shards[sid]
                    host.world.restore(state["world"])
                    host.owned = set(state["owned"])
                    next_hop, forwards = state["forwarding"]
                    host.forwarding._next_hop = dict(next_hop)
                    host.forwarding.forwards = forwards
                    host._retained_evictions = dict(state["retained"])
                    host._deferred_handoffs = list(state["deferred"])
                    for fieldname, value in state["stats"].items():
                        setattr(host.stats, fieldname, value)
        for pipe in self._pipes:
            pipe.send(("stop",))
        for pipe, proc in zip(self._pipes, self._procs):
            try:
                pipe.recv()
            except EOFError:  # pragma: no cover - worker died first
                pass
            pipe.close()
            proc.join(timeout=5)
        self.coordinator.obs.unregister_stats(self._stats_name)
        self._stopped = True

    def stats(self) -> ProcessExecutorStats:
        """Counter snapshot (a :class:`StatsRow`)."""
        return ProcessExecutorStats(
            workers=self.workers,
            shards=len(self._owner),
            ticks=self.ticks,
            messages_routed=self.messages_routed,
            sends_replayed=self.sends_replayed,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProcessShardExecutor(workers={self.workers}, "
            f"shards={len(self._owner)}, ticks={self.ticks})"
        )
