"""Multiprocess shard execution: whole ``ShardHost``s in worker processes.

The cluster's serial tick steps shards one after another on one core.
:class:`ProcessShardExecutor` forks worker processes that each own a
slice of the shards and step them in parallel, while the parent keeps
the :class:`~repro.net.simnet.SimNetwork` authoritative:

1. the parent drains each shard endpoint's delivered messages and ships
   them over a pipe to the owning worker (together with any entity
   installs queued since the last barrier);
2. each worker steps its shards **in shard-id order** (inbox + world
   frame), buffering every outbound protocol message instead of touching
   a network;
3. the parent replays the buffered sends into the real ``SimNetwork`` in
   shard-id order — the exact order serial execution would have produced
   them (``SimNetwork`` never delivers same-tick, and its jitter RNGs
   are per-link, so replayed order is the only thing that matters).

That replay discipline is what keeps cluster ``state_hash`` bit-identical
to serial execution.  Workers are created with the ``fork`` start method
so the already-built hosts are inherited by memory, not pickled; only
per-tick messages cross the pipes (which is why transaction ops must use
picklable callables — see :mod:`repro.consistency.transactions`).

Two data planes keep the parent current without whole-world pickles:

* **shared-memory columns** — before forking, the executor moves every
  numeric component column into a :class:`~repro.parallel.shm.ShmColumnPlane`
  segment that workers mutate in place.  ``positions()`` reads straight
  from those segments; no pipe round-trip, no worker involvement.
* **journal deltas** — each worker keeps a per-shard
  :class:`~repro.replication.ShardJournal` fed by the world change hook,
  *skipping* columns the shm plane already carries (the hook's
  ``skips_update`` protocol keeps whole-column writes on the fast path).
  The flushed tail ships with every tick reply and the parent replays it
  eagerly, so parent worlds track all structural change; numeric state
  is overlaid from the segments once at :meth:`stop`.  A block that
  spills (capacity/overflow) reverts to journaling its numeric fields.
"""

from __future__ import annotations

import multiprocessing
import pickle
from time import perf_counter
from typing import Any, Mapping, TYPE_CHECKING

from repro.cluster.stats import _SHARD_FIELDS
from repro.errors import ClusterError
from repro.obs.metrics import StatsRow
from repro.parallel.shm import ShmColumnPlane
from repro.replication.journal import ShardJournal, apply_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.shard import ShardHost


class ProcessExecutorStats(StatsRow):
    """Snapshot of the process executor's per-tick counters.

    ``bytes_shipped`` counts pickled bytes crossing the pipes in either
    direction (shared-memory reads are free and do not count);
    ``sync_ms`` is parent wall time blocked on worker barriers and delta
    application; ``chunks_executed`` counts per-shard step units — the
    chunks one cluster tick splits into across the workers.
    """

    COLUMNS = (
        "workers",
        "shards",
        "ticks",
        "messages_routed",
        "sends_replayed",
        "chunks_executed",
        "bytes_shipped",
        "sync_ms",
    )


def _ship(conn, obj: Any) -> int:
    """Pickle ``obj`` down the pipe; returns the byte count."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    conn.send_bytes(data)
    return len(data)


def _receive(conn) -> tuple[Any, int]:
    """Receive one pickled object; returns ``(obj, byte_count)``."""
    data = conn.recv_bytes()
    return pickle.loads(data), len(data)


class _BufferNet:
    """Worker-side network stub: records sends, exposes the current tick.

    Stands in for ``SimNetwork`` inside a worker process; everything a
    stepping :class:`ShardHost` touches (``send`` and ``now``) is here,
    and the buffered sends travel back to the parent for replay.
    """

    __slots__ = ("now", "sends")

    def __init__(self) -> None:
        self.now = 0
        self.sends: list[tuple[str, str, Any, int]] = []

    def send(
        self, src: str, dst: str, payload: Any, size: int = 0,
        ctx: Any = None,
    ) -> None:
        # ctx is dropped: worker processes trace in their own address
        # space; causal flows across the fork boundary are out of scope.
        self.sends.append((src, dst, payload, size))


def _shard_stats_dict(host: "ShardHost") -> dict[str, int]:
    """Settable-field snapshot of a host's registry-backed ShardStats.

    Keyed by the StatView *field* names (not the display COLUMNS), so the
    parent can ``setattr`` the values straight back onto its own view.
    """
    return {f: getattr(host.stats, f) for f in _SHARD_FIELDS}


class _JournalHook:
    """World change hook feeding a shard's journal, minus shm columns.

    ``skips_update`` lets ``GameWorld.set_column`` keep its whole-column
    fast path for fields the shared-memory plane already synchronizes;
    per-entity updates that touch *only* such fields are dropped here for
    the same reason.  Once the block spills, numeric fields journal like
    everything else.
    """

    __slots__ = ("journal", "numeric", "spilled")

    def __init__(
        self, journal: ShardJournal, numeric: dict[str, frozenset[str]],
        spilled: set[str],
    ):
        self.journal = journal
        self.numeric = numeric
        self.spilled = spilled

    def _shm_covers(self, component: str | None, field: str) -> bool:
        return (
            component not in self.spilled
            and field in self.numeric.get(component, ())
        )

    def skips_update(self, component: str, field: str) -> bool:
        return self._shm_covers(component, field)

    def __call__(self, op, entity, component, payload) -> None:
        if (
            op == "update"
            and payload
            and all(self._shm_covers(component, f) for f in payload)
        ):
            return
        self.journal.log_change(op, entity, component, payload)


def _worker_main(
    conn, hosts: "list[ShardHost]", worker_id: int, plane: ShmColumnPlane
) -> None:
    """Worker loop: own ``hosts``, answer parent commands until "stop"."""
    buffer = _BufferNet()
    by_id: dict[int, "ShardHost"] = {}
    last_owned: dict[int, tuple[int, ...]] = {}
    journals: dict[int, ShardJournal] = {}
    shipped: dict[int, int] = {}
    numeric_by_sid: dict[int, dict[str, frozenset[str]]] = {}
    spilled: dict[int, set[str]] = {}
    pending_dumps: list[tuple[int, str]] = []

    def on_spill(sid: int, comp: str) -> None:
        spilled[sid].add(comp)
        pending_dumps.append((sid, comp))

    for host in hosts:
        sid = host.shard_id
        host.net = buffer  # type: ignore[assignment]
        by_id[sid] = host
        last_owned[sid] = tuple(sorted(host.owned))
        journals[sid] = ShardJournal(name=f"shard:{sid}")
        shipped[sid] = 0
        numeric_by_sid[sid] = plane.numeric_fields(sid)
        spilled[sid] = set()
        plane.bind_worker(host, on_spill)
        host.world.add_change_hook(
            _JournalHook(journals[sid], numeric_by_sid[sid], spilled[sid])
        )

    def dump_spills() -> None:
        # A freshly spilled block's numeric state lives only in worker
        # memory now: journal a full per-row dump (plain "update" records)
        # so the parent's delta stream stays complete.  Runs at command
        # end, when the tables are in a consistent state.
        for sid, comp in pending_dumps:
            world = by_id[sid].world
            fields = numeric_by_sid[sid][comp]
            for eid, row in world.table(comp).rows():
                journals[sid].log_change(
                    "update", eid, comp, {f: row[f] for f in fields}
                )
        pending_dumps.clear()

    def ship_journal(sid: int) -> list[dict[str, Any]]:
        journal = journals[sid]
        journal.flush()
        records = journal.ship_since(shipped[sid])
        shipped[sid] = journal.flushed_lsn
        return [payload for _lsn, payload in records]

    def apply_installs(installs) -> None:
        for sid in sorted(installs):
            for entity, components in installs[sid]:
                by_id[sid].install_entity(entity, components)

    while True:
        command, _nbytes = _receive(conn)
        op = command[0]
        if op == "tick":
            _, now, inboxes, installs = command
            buffer.now = now
            apply_installs(installs)
            reply: dict[int, dict[str, Any]] = {}
            for sid in sorted(by_id):
                host = by_id[sid]
                buffer.sends = []
                host.process_inbox(inboxes.get(sid, ()))
                host.tick()
                journals[sid].log_tick(host.world.clock.tick)
                dump_spills()
                owned = tuple(sorted(host.owned))
                reply[sid] = {
                    "sends": buffer.sends,
                    "owned": None if owned == last_owned[sid] else owned,
                    "deferred": host.deferred_handoffs,
                    "retained": host.retained_evictions,
                    "stats": _shard_stats_dict(host),
                    "journal": ship_journal(sid),
                    "spilled": tuple(sorted(spilled[sid])),
                }
                last_owned[sid] = owned
            _ship(conn, ("tick", reply))
        elif op == "install_batch":
            _, installs = command
            apply_installs(installs)
            dump_spills()
            _ship(
                conn,
                ("ok", {sid: tuple(sorted(spilled[sid])) for sid in by_id}),
            )
        elif op == "positions":
            _, sids = command
            out: dict[int, dict[int, tuple[float, float]]] = {}
            for sid in sids:
                world = by_id[sid].world
                shard_pos: dict[int, tuple[float, float]] = {}
                if "Position" in world.component_names():
                    for eid, row in world.table("Position").rows():
                        shard_pos[eid] = (row["x"], row["y"])
                out[sid] = shard_pos
            _ship(conn, ("positions", out))
        elif op == "state_hash":
            _ship(
                conn,
                (
                    "state_hash",
                    {
                        sid: by_id[sid].world.state_hash()
                        for sid in sorted(by_id)
                    },
                ),
            )
        elif op == "sync":
            dump_spills()
            state = {}
            for sid in sorted(by_id):
                host = by_id[sid]
                state[sid] = {
                    "journal": ship_journal(sid),
                    "owned": tuple(sorted(host.owned)),
                    "forwarding": (
                        dict(host.forwarding._next_hop),
                        host.forwarding.forwards,
                    ),
                    "retained": dict(host._retained_evictions),
                    "deferred": list(host._deferred_handoffs),
                    "prepared": host.participant.export_prepared(),
                    "stats": _shard_stats_dict(host),
                    "spilled": tuple(sorted(spilled[sid])),
                }
            _ship(conn, ("sync", state))
        elif op == "stop":
            # Deliberately no shm close here: the worker's tables still
            # hold memoryview exports; process exit unmaps everything.
            _ship(conn, ("bye",))
            conn.close()
            return
        else:  # pragma: no cover - protocol guard
            raise ClusterError(f"worker {worker_id}: unknown command {op!r}")


class ProcessShardExecutor:
    """Steps a coordinator's shards across forked worker processes."""

    def __init__(
        self,
        coordinator: "ClusterCoordinator",
        workers: int = 2,
        shm_headroom: int = 1024,
    ):
        if workers < 1:
            raise ClusterError("process executor needs at least 1 worker")
        if shm_headroom < 0:
            raise ClusterError("shm_headroom must be non-negative")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            raise ClusterError(
                "parallel cluster execution requires the 'fork' start method"
            ) from None
        self.coordinator = coordinator
        shards = coordinator.shards
        self.workers = min(workers, len(shards))
        # Segment capacity covers every directory entity landing on one
        # shard, plus headroom for entities spawned while parallel.
        capacity = max(1, len(coordinator.directory) + shm_headroom)
        self.plane = ShmColumnPlane(shards, capacity)
        # Contiguous slices keep shard-id order trivially reconstructible.
        assignment: list[list] = [[] for _ in range(self.workers)]
        for i, host in enumerate(shards):
            assignment[i % self.workers].append(host)
        self._owner: dict[int, int] = {}
        for wid, hosts in enumerate(assignment):
            for host in hosts:
                self._owner[host.shard_id] = wid
        self._pipes = []
        self._procs = []
        for wid, hosts in enumerate(assignment):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, hosts, wid, self.plane),
                daemon=True,
                name=f"repro-shard-worker-{wid}",
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)
        self.ticks = 0
        self.messages_routed = 0
        self.sends_replayed = 0
        self.chunks_executed = 0
        self.bytes_shipped = 0
        self._sync_s = 0.0
        self._spilled: set[tuple[int, str]] = set()
        self._applied_txns: dict[int, set[int]] = {
            host.shard_id: set() for host in shards
        }
        self._pending_installs: dict[int, list[tuple[int, dict]]] = {}
        #: Per-shard deferred/retained counts from the latest tick, for
        #: the coordinator's quiescence check.
        self.deferred_counts: dict[int, int] = {
            host.shard_id: host.deferred_handoffs for host in shards
        }
        self.retained_counts: dict[int, int] = {
            host.shard_id: host.retained_evictions for host in shards
        }
        self._stats_name = coordinator.obs.register_stats(
            "parallel.cluster", self.stats
        )
        self._stopped = False

    # -- the parallel step ---------------------------------------------------

    def step(self) -> None:
        """One barrier step of every shard, fanned across the workers."""
        coord = self.coordinator
        net = coord.net
        tracer = coord.obs.tracer
        # 1. Drain this tick's deliveries per shard endpoint; pair them
        #    with the entity installs queued since the last barrier.
        inboxes_by_worker: list[dict[int, list]] = [
            {} for _ in range(self.workers)
        ]
        for host in coord.shards:
            messages = list(net.receive(host.endpoint))
            if messages:
                self.messages_routed += len(messages)
            inboxes_by_worker[self._owner[host.shard_id]][host.shard_id] = (
                messages
            )
        installs_by_worker: list[dict[int, list]] = [
            {} for _ in range(self.workers)
        ]
        for sid, items in self._pending_installs.items():
            installs_by_worker[self._owner[sid]][sid] = items
        self._pending_installs = {}
        # 2. Fan out, then barrier on every worker's reply.
        for wid, pipe in enumerate(self._pipes):
            self.bytes_shipped += _ship(
                pipe,
                ("tick", net.now, inboxes_by_worker[wid],
                 installs_by_worker[wid]),
            )
        barrier_started = perf_counter()
        replies: dict[int, dict[str, Any]] = {}
        for wid, pipe in enumerate(self._pipes):
            (tag, reply), nbytes = _receive(pipe)
            self.bytes_shipped += nbytes
            if tag != "tick":  # pragma: no cover - protocol guard
                raise ClusterError(f"worker {wid}: bad reply {tag!r}")
            if tracer.enabled:
                tracer.event(
                    "worker",
                    cat="parallel",
                    worker=wid,
                    shards=len(reply),
                    sends=sum(len(r["sends"]) for r in reply.values()),
                )
            replies.update(reply)
        # 3. Merge: replay sends in shard-id order (the serial order),
        #    then apply journal deltas and sync ownership and stats into
        #    the parent's hosts.
        if tracer.enabled:
            span = tracer.span("effect.merge", cat="parallel")
        else:
            span = None
        try:
            if span is not None:
                span.__enter__()
            for sid in sorted(replies):
                for src, dst, payload, size in replies[sid]["sends"]:
                    net.send(src, dst, payload, size)
                    self.sends_replayed += 1
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        metrics = coord.metrics
        for sid in sorted(replies):
            reply = replies[sid]
            host = coord.shards[sid]
            self._apply_shard_delta(sid, host, reply)
            if reply["owned"] is not None:
                host.owned = set(reply["owned"])
            self.deferred_counts[sid] = reply["deferred"]
            self.retained_counts[sid] = reply["retained"]
            for fieldname, value in reply["stats"].items():
                setattr(host.stats, fieldname, value)
        self.chunks_executed += len(replies)
        self._sync_s += perf_counter() - barrier_started
        for wid in range(self.workers):
            shard_ids = [s for s, w in self._owner.items() if w == wid]
            metrics.gauge("parallel.worker.shards", worker=wid).set(
                len(shard_ids)
            )
            metrics.counter("parallel.worker.sends", worker=wid).inc(
                sum(len(replies[s]["sends"]) for s in shard_ids)
            )
        self.ticks += 1

    def _apply_shard_delta(
        self, sid: int, host: "ShardHost", reply: Mapping[str, Any]
    ) -> None:
        """Replay one shard's shipped journal tail into the parent host."""
        for comp in reply["spilled"]:
            self._spilled.add((sid, comp))
        for payload in reply["journal"]:
            apply_record(
                payload, host.world, host.owned, self._applied_txns[sid]
            )

    # -- install batching ----------------------------------------------------

    def install(
        self, shard_id: int, entity: int, components: Mapping[str, Any]
    ) -> None:
        """Queue a spawned entity for the next barrier's install ship.

        No pipe round-trip here: installs ride the next tick command
        (matching serial order — a serial spawn also lands before the
        next frame).  Reads that need the entity visible immediately
        (:meth:`positions`, :meth:`state_hashes`, :meth:`stop`) flush the
        queue with an acknowledged ``install_batch`` first.
        """
        self._pending_installs.setdefault(shard_id, []).append(
            (entity, {k: dict(v) for k, v in components.items()})
        )

    def _flush_installs(self) -> None:
        if not self._pending_installs:
            return
        by_worker: dict[int, dict[int, list]] = {}
        for sid, items in self._pending_installs.items():
            by_worker.setdefault(self._owner[sid], {})[sid] = items
        self._pending_installs = {}
        for wid, installs in by_worker.items():
            self.bytes_shipped += _ship(
                self._pipes[wid], ("install_batch", installs)
            )
        for wid in by_worker:
            (tag, spilled), nbytes = _receive(self._pipes[wid])
            self.bytes_shipped += nbytes
            if tag != "ok":  # pragma: no cover - protocol guard
                raise ClusterError(f"install batch failed: {tag!r}")
            for sid, comps in spilled.items():
                for comp in comps:
                    self._spilled.add((sid, comp))

    # -- parent-side reads ---------------------------------------------------

    def positions(self) -> dict[int, tuple[float, float]]:
        """Global Position snapshot, served from the shm columns.

        Shards whose Position block spilled (or that have no columnar
        x/y) fall back to a pipe read; results merge in shard-id order,
        exactly like the serial path iterating ``coordinator.shards``.
        """
        self._flush_installs()
        per_sid: dict[int, dict[int, tuple[float, float]]] = {}
        fallback: list[int] = []
        for host in self.coordinator.shards:
            sid = host.shard_id
            block = self.plane.blocks.get((sid, "Position"))
            if (
                block is None
                or (sid, "Position") in self._spilled
                or not {"x", "y"} <= set(block.fields)
            ):
                fallback.append(sid)
                continue
            data = block.read(("x", "y"))
            if data is None:  # spill sentinel beat the reply channel
                self._spilled.add((sid, "Position"))
                fallback.append(sid)
                continue
            ids, cols = data
            per_sid[sid] = dict(zip(ids, zip(cols["x"], cols["y"])))
        if fallback:
            by_worker: dict[int, list[int]] = {}
            for sid in fallback:
                by_worker.setdefault(self._owner[sid], []).append(sid)
            for wid, sids in by_worker.items():
                self.bytes_shipped += _ship(
                    self._pipes[wid], ("positions", sids)
                )
            for wid in by_worker:
                (tag, shard_positions), nbytes = _receive(self._pipes[wid])
                self.bytes_shipped += nbytes
                if tag != "positions":  # pragma: no cover - protocol guard
                    raise ClusterError(f"bad positions reply {tag!r}")
                per_sid.update(shard_positions)
        out: dict[int, tuple[float, float]] = {}
        for sid in sorted(per_sid):
            out.update(per_sid[sid])
        return out

    def state_hashes(self) -> dict[int, str]:
        """Per-shard world state hashes computed inside the workers."""
        self._flush_installs()
        for pipe in self._pipes:
            self.bytes_shipped += _ship(pipe, ("state_hash",))
        out: dict[int, str] = {}
        for pipe in self._pipes:
            (tag, hashes), nbytes = _receive(pipe)
            self.bytes_shipped += nbytes
            if tag != "state_hash":  # pragma: no cover - protocol guard
                raise ClusterError(f"bad state_hash reply {tag!r}")
            out.update(hashes)
        return out

    # -- lifecycle -----------------------------------------------------------

    def stop(self, sync: bool = True) -> None:
        """Stop the workers; by default pull their state into the parent.

        With ``sync=True`` the parent applies each shard's final journal
        tail (structural and non-columnar state), copies ownership,
        forwarding, and handoff bookkeeping, then overlays the numeric
        columns straight from the shared segments — no whole-world
        snapshot pickle crosses the pipes.  Serial ticking can resume
        exactly where the workers left off.
        """
        if self._stopped:
            return
        if sync:
            self._flush_installs()
            started = perf_counter()
            for pipe in self._pipes:
                self.bytes_shipped += _ship(pipe, ("sync",))
            for pipe in self._pipes:
                (tag, state), nbytes = _receive(pipe)
                self.bytes_shipped += nbytes
                if tag != "sync":  # pragma: no cover - protocol guard
                    raise ClusterError(f"bad sync reply {tag!r}")
                for sid, shard_state in state.items():
                    host = self.coordinator.shards[sid]
                    self._apply_shard_delta(sid, host, shard_state)
                    host.owned = set(shard_state["owned"])
                    next_hop, forwards = shard_state["forwarding"]
                    host.forwarding._next_hop = dict(next_hop)
                    host.forwarding.forwards = forwards
                    host._retained_evictions = dict(shard_state["retained"])
                    host._deferred_handoffs = list(shard_state["deferred"])
                    # In-flight 2PC yes-votes: the worker may have
                    # prepared a transaction whose decision arrives after
                    # the handoff; the parent must be able to honor it.
                    host.participant.import_prepared(shard_state["prepared"])
                    for fieldname, value in shard_state["stats"].items():
                        setattr(host.stats, fieldname, value)
            # Numeric overlay: the segments hold the authoritative final
            # values for every non-spilled block.
            for (sid, comp) in sorted(self.plane.blocks):
                if (sid, comp) in self._spilled:
                    continue
                data = self.plane.blocks[(sid, comp)].read()
                if data is None:
                    continue
                ids, cols = data
                if ids:
                    self.coordinator.shards[sid].world.update_batch(
                        comp, ids, cols
                    )
            self._sync_s += perf_counter() - started
        for pipe in self._pipes:
            _ship(pipe, ("stop",))
        for pipe, proc in zip(self._pipes, self._procs):
            try:
                pipe.recv_bytes()
            except EOFError:  # pragma: no cover - worker died first
                pass
            pipe.close()
            proc.join(timeout=5)
        self.plane.close(unlink=True)
        self.coordinator.obs.unregister_stats(self._stats_name)
        self._stopped = True

    def stats(self) -> ProcessExecutorStats:
        """Counter snapshot (a :class:`StatsRow`)."""
        return ProcessExecutorStats(
            workers=self.workers,
            shards=len(self._owner),
            ticks=self.ticks,
            messages_routed=self.messages_routed,
            sends_replayed=self.sends_replayed,
            chunks_executed=self.chunks_executed,
            bytes_shipped=self.bytes_shipped,
            sync_ms=round(self._sync_s * 1000.0, 3),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProcessShardExecutor(workers={self.workers}, "
            f"shards={len(self._owner)}, ticks={self.ticks})"
        )
