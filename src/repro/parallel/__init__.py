"""repro.parallel — state-effect tick scheduling and multi-core execution.

The parallelism layer from the tutorial's scripting line of work: systems
declare (or have inferred) the component sets they read and write, a
conflict-graph scheduler partitions each tick into phases of
non-conflicting systems (:mod:`repro.parallel.scheduler`), and systems in
a phase run concurrently against frozen state, emitting
:class:`EffectBuffer`s merged in canonical order
(:mod:`repro.parallel.effects`).  Two executors consume the plan:

* :class:`ParallelTickExecutor` — a thread pool inside one
  :class:`~repro.core.world.GameWorld` (install with
  ``world.enable_parallel(workers)``);
* :class:`ProcessShardExecutor` — whole
  :class:`~repro.cluster.shard.ShardHost`s in forked worker processes,
  with SimNetwork messages crossing process boundaries over pipes
  (install with ``ClusterCoordinator(parallel=N)``).

Both are bit-deterministic: ``state_hash`` after a parallel run equals
the serial run's, which the equivalence tests assert.
"""

from repro.parallel.effects import EffectBuffer
from repro.parallel.executor import ParallelExecutorStats, ParallelTickExecutor
from repro.parallel.procpool import ProcessExecutorStats, ProcessShardExecutor
from repro.parallel.scheduler import (
    ConflictGraph,
    Phase,
    TickPlan,
    build_tick_plan,
)

__all__ = [
    "EffectBuffer",
    "ConflictGraph",
    "Phase",
    "TickPlan",
    "build_tick_plan",
    "ParallelExecutorStats",
    "ParallelTickExecutor",
    "ProcessExecutorStats",
    "ProcessShardExecutor",
]
