"""Conflict-graph tick scheduling: partition systems into parallel phases.

Each system's :class:`~repro.core.systems.SystemSpec` declares the
components it reads and writes.  Two systems *conflict* when either
writes a component the other touches; systems without a spec conflict
with everything.  :class:`ConflictGraph` materializes those pairwise
edges (with write-write detection for diagnostics), and
:func:`build_tick_plan` cuts the scheduler order into **phases**.

Phase construction is deliberately *order-preserving*: a phase is a
maximal **consecutive** run of mutually-non-conflicting, effect-capable
systems in scheduler order, and anything else becomes a singleton serial
phase.  A graph coloring could pack more systems per phase, but it would
reorder execution between non-conflicting systems — and since systems
may emit events whose handlers mutate arbitrary state, only the
consecutive-block cut preserves the serial event order exactly.  That is
what keeps ``state_hash`` (and the event history) bit-identical to
serial execution, which the determinism tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.systems import System


class ConflictGraph:
    """Pairwise conflict edges between scheduled systems.

    Built from the systems' specs; queryable by name.  Mostly a
    diagnostic/introspection structure — phase construction only needs
    the pairwise test — but it is what ``explain()`` renders and what the
    scheduler unit tests assert against.
    """

    def __init__(self, systems: "list[System]"):
        self.names = [s.name for s in systems]
        self._specs = {s.name: s.spec for s in systems}
        self._edges: set[frozenset[str]] = set()
        self._write_write: set[frozenset[str]] = set()
        for i, a in enumerate(systems):
            for b in systems[i + 1 :]:
                sa, sb = a.spec, b.spec
                if sa is None or sb is None or sa.conflicts_with(sb):
                    self._edges.add(frozenset((a.name, b.name)))
                    if sa is not None and sb is not None and sa.write_write_conflict(sb):
                        self._write_write.add(frozenset((a.name, b.name)))

    def conflicts(self, a: str, b: str) -> bool:
        """Whether systems ``a`` and ``b`` may not share a phase."""
        return frozenset((a, b)) in self._edges

    def write_write(self, a: str, b: str) -> bool:
        """Whether ``a`` and ``b`` both write some common component."""
        return frozenset((a, b)) in self._write_write

    def edges(self) -> list[tuple[str, str]]:
        """All conflict edges as sorted name pairs, sorted."""
        return sorted(tuple(sorted(e)) for e in self._edges)

    def degree(self, name: str) -> int:
        """Number of systems ``name`` conflicts with."""
        return sum(1 for e in self._edges if name in e)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConflictGraph({len(self.names)} systems, {len(self._edges)} edges)"


@dataclass
class Phase:
    """One tick phase: systems that may run concurrently."""

    systems: "list[System]" = field(default_factory=list)

    @property
    def concurrent(self) -> bool:
        """Whether the phase holds more than one system."""
        return len(self.systems) > 1

    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.systems)


@dataclass
class TickPlan:
    """The phased execution plan for one scheduler configuration."""

    phases: list[Phase]
    graph: ConflictGraph

    @property
    def parallelism(self) -> float:
        """Mean systems per phase (1.0 == fully serial)."""
        n = sum(len(p.systems) for p in self.phases)
        return n / len(self.phases) if self.phases else 0.0

    def describe(self) -> str:
        """Multi-line EXPLAIN of the phase structure."""
        lines = []
        for i, phase in enumerate(self.phases):
            kind = "parallel" if phase.concurrent else "serial"
            lines.append(f"phase {i} ({kind}): {', '.join(phase.names())}")
        return "\n".join(lines)


def build_tick_plan(systems: "list[System]") -> TickPlan:
    """Partition ``systems`` (in scheduler order) into phases.

    A system joins the current phase only when (a) it supports
    state-effect execution, (b) so does everything already in the phase,
    and (c) it conflicts with none of them.  Any other system closes the
    current phase and runs alone.  Consecutive-block construction keeps
    cross-system execution order identical to serial — see the module
    docstring for why that is load-bearing.
    """
    graph = ConflictGraph(systems)
    phases: list[Phase] = []
    current: list = []

    def close() -> None:
        nonlocal current
        if current:
            phases.append(Phase(current))
            current = []

    for system in systems:
        spec = system.spec
        if spec is None or not system.supports_effects:
            close()
            phases.append(Phase([system]))
            continue
        if any(spec.conflicts_with(prev.spec) for prev in current):
            close()
        current.append(system)
    close()
    return TickPlan(phases=phases, graph=graph)
