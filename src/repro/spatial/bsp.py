"""Binary space partitioning (BSP) tree over line segments, plus a point
index built on its leaves.

Games historically used BSP trees for *static level geometry*: walls are
recursively chosen as splitting hyperplanes until each leaf is a convex
open region.  The classic uses are (a) visibility / painter's-order
traversal and (b) constant-time point-location into convex cells, which in
turn gives a coarse spatial index for dynamic entities ("which room is
this monster in?").

:class:`BSPTree` builds from wall segments (heuristic: pick the splitter
minimising splits + imbalance), supports point location, front-to-back
traversal from an eye point, and segment (line-of-sight) queries.
:class:`BSPPointIndex` layers the common structure protocol on top so the
BSP can compete in experiment E2.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.errors import SpatialError
from repro.spatial.geometry import AABB, Segment, Vec2

_EPS = 1e-9


class _BSPNode:
    __slots__ = ("splitter", "coplanar", "front", "back", "leaf_id")

    def __init__(self) -> None:
        self.splitter: Segment | None = None
        self.coplanar: list[Segment] = []
        self.front: "_BSPNode | None" = None
        self.back: "_BSPNode | None" = None
        self.leaf_id: int = -1  # >= 0 iff leaf

    @property
    def is_leaf(self) -> bool:
        return self.splitter is None


def _classify(seg: Segment, plane: Segment) -> tuple[str, list[Segment], list[Segment]]:
    """Classify ``seg`` against ``plane``: returns (kind, fronts, backs).

    kind is "front", "back", "coplanar", or "split"; for "split" the
    fronts/backs lists carry the pieces.
    """
    da = plane.side_of(seg.a)
    db = plane.side_of(seg.b)
    if abs(da) < _EPS and abs(db) < _EPS:
        return "coplanar", [], []
    if da >= -_EPS and db >= -_EPS:
        return "front", [], []
    if da <= _EPS and db <= _EPS:
        return "back", [], []
    # Proper split: find the intersection parameter.
    t = da / (da - db)
    mid = seg.a.lerp(seg.b, t)
    piece_a = Segment(seg.a, mid)
    piece_b = Segment(mid, seg.b)
    if da > 0:
        return "split", [piece_a], [piece_b]
    return "split", [piece_b], [piece_a]


class BSPTree:
    """BSP tree over static wall segments.

    Parameters
    ----------
    segments:
        The level's wall segments.
    bounds:
        World bounds (used to bound leaf cells and for statistics).
    max_depth:
        Safety cap on recursion.
    """

    def __init__(self, segments: list[Segment], bounds: AABB, max_depth: int = 32):
        self.bounds = bounds
        self.segment_count = len(segments)
        self._leaf_count = 0
        self.splits_performed = 0
        self._root = self._build(list(segments), 0, max_depth)
        if self._root.is_leaf and self._root.leaf_id < 0:
            self._root.leaf_id = self._alloc_leaf()

    # -- construction --------------------------------------------------------------

    def _build(self, segments: list[Segment], depth: int, max_depth: int) -> _BSPNode:
        node = _BSPNode()
        if not segments or depth >= max_depth:
            node.leaf_id = self._alloc_leaf()
            return node
        splitter = self._choose_splitter(segments)
        node.splitter = splitter
        fronts: list[Segment] = []
        backs: list[Segment] = []
        for seg in segments:
            if seg is splitter:
                node.coplanar.append(seg)
                continue
            kind, fs, bs = _classify(seg, splitter)
            if kind == "coplanar":
                node.coplanar.append(seg)
            elif kind == "front":
                fronts.append(seg)
            elif kind == "back":
                backs.append(seg)
            else:
                self.splits_performed += 1
                fronts.extend(fs)
                backs.extend(bs)
        node.front = self._build(fronts, depth + 1, max_depth)
        node.back = self._build(backs, depth + 1, max_depth)
        return node

    def _choose_splitter(self, segments: list[Segment], sample: int = 8) -> Segment:
        """Pick the splitter minimising ``splits*3 + |front-back|``.

        Only a sample of candidates is scored — the standard engineering
        compromise (full scoring is O(n²) at every level).
        """
        step = max(1, len(segments) // sample)
        best_seg = segments[0]
        best_score = math.inf
        for candidate in segments[::step]:
            splits = front = back = 0
            for seg in segments:
                if seg is candidate:
                    continue
                kind, _f, _b = _classify(seg, candidate)
                if kind == "split":
                    splits += 1
                elif kind == "front":
                    front += 1
                elif kind == "back":
                    back += 1
            score = splits * 3 + abs(front - back)
            if score < best_score:
                best_score = score
                best_seg = candidate
        return best_seg

    def _alloc_leaf(self) -> int:
        leaf = self._leaf_count
        self._leaf_count += 1
        return leaf

    # -- queries ------------------------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        """Number of convex leaf cells."""
        return self._leaf_count

    def locate(self, x: float, y: float) -> int:
        """Leaf cell id containing the point (ties resolve to front)."""
        p = Vec2(x, y)
        node = self._root
        while not node.is_leaf:
            side = node.splitter.side_of(p)
            node = node.front if side >= 0 else node.back
        return node.leaf_id

    def front_to_back(self, eye_x: float, eye_y: float) -> list[int]:
        """Leaf ids in front-to-back order from the eye point.

        This ordering is what renderers (and audio occlusion, and AI
        visibility sweeps) consume.
        """
        eye = Vec2(eye_x, eye_y)
        out: list[int] = []

        def walk(node: _BSPNode) -> None:
            if node.is_leaf:
                out.append(node.leaf_id)
                return
            side = node.splitter.side_of(eye)
            near, far = (node.front, node.back) if side >= 0 else (node.back, node.front)
            walk(near)
            walk(far)

        walk(self._root)
        return out

    def line_of_sight(self, ax: float, ay: float, bx: float, by: float) -> bool:
        """True when the segment A→B crosses no wall segment.

        Walks only the BSP nodes the segment straddles — O(depth + walls
        actually near the ray) instead of O(all walls).
        """
        query = Segment(Vec2(ax, ay), Vec2(bx, by))

        def walk(node: _BSPNode, seg: Segment) -> bool:
            if node.is_leaf:
                return True
            for wall in node.coplanar:
                if seg.intersects(wall):
                    return False
            kind, fs, bs = _classify(seg, node.splitter)
            if kind == "front":
                return walk(node.front, seg)
            if kind == "back":
                return walk(node.back, seg)
            if kind == "coplanar":
                # runs along the plane; check both sides conservatively
                return walk(node.front, seg) and walk(node.back, seg)
            return all(walk(node.front, f) for f in fs) and all(
                walk(node.back, b) for b in bs
            )

        return walk(self._root, query)


class BSPPointIndex:
    """Dynamic point index over a static BSP's convex cells.

    Entities hash into their containing leaf cell; range/circle queries
    locate candidate cells by testing the query region against the
    splitting planes.  This is exactly how shooters bucket entities by
    BSP leaf for PVS (potentially visible set) filtering.
    """

    def __init__(self, tree: BSPTree):
        self.tree = tree
        self.bounds = tree.bounds
        self._cells: dict[int, dict[int, tuple[float, float]]] = defaultdict(dict)
        self._pos: dict[int, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._pos

    def insert(self, item_id: int, x: float, y: float) -> None:
        """Insert a point into its leaf cell."""
        if item_id in self._pos:
            raise SpatialError(f"id {item_id} already in BSP index")
        leaf = self.tree.locate(x, y)
        self._cells[leaf][item_id] = (x, y)
        self._pos[item_id] = (x, y)

    def remove(self, item_id: int, x: float, y: float) -> None:
        """Remove a point."""
        if item_id not in self._pos:
            raise SpatialError(f"id {item_id} not in BSP index")
        leaf = self.tree.locate(x, y)
        cell = self._cells.get(leaf, {})
        if item_id not in cell:
            raise SpatialError(f"id {item_id} not in leaf {leaf}; stale position?")
        del cell[item_id]
        del self._pos[item_id]

    def move(self, item_id: int, ox: float, oy: float, nx: float, ny: float) -> None:
        """Relocate a point (O(1) when it stays in its convex cell)."""
        old_leaf = self.tree.locate(ox, oy)
        new_leaf = self.tree.locate(nx, ny)
        if old_leaf == new_leaf:
            self._cells[old_leaf][item_id] = (nx, ny)
            self._pos[item_id] = (nx, ny)
            return
        self.remove(item_id, ox, oy)
        self.insert(item_id, nx, ny)

    def query_circle(self, cx: float, cy: float, r: float) -> list[int]:
        """Ids within the closed disc (walks only straddled subtrees)."""
        if r < 0:
            raise SpatialError("radius must be non-negative")
        r2 = r * r
        out: list[int] = []
        center = Vec2(cx, cy)

        def walk(node: _BSPNode) -> None:
            if node.is_leaf:
                for item_id, (x, y) in self._cells.get(node.leaf_id, {}).items():
                    dx, dy = x - cx, y - cy
                    if dx * dx + dy * dy <= r2:
                        out.append(item_id)
                return
            side = node.splitter.side_of(center)
            dist = self._plane_distance(node.splitter, center)
            if side >= 0:
                walk(node.front)
                if dist <= r:
                    walk(node.back)
            else:
                walk(node.back)
                if dist <= r:
                    walk(node.front)

        walk(self.tree._root)
        return out

    def query_range(self, box: AABB) -> list[int]:
        """Ids inside the closed box."""
        # Conservative: circle through the box's circumradius then filter.
        c = box.center
        radius = math.hypot(box.width, box.height) / 2
        return [
            item_id
            for item_id in self.query_circle(c.x, c.y, radius)
            if box.contains_point(*self._pos[item_id])
        ]

    def query_knn(self, cx: float, cy: float, k: int) -> list[tuple[int, float]]:
        """K nearest, by expanding circle doubling (simple but correct)."""
        if k <= 0:
            raise SpatialError("k must be positive")
        if not self._pos:
            return []
        r = 1.0
        span = max(self.bounds.width, self.bounds.height)
        while True:
            hits = self.query_circle(cx, cy, r)
            if len(hits) >= k or r > span * 2:
                scored = sorted(
                    (math.hypot(x - cx, y - cy), item_id)
                    for item_id, (x, y) in (
                        (h, self._pos[h]) for h in (hits if len(hits) >= k else self._pos)
                    )
                )
                return [(item_id, d) for d, item_id in scored[:k]]
            r *= 2

    def all_ids(self) -> list[int]:
        """All stored ids."""
        return list(self._pos)

    def cell_population(self) -> dict[int, int]:
        """Leaf id -> population (load metric)."""
        return {leaf: len(cell) for leaf, cell in self._cells.items() if cell}

    @staticmethod
    def _plane_distance(splitter: Segment, p: Vec2) -> float:
        direction = splitter.b - splitter.a
        length = direction.length()
        if length == 0:
            return 0.0
        return abs(direction.cross(p - splitter.a)) / length
