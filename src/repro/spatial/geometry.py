"""2-D/3-D geometry primitives shared by all spatial structures.

Everything here is a plain immutable value type: vectors, axis-aligned
boxes, segments, and the small set of intersection tests the indexes and
the navmesh need.  Kept dependency-free and exact about edge cases
(touching counts as intersecting, consistent with closed ranges in the
sorted index).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SpatialError


@dataclass(frozen=True)
class Vec2:
    """Immutable 2-D vector with the usual arithmetic."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, k: float) -> "Vec2":
        return Vec2(self.x * k, self.y * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec2") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """2-D cross product (z of the 3-D cross)."""
        return self.x * other.y - self.y * other.x

    def length(self) -> float:
        """Euclidean norm."""
        return math.hypot(self.x, self.y)

    def length_sq(self) -> float:
        """Squared norm (avoids the sqrt in hot loops)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction; raises on zero vector."""
        n = self.length()
        if n == 0.0:
            raise SpatialError("cannot normalize a zero vector")
        return Vec2(self.x / n, self.y / n)

    def perp(self) -> "Vec2":
        """Counter-clockwise perpendicular."""
        return Vec2(-self.y, self.x)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: self at t=0, other at t=1."""
        return Vec2(
            self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t
        )

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Vec3:
    """Immutable 3-D vector (used by the octree and orbital workloads)."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, k: float) -> "Vec3":
        return Vec3(self.x * k, self.y * k, self.z * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec3") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def length(self) -> float:
        """Euclidean norm."""
        return math.sqrt(self.dot(self))

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to ``other``."""
        return (self - other).length()


@dataclass(frozen=True)
class AABB:
    """Closed axis-aligned 2-D box ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise SpatialError(
                f"degenerate AABB: ({self.min_x},{self.min_y})-"
                f"({self.max_x},{self.max_y})"
            )

    @classmethod
    def from_center(cls, cx: float, cy: float, half_w: float, half_h: float) -> "AABB":
        """Box centred at (cx, cy) with the given half-extents."""
        return cls(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    @classmethod
    def around_circle(cls, cx: float, cy: float, r: float) -> "AABB":
        """Smallest box containing the circle (the standard query prefilter)."""
        return cls(cx - r, cy - r, cx + r, cy + r)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Box area."""
        return self.width * self.height

    @property
    def center(self) -> Vec2:
        return Vec2((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment test."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_box(self, other: "AABB") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "AABB") -> bool:
        """Closed intersection test (touching counts)."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersects_circle(self, cx: float, cy: float, r: float) -> bool:
        """Whether the box intersects the closed disc at (cx, cy)."""
        nx = min(max(cx, self.min_x), self.max_x)
        ny = min(max(cy, self.min_y), self.max_y)
        dx, dy = cx - nx, cy - ny
        return dx * dx + dy * dy <= r * r

    def distance_sq_to_point(self, x: float, y: float) -> float:
        """Squared distance from the box to a point (0 when inside)."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return dx * dx + dy * dy

    def quadrants(self) -> tuple["AABB", "AABB", "AABB", "AABB"]:
        """Split into NW, NE, SW, SE children (used by the quadtree)."""
        cx, cy = (self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2
        return (
            AABB(self.min_x, cy, cx, self.max_y),  # NW
            AABB(cx, cy, self.max_x, self.max_y),  # NE
            AABB(self.min_x, self.min_y, cx, cy),  # SW
            AABB(cx, self.min_y, self.max_x, cy),  # SE
        )

    def expanded(self, margin: float) -> "AABB":
        """Box grown by ``margin`` on every side."""
        return AABB(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )


@dataclass(frozen=True)
class Segment:
    """Directed 2-D line segment from ``a`` to ``b``."""

    a: Vec2
    b: Vec2

    def length(self) -> float:
        return self.a.distance_to(self.b)

    def midpoint(self) -> Vec2:
        return self.a.lerp(self.b, 0.5)

    def side_of(self, p: Vec2) -> float:
        """> 0 when ``p`` is left of the segment direction, < 0 right, 0 on."""
        return (self.b - self.a).cross(p - self.a)

    def intersects(self, other: "Segment") -> bool:
        """Proper or touching segment intersection."""
        d1 = self.side_of(other.a)
        d2 = self.side_of(other.b)
        d3 = other.side_of(self.a)
        d4 = other.side_of(self.b)
        if ((d1 > 0) != (d2 > 0) or d1 == 0 or d2 == 0) and (
            (d3 > 0) != (d4 > 0) or d3 == 0 or d4 == 0
        ):
            # Collinear cases: confirm overlap via bounding boxes.
            if d1 == 0 and d2 == 0 and d3 == 0 and d4 == 0:
                return self._bbox_overlap(other)
            return True
        return False

    def _bbox_overlap(self, other: "Segment") -> bool:
        return (
            min(self.a.x, self.b.x) <= max(other.a.x, other.b.x)
            and min(other.a.x, other.b.x) <= max(self.a.x, self.b.x)
            and min(self.a.y, self.b.y) <= max(other.a.y, other.b.y)
            and min(other.a.y, other.b.y) <= max(self.a.y, self.b.y)
        )

    def closest_point_to(self, p: Vec2) -> Vec2:
        """Closest point on the segment to ``p``."""
        ab = self.b - self.a
        denom = ab.length_sq()
        if denom == 0.0:
            return self.a
        t = max(0.0, min(1.0, (p - self.a).dot(ab) / denom))
        return self.a.lerp(self.b, t)


def polygon_area(points: list[Vec2]) -> float:
    """Signed area of a simple polygon (positive = counter-clockwise)."""
    if len(points) < 3:
        raise SpatialError("polygon needs at least 3 vertices")
    total = 0.0
    for i, p in enumerate(points):
        q = points[(i + 1) % len(points)]
        total += p.cross(q)
    return total / 2.0


def polygon_centroid(points: list[Vec2]) -> Vec2:
    """Centroid of a simple polygon."""
    area = polygon_area(points)
    if area == 0.0:
        # Degenerate: fall back to vertex mean.
        sx = sum(p.x for p in points) / len(points)
        sy = sum(p.y for p in points) / len(points)
        return Vec2(sx, sy)
    cx = cy = 0.0
    for i, p in enumerate(points):
        q = points[(i + 1) % len(points)]
        w = p.cross(q)
        cx += (p.x + q.x) * w
        cy += (p.y + q.y) * w
    return Vec2(cx / (6.0 * area), cy / (6.0 * area))


def point_in_polygon(x: float, y: float, points: list[Vec2]) -> bool:
    """Ray-casting point-in-polygon test (boundary counts as inside)."""
    inside = False
    n = len(points)
    for i in range(n):
        p, q = points[i], points[(i + 1) % n]
        # boundary check via closest point
        if Segment(p, q).closest_point_to(Vec2(x, y)).distance_to(Vec2(x, y)) < 1e-12:
            return True
        if (p.y > y) != (q.y > y):
            x_cross = p.x + (y - p.y) * (q.x - p.x) / (q.y - p.y)
            if x < x_cross:
                inside = not inside
    return inside
