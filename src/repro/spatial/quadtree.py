"""Point quadtree with node capacity splitting and merge-on-underflow.

The quadtree adapts to clustered data: dense regions subdivide, empty
regions stay one node.  This is the structure that wins experiment E2 on
clustered workloads, where the uniform grid either over-allocates cells or
puts whole clusters in one bucket.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import SpatialError
from repro.spatial.geometry import AABB


class _Node:
    """One quadtree node: either a leaf with points or four children."""

    __slots__ = ("box", "points", "children", "count")

    def __init__(self, box: AABB):
        self.box = box
        self.points: dict[int, tuple[float, float]] = {}
        self.children: list["_Node"] | None = None
        self.count = 0  # points in this subtree

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """Bounded point quadtree.

    Parameters
    ----------
    bounds:
        World bounds; inserts outside raise :class:`SpatialError`.
    capacity:
        Leaf capacity before splitting.
    max_depth:
        Depth cap: leaves at the cap hold arbitrarily many points, which
        bounds pathological behaviour when many points coincide.
    """

    def __init__(self, bounds: AABB, capacity: int = 8, max_depth: int = 12):
        if capacity < 1:
            raise SpatialError("capacity must be >= 1")
        self.bounds = bounds
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _Node(bounds)
        self._pos: dict[int, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._pos

    # -- mutation ---------------------------------------------------------------

    def insert(self, item_id: int, x: float, y: float) -> None:
        """Insert a point; raises if out of bounds or id already present."""
        if item_id in self._pos:
            raise SpatialError(f"id {item_id} already in quadtree")
        if not self.bounds.contains_point(x, y):
            raise SpatialError(f"point ({x}, {y}) outside quadtree bounds")
        self._pos[item_id] = (x, y)
        self._insert(self._root, item_id, x, y, 0)

    def remove(self, item_id: int, x: float, y: float) -> None:
        """Remove a point by id and position."""
        if self._pos.get(item_id) is None:
            raise SpatialError(f"id {item_id} not in quadtree")
        self._remove(self._root, item_id, x, y)
        del self._pos[item_id]

    def move(self, item_id: int, ox: float, oy: float, nx: float, ny: float) -> None:
        """Relocate a point."""
        self.remove(item_id, ox, oy)
        self.insert(item_id, nx, ny)

    # -- queries -------------------------------------------------------------------

    def query_range(self, box: AABB) -> list[int]:
        """Ids of points inside the closed box."""
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.count == 0 or not node.box.intersects(box):
                continue
            if box.contains_box(node.box):
                self._collect(node, out)
                continue
            if node.is_leaf:
                for item_id, (x, y) in node.points.items():
                    if box.contains_point(x, y):
                        out.append(item_id)
            else:
                stack.extend(node.children)
        return out

    def query_circle(self, cx: float, cy: float, r: float) -> list[int]:
        """Ids of points within the closed disc at (cx, cy)."""
        if r < 0:
            raise SpatialError("radius must be non-negative")
        r2 = r * r
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.count == 0 or not node.box.intersects_circle(cx, cy, r):
                continue
            if node.is_leaf:
                for item_id, (x, y) in node.points.items():
                    dx, dy = x - cx, y - cy
                    if dx * dx + dy * dy <= r2:
                        out.append(item_id)
            else:
                stack.extend(node.children)
        return out

    def query_knn(self, cx: float, cy: float, k: int) -> list[tuple[int, float]]:
        """K nearest points, best-first search over node distance bounds."""
        if k <= 0:
            raise SpatialError("k must be positive")
        heap: list[tuple[float, int, object]] = [(0.0, 0, self._root)]
        results: list[tuple[float, int]] = []
        counter = 1
        while heap and len(results) < k:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, _Node):
                if item.count == 0:
                    continue
                if item.is_leaf:
                    for item_id, (x, y) in item.points.items():
                        d = math.hypot(x - cx, y - cy)
                        heapq.heappush(heap, (d, counter, item_id))
                        counter += 1
                else:
                    for child in item.children:
                        d2 = child.box.distance_sq_to_point(cx, cy)
                        heapq.heappush(heap, (math.sqrt(d2), counter, child))
                        counter += 1
            else:
                results.append((dist, item))
        return [(item_id, d) for d, item_id in results]

    def depth(self) -> int:
        """Current maximum depth (diagnostic)."""

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(_depth(c) for c in node.children)

        return _depth(self._root)

    def all_ids(self) -> list[int]:
        """All stored ids."""
        return list(self._pos)

    # -- internals --------------------------------------------------------------------

    def _insert(self, node: _Node, item_id: int, x: float, y: float, depth: int) -> None:
        node.count += 1
        if node.is_leaf:
            node.points[item_id] = (x, y)
            if len(node.points) > self.capacity and depth < self.max_depth:
                self._split(node, depth)
            return
        self._insert(self._child_for(node, x, y), item_id, x, y, depth + 1)

    def _split(self, node: _Node, depth: int) -> None:
        node.children = [_Node(b) for b in node.box.quadrants()]
        points = node.points
        node.points = {}
        for item_id, (x, y) in points.items():
            child = self._child_for(node, x, y)
            self._insert(child, item_id, x, y, depth + 1)

    def _child_for(self, node: _Node, x: float, y: float) -> _Node:
        cx = (node.box.min_x + node.box.max_x) / 2
        cy = (node.box.min_y + node.box.max_y) / 2
        if y >= cy:
            return node.children[1] if x >= cx else node.children[0]
        return node.children[3] if x >= cx else node.children[2]

    def _remove(self, node: _Node, item_id: int, x: float, y: float) -> None:
        if node.is_leaf:
            if item_id not in node.points:
                raise SpatialError(
                    f"id {item_id} not found at ({x}, {y}); stale position?"
                )
            del node.points[item_id]
            node.count -= 1
            return
        child = self._child_for(node, x, y)
        self._remove(child, item_id, x, y)
        node.count -= 1
        if node.count <= self.capacity:
            self._merge(node)

    def _merge(self, node: _Node) -> None:
        points: dict[int, tuple[float, float]] = {}
        stack = list(node.children or ())
        while stack:
            child = stack.pop()
            if child.is_leaf:
                points.update(child.points)
            else:
                stack.extend(child.children)
        node.children = None
        node.points = points

    def _collect(self, node: _Node, out: list[int]) -> None:
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                out.extend(n.points)
            else:
                stack.extend(n.children)
