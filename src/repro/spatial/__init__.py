"""Spatial substrate: geometry, indexes (grid/quadtree/k-d/octree/BSP),
navigation meshes, and distance-join algorithms."""

from repro.spatial.bsp import BSPPointIndex, BSPTree
from repro.spatial.geometry import (
    AABB,
    Segment,
    Vec2,
    Vec3,
    point_in_polygon,
    polygon_area,
    polygon_centroid,
)
from repro.spatial.grid import UniformGrid
from repro.spatial.joins import (
    grid_join,
    index_join,
    interaction_candidates,
    join_pairs_per_entity,
    nested_loop_join,
    sweep_join,
)
from repro.spatial.kdtree import KDTree
from repro.spatial.navmesh import (
    NavMesh,
    NavPolygon,
    Portal,
    connect_rectangles,
    funnel_smooth,
    grid_to_navmesh,
)
from repro.spatial.octree import AABB3, Octree
from repro.spatial.quadtree import QuadTree

__all__ = [
    "AABB",
    "AABB3",
    "BSPPointIndex",
    "BSPTree",
    "KDTree",
    "NavMesh",
    "NavPolygon",
    "Octree",
    "Portal",
    "QuadTree",
    "Segment",
    "UniformGrid",
    "Vec2",
    "Vec3",
    "connect_rectangles",
    "funnel_smooth",
    "grid_join",
    "grid_to_navmesh",
    "index_join",
    "interaction_candidates",
    "join_pairs_per_entity",
    "nested_loop_join",
    "point_in_polygon",
    "polygon_area",
    "polygon_centroid",
    "sweep_join",
]
