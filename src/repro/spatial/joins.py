"""Distance-join algorithms: the database view of "which objects interact".

The tutorial's core performance observation is that scripted pairwise
interaction checks are Ω(n²), while "the techniques that game programmers
have been using to optimize physics calculations … look very similar to
the techniques that database engines use for join processing".  This
module makes that analogy literal: an interaction test *is* a spatial
self-join ``σ(dist(a,b) ≤ r)``, and we provide the classic join
strategies over point sets:

* :func:`nested_loop_join` — the naive script, O(n²);
* :func:`grid_join` — partitioned hash join on grid cells;
* :func:`sweep_join` — sort-merge style plane sweep on x;
* :func:`index_join` — index-nested-loop probing any structure with
  ``query_circle``.

All produce the identical set of unordered id pairs (the property tests
assert this), differing only in cost — which experiment E3 measures.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SpatialError
from repro.spatial.grid import UniformGrid

Points = Mapping[int, tuple[float, float]]


def _check_radius(r: float) -> None:
    if r < 0:
        raise SpatialError("join radius must be non-negative")


def nested_loop_join(points: Points, r: float) -> set[tuple[int, int]]:
    """All unordered pairs within distance ``r`` — the Ω(n²) baseline.

    This is exactly what a designer's double loop over all game objects
    computes; it is correct and catastrophically slow past a few thousand
    entities.
    """
    _check_radius(r)
    r2 = r * r
    items = list(points.items())
    out: set[tuple[int, int]] = set()
    for i, (id_a, (ax, ay)) in enumerate(items):
        for id_b, (bx, by) in items[i + 1:]:
            dx, dy = ax - bx, ay - by
            if dx * dx + dy * dy <= r2:
                out.add((min(id_a, id_b), max(id_a, id_b)))
    return out


def grid_join(points: Points, r: float, cell_size: float | None = None) -> set[tuple[int, int]]:
    """Partitioned join: bucket points into a grid, compare neighbours.

    Expected O(n · d) where d is local density — the spatial analogue of
    a partitioned hash join.  ``cell_size`` defaults to ``r`` (the classic
    tuning).
    """
    _check_radius(r)
    if not points:
        return set()
    size = cell_size if cell_size is not None else max(r, 1e-9)
    grid = UniformGrid(size)
    for item_id, (x, y) in points.items():
        grid.insert(item_id, x, y)
    return set(grid.pairs_within(r))


def sweep_join(points: Points, r: float) -> set[tuple[int, int]]:
    """Plane-sweep join: sort by x, compare within an x-window of ``r``.

    O(n log n + n·w) where w is the average window population — the
    sort-merge join of the spatial world.  Wins when points are spread
    along one axis; degrades when they stack vertically.
    """
    _check_radius(r)
    r2 = r * r
    order = sorted(points.items(), key=lambda kv: kv[1][0])
    out: set[tuple[int, int]] = set()
    window_start = 0
    for i, (id_a, (ax, ay)) in enumerate(order):
        while order[window_start][1][0] < ax - r:
            window_start += 1
        for j in range(window_start, i):
            id_b, (bx, by) = order[j]
            dy = ay - by
            if dy * dy > r2:
                continue
            dx = ax - bx
            if dx * dx + dy * dy <= r2:
                out.add((min(id_a, id_b), max(id_a, id_b)))
    return out


def index_join(
    points: Points, r: float, structure: object
) -> set[tuple[int, int]]:
    """Index-nested-loop join: probe a prebuilt spatial index per point.

    ``structure`` must contain exactly the ids in ``points`` and expose
    ``query_circle(x, y, r)``.  This models the steady-state game case
    where the index is maintained incrementally and the join reuses it
    for free.
    """
    _check_radius(r)
    out: set[tuple[int, int]] = set()
    for item_id, (x, y) in points.items():
        for other in structure.query_circle(x, y, r):  # type: ignore[attr-defined]
            if other != item_id:
                out.add((min(item_id, other), max(item_id, other)))
    return out


def join_pairs_per_entity(
    pairs: Iterable[tuple[int, int]]
) -> dict[int, list[int]]:
    """Group join output into per-entity neighbour lists.

    The shape scripts consume: ``neighbours[eid] -> [other, ...]``.
    """
    out: dict[int, list[int]] = {}
    for a, b in pairs:
        out.setdefault(a, []).append(b)
        out.setdefault(b, []).append(a)
    return out


def interaction_candidates(
    points: Points, r: float, strategy: str = "grid", structure: object = None
) -> set[tuple[int, int]]:
    """Strategy dispatcher used by systems and benchmarks.

    ``strategy`` is one of ``naive``, ``grid``, ``sweep``, ``index``.
    """
    if strategy == "naive":
        return nested_loop_join(points, r)
    if strategy == "grid":
        return grid_join(points, r)
    if strategy == "sweep":
        return sweep_join(points, r)
    if strategy == "index":
        if structure is None:
            raise SpatialError("index strategy requires a structure")
        return index_join(points, r, structure)
    raise SpatialError(
        f"unknown join strategy {strategy!r}; "
        "expected naive | grid | sweep | index"
    )
