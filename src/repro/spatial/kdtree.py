"""2-D k-d tree for mostly-static point sets.

k-d trees give excellent k-NN performance on static data (level geometry,
spawn points, loot tables keyed by position) but degrade under heavy
updates; this implementation therefore supports removals via tombstones
and exposes :meth:`rebuild` — the standard "rebuild at the loading screen"
pattern games use.  Experiment E2 shows exactly this trade-off.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import SpatialError
from repro.spatial.geometry import AABB


class _KDNode:
    __slots__ = ("item_id", "x", "y", "axis", "left", "right", "dead")

    def __init__(self, item_id: int, x: float, y: float, axis: int):
        self.item_id = item_id
        self.x = x
        self.y = y
        self.axis = axis
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None
        self.dead = False


class KDTree:
    """Point k-d tree with tombstone deletion and bulk (median) rebuild.

    ``bounds`` is advisory (planner statistics); points outside it are
    accepted.  After many mutations call :meth:`rebuild` to restore
    balance; :attr:`tombstone_fraction` tells you when.
    """

    def __init__(self, bounds: AABB | None = None):
        self.bounds = bounds
        self._root: _KDNode | None = None
        self._pos: dict[int, tuple[float, float]] = {}
        self._dead_count = 0

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._pos

    @property
    def tombstone_fraction(self) -> float:
        """Fraction of tree nodes that are tombstones (rebuild heuristic)."""
        total = len(self._pos) + self._dead_count
        return self._dead_count / total if total else 0.0

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, points: dict[int, tuple[float, float]], bounds: AABB | None = None) -> "KDTree":
        """Bulk-build a balanced tree from ``{id: (x, y)}``."""
        tree = cls(bounds)
        tree._pos = dict(points)
        items = [(item_id, x, y) for item_id, (x, y) in points.items()]
        tree._root = tree._build(items, 0)
        return tree

    def rebuild(self) -> None:
        """Rebalance: rebuild from live points, dropping tombstones."""
        items = [(item_id, x, y) for item_id, (x, y) in self._pos.items()]
        self._root = self._build(items, 0)
        self._dead_count = 0

    def _build(self, items: list[tuple[int, float, float]], axis: int) -> _KDNode | None:
        if not items:
            return None
        key = (lambda t: t[1]) if axis == 0 else (lambda t: t[2])
        items.sort(key=key)
        mid = len(items) // 2
        item_id, x, y = items[mid]
        node = _KDNode(item_id, x, y, axis)
        node.left = self._build(items[:mid], 1 - axis)
        node.right = self._build(items[mid + 1:], 1 - axis)
        return node

    # -- mutation ------------------------------------------------------------------

    def insert(self, item_id: int, x: float, y: float) -> None:
        """Insert a point (unbalanced path insert)."""
        if item_id in self._pos:
            raise SpatialError(f"id {item_id} already in kd-tree")
        self._pos[item_id] = (x, y)
        new = _KDNode(item_id, x, y, 0)
        if self._root is None:
            self._root = new
            return
        node = self._root
        while True:
            axis = node.axis
            goes_left = (x < node.x) if axis == 0 else (y < node.y)
            nxt = node.left if goes_left else node.right
            if nxt is None:
                new.axis = 1 - axis
                if goes_left:
                    node.left = new
                else:
                    node.right = new
                return
            node = nxt

    def remove(self, item_id: int, x: float, y: float) -> None:
        """Tombstone the node holding ``item_id``."""
        if item_id not in self._pos:
            raise SpatialError(f"id {item_id} not in kd-tree")
        node = self._find(self._root, item_id, x, y)
        if node is None:
            raise SpatialError(f"id {item_id} not found at ({x}, {y})")
        node.dead = True
        self._dead_count += 1
        del self._pos[item_id]

    def move(self, item_id: int, ox: float, oy: float, nx: float, ny: float) -> None:
        """Relocate a point (tombstone + fresh insert)."""
        self.remove(item_id, ox, oy)
        self.insert(item_id, nx, ny)

    def _find(self, node: _KDNode | None, item_id: int, x: float, y: float) -> _KDNode | None:
        while node is not None:
            if node.item_id == item_id and not node.dead:
                return node
            if node.axis == 0:
                # equal coordinates may sit on either side after median builds
                if x < node.x:
                    node = node.left
                elif x > node.x:
                    node = node.right
                else:
                    found = self._find(node.left, item_id, x, y)
                    return found if found is not None else self._find(node.right, item_id, x, y)
            else:
                if y < node.y:
                    node = node.left
                elif y > node.y:
                    node = node.right
                else:
                    found = self._find(node.left, item_id, x, y)
                    return found if found is not None else self._find(node.right, item_id, x, y)
        return None

    # -- queries ----------------------------------------------------------------------

    def query_range(self, box: AABB) -> list[int]:
        """Ids of live points inside the closed box."""
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if not node.dead and box.contains_point(node.x, node.y):
                out.append(node.item_id)
            if node.axis == 0:
                if box.min_x <= node.x:
                    stack.append(node.left)
                if box.max_x >= node.x:
                    stack.append(node.right)
            else:
                if box.min_y <= node.y:
                    stack.append(node.left)
                if box.max_y >= node.y:
                    stack.append(node.right)
        return out

    def query_circle(self, cx: float, cy: float, r: float) -> list[int]:
        """Ids of live points within the closed disc."""
        if r < 0:
            raise SpatialError("radius must be non-negative")
        box = AABB.around_circle(cx, cy, r)
        r2 = r * r
        return [
            item_id
            for item_id in self.query_range(box)
            if self._dist_sq(item_id, cx, cy) <= r2
        ]

    def query_knn(self, cx: float, cy: float, k: int) -> list[tuple[int, float]]:
        """K nearest live points, classic branch-and-bound descent."""
        if k <= 0:
            raise SpatialError("k must be positive")
        best: list[tuple[float, int]] = []  # max-heap via negated distance

        def visit(node: _KDNode | None) -> None:
            if node is None:
                return
            if not node.dead:
                d = math.hypot(node.x - cx, node.y - cy)
                if len(best) < k:
                    heapq.heappush(best, (-d, node.item_id))
                elif d < -best[0][0]:
                    heapq.heapreplace(best, (-d, node.item_id))
            diff = (cx - node.x) if node.axis == 0 else (cy - node.y)
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            if len(best) < k or abs(diff) <= -best[0][0]:
                visit(far)

        visit(self._root)
        out = sorted((-nd, item_id) for nd, item_id in best)
        return [(item_id, d) for d, item_id in out]

    def all_ids(self) -> list[int]:
        """All live ids."""
        return list(self._pos)

    def _dist_sq(self, item_id: int, cx: float, cy: float) -> float:
        x, y = self._pos[item_id]
        dx, dy = x - cx, y - cy
        return dx * dx + dy * dy
