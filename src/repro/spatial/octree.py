"""Point octree — the 3-D structure the tutorial names explicitly.

Used by the EVE-style space workloads where ships live in a 3-D solar
system.  Same capacity-split design as the quadtree, generalised to eight
children.  The 2-D structure protocol is widened: positions are (x, y, z)
and circle queries become sphere queries; a thin adapter exposes the 2-D
protocol (z = 0) so the octree can also be attached to 2-D worlds for
comparison benchmarks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import SpatialError


@dataclass(frozen=True)
class AABB3:
    """Closed axis-aligned 3-D box."""

    min_x: float
    min_y: float
    min_z: float
    max_x: float
    max_y: float
    max_z: float

    def __post_init__(self) -> None:
        if (
            self.min_x > self.max_x
            or self.min_y > self.max_y
            or self.min_z > self.max_z
        ):
            raise SpatialError("degenerate AABB3")

    @property
    def volume(self) -> float:
        return (
            (self.max_x - self.min_x)
            * (self.max_y - self.min_y)
            * (self.max_z - self.min_z)
        )

    def contains_point(self, x: float, y: float, z: float) -> bool:
        return (
            self.min_x <= x <= self.max_x
            and self.min_y <= y <= self.max_y
            and self.min_z <= z <= self.max_z
        )

    def intersects(self, other: "AABB3") -> bool:
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
            and self.min_z <= other.max_z
            and other.min_z <= self.max_z
        )

    def intersects_sphere(self, cx: float, cy: float, cz: float, r: float) -> bool:
        nx = min(max(cx, self.min_x), self.max_x)
        ny = min(max(cy, self.min_y), self.max_y)
        nz = min(max(cz, self.min_z), self.max_z)
        dx, dy, dz = cx - nx, cy - ny, cz - nz
        return dx * dx + dy * dy + dz * dz <= r * r

    def distance_sq_to_point(self, x: float, y: float, z: float) -> float:
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        dz = max(self.min_z - z, 0.0, z - self.max_z)
        return dx * dx + dy * dy + dz * dz

    def octants(self) -> tuple["AABB3", ...]:
        cx = (self.min_x + self.max_x) / 2
        cy = (self.min_y + self.max_y) / 2
        cz = (self.min_z + self.max_z) / 2
        out = []
        for lo_x, hi_x in ((self.min_x, cx), (cx, self.max_x)):
            for lo_y, hi_y in ((self.min_y, cy), (cy, self.max_y)):
                for lo_z, hi_z in ((self.min_z, cz), (cz, self.max_z)):
                    out.append(AABB3(lo_x, lo_y, lo_z, hi_x, hi_y, hi_z))
        return tuple(out)


class _ONode:
    __slots__ = ("box", "points", "children", "count")

    def __init__(self, box: AABB3):
        self.box = box
        self.points: dict[int, tuple[float, float, float]] = {}
        self.children: list["_ONode"] | None = None
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class Octree:
    """Bounded 3-D point octree with capacity splitting."""

    def __init__(self, bounds: AABB3, capacity: int = 8, max_depth: int = 10):
        if capacity < 1:
            raise SpatialError("capacity must be >= 1")
        self.bounds = bounds
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _ONode(bounds)
        self._pos: dict[int, tuple[float, float, float]] = {}

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._pos

    # -- mutation ---------------------------------------------------------------

    def insert(self, item_id: int, x: float, y: float, z: float = 0.0) -> None:
        """Insert a point."""
        if item_id in self._pos:
            raise SpatialError(f"id {item_id} already in octree")
        if not self.bounds.contains_point(x, y, z):
            raise SpatialError(f"point ({x}, {y}, {z}) outside octree bounds")
        self._pos[item_id] = (x, y, z)
        self._insert(self._root, item_id, x, y, z, 0)

    def remove(self, item_id: int, x: float, y: float, z: float = 0.0) -> None:
        """Remove a point by id and position."""
        if item_id not in self._pos:
            raise SpatialError(f"id {item_id} not in octree")
        self._remove(self._root, item_id, x, y, z)
        del self._pos[item_id]

    def move(
        self,
        item_id: int,
        ox: float,
        oy: float,
        nx: float,
        ny: float,
        oz: float = 0.0,
        nz: float = 0.0,
    ) -> None:
        """Relocate a point.

        Signature is 2-D-protocol compatible: (id, ox, oy, nx, ny) with z
        components optional keyword-style at the end.
        """
        self.remove(item_id, ox, oy, oz)
        self.insert(item_id, nx, ny, nz)

    # -- queries -------------------------------------------------------------------

    def query_sphere(
        self, cx: float, cy: float, cz: float, r: float
    ) -> list[int]:
        """Ids within the closed sphere."""
        if r < 0:
            raise SpatialError("radius must be non-negative")
        r2 = r * r
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.count == 0 or not node.box.intersects_sphere(cx, cy, cz, r):
                continue
            if node.is_leaf:
                for item_id, (x, y, z) in node.points.items():
                    dx, dy, dz = x - cx, y - cy, z - cz
                    if dx * dx + dy * dy + dz * dz <= r2:
                        out.append(item_id)
            else:
                stack.extend(node.children)
        return out

    def query_circle(self, cx: float, cy: float, r: float) -> list[int]:
        """2-D protocol: sphere query in the z=0 plane.

        Correct for worlds that store all points with z=0; used when the
        octree is benchmarked against 2-D structures.
        """
        return self.query_sphere(cx, cy, 0.0, r)

    def query_range3(self, box: AABB3) -> list[int]:
        """Ids inside the closed 3-D box."""
        out: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.count == 0 or not node.box.intersects(box):
                continue
            if node.is_leaf:
                for item_id, (x, y, z) in node.points.items():
                    if box.contains_point(x, y, z):
                        out.append(item_id)
            else:
                stack.extend(node.children)
        return out

    def query_knn(
        self, cx: float, cy: float, k: int, cz: float = 0.0
    ) -> list[tuple[int, float]]:
        """K nearest points (2-D protocol signature; pass cz for true 3-D)."""
        if k <= 0:
            raise SpatialError("k must be positive")
        heap: list[tuple[float, int, object]] = [(0.0, 0, self._root)]
        results: list[tuple[float, int]] = []
        counter = 1
        while heap and len(results) < k:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, _ONode):
                if item.count == 0:
                    continue
                if item.is_leaf:
                    for item_id, (x, y, z) in item.points.items():
                        d = math.sqrt(
                            (x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2
                        )
                        heapq.heappush(heap, (d, counter, item_id))
                        counter += 1
                else:
                    for child in item.children:
                        d2 = child.box.distance_sq_to_point(cx, cy, cz)
                        heapq.heappush(heap, (math.sqrt(d2), counter, child))
                        counter += 1
            else:
                results.append((dist, item))
        return [(item_id, d) for d, item_id in results]

    def all_ids(self) -> list[int]:
        """All stored ids."""
        return list(self._pos)

    # -- internals --------------------------------------------------------------------

    def _insert(
        self, node: _ONode, item_id: int, x: float, y: float, z: float, depth: int
    ) -> None:
        node.count += 1
        if node.is_leaf:
            node.points[item_id] = (x, y, z)
            if len(node.points) > self.capacity and depth < self.max_depth:
                self._split(node, depth)
            return
        self._insert(self._child_for(node, x, y, z), item_id, x, y, z, depth + 1)

    def _split(self, node: _ONode, depth: int) -> None:
        node.children = [_ONode(b) for b in node.box.octants()]
        points = node.points
        node.points = {}
        for item_id, (x, y, z) in points.items():
            self._insert(self._child_for(node, x, y, z), item_id, x, y, z, depth + 1)
        # The subtree population is unchanged by a split.
        node.count = sum(c.count for c in node.children)

    def _child_for(self, node: _ONode, x: float, y: float, z: float) -> _ONode:
        box = node.box
        cx = (box.min_x + box.max_x) / 2
        cy = (box.min_y + box.max_y) / 2
        cz = (box.min_z + box.max_z) / 2
        # octants() ordering: x-major, then y, then z
        ix = 1 if x >= cx else 0
        iy = 1 if y >= cy else 0
        iz = 1 if z >= cz else 0
        return node.children[ix * 4 + iy * 2 + iz]

    def _remove(self, node: _ONode, item_id: int, x: float, y: float, z: float) -> None:
        if node.is_leaf:
            if item_id not in node.points:
                raise SpatialError(f"id {item_id} not found at ({x},{y},{z})")
            del node.points[item_id]
            node.count -= 1
            return
        self._remove(self._child_for(node, x, y, z), item_id, x, y, z)
        node.count -= 1
        if node.count <= self.capacity:
            self._merge(node)

    def _merge(self, node: _ONode) -> None:
        points: dict[int, tuple[float, float, float]] = {}
        stack = list(node.children or ())
        while stack:
            child = stack.pop()
            if child.is_leaf:
                points.update(child.points)
            else:
                stack.extend(child.children)
        node.children = None
        node.points = points
