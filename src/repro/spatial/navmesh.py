"""Navigation meshes with designer annotations, A*, and funnel smoothing.

The tutorial singles navmeshes out as a spatial structure "that may not be
familiar to a database audience": a set of convex polygons tiling the
walkable surface, with adjacency through shared edges (*portals*).  Two
properties matter for the reproduction:

* path search runs over polygons (dozens–hundreds) rather than grid cells
  (tens of thousands) — experiment E4 measures that gap; and
* polygons carry **designer annotations** ("good hiding place", "easily
  defensible", movement-cost multipliers) that queries and path costs can
  use — the "extra semantic information" the tutorial describes.

:func:`grid_to_navmesh` builds a mesh from an occupancy grid by greedy
rectangle decomposition, so benchmarks can generate both representations
of the same map.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import NavMeshError
from repro.spatial.geometry import Vec2, point_in_polygon, polygon_centroid


@dataclass
class NavPolygon:
    """One convex walkable polygon.

    Attributes
    ----------
    poly_id:
        Index within the mesh.
    vertices:
        Convex polygon vertices, counter-clockwise.
    cost_multiplier:
        Movement cost scale (swamps > 1.0, roads < 1.0).
    annotations:
        Designer tags -> values (e.g. ``{"hiding": True, "cover": 0.8}``).
    """

    poly_id: int
    vertices: list[Vec2]
    cost_multiplier: float = 1.0
    annotations: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise NavMeshError(f"polygon {self.poly_id} has < 3 vertices")
        if self.cost_multiplier <= 0:
            raise NavMeshError(f"polygon {self.poly_id} has non-positive cost")
        self.centroid = polygon_centroid(self.vertices)

    def contains(self, x: float, y: float) -> bool:
        """Closed point-in-polygon test."""
        return point_in_polygon(x, y, self.vertices)

    def edges(self) -> list[tuple[Vec2, Vec2]]:
        """Edges as vertex pairs in winding order."""
        n = len(self.vertices)
        return [(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)]


@dataclass(frozen=True)
class Portal:
    """A shared edge between two adjacent polygons."""

    from_poly: int
    to_poly: int
    left: Vec2
    right: Vec2

    def midpoint(self) -> Vec2:
        return self.left.lerp(self.right, 0.5)


class NavMesh:
    """A navigation mesh: convex polygons + portal adjacency.

    Build with explicit polygons and either explicit adjacency or
    :meth:`auto_connect`, which finds shared edges.
    """

    def __init__(self, polygons: Iterable[NavPolygon]):
        self.polygons: list[NavPolygon] = list(polygons)
        if not self.polygons:
            raise NavMeshError("navmesh needs at least one polygon")
        for i, poly in enumerate(self.polygons):
            if poly.poly_id != i:
                raise NavMeshError(
                    f"polygon ids must be dense 0..n-1 (got {poly.poly_id} at {i})"
                )
        self._portals: dict[int, list[Portal]] = {p.poly_id: [] for p in self.polygons}
        self.path_queries = 0
        self.nodes_expanded = 0
        #: optional point-location accelerator: (cell_x, cell_y) -> poly id,
        #: with the cell size it was built for.  ``grid_to_navmesh``
        #: populates it; hand-built meshes fall back to the linear scan.
        self._cell_lookup: dict[tuple[int, int], int] | None = None
        self._cell_size = 1.0

    # -- construction ------------------------------------------------------------

    def connect(self, a: int, b: int, left: Vec2, right: Vec2) -> None:
        """Declare a portal between polygons ``a`` and ``b``.

        ``left``/``right`` are the portal endpoints as seen walking a→b.
        The reverse portal is added automatically.
        """
        self._check_poly(a)
        self._check_poly(b)
        self._portals[a].append(Portal(a, b, left, right))
        self._portals[b].append(Portal(b, a, right, left))

    def auto_connect(self, tolerance: float = 1e-6) -> int:
        """Find shared edges between polygons and connect them.

        Two polygons are adjacent when they share an edge segment (same
        endpoints within ``tolerance``).  Returns portals created.
        """
        def key(v: Vec2) -> tuple[float, float]:
            return (round(v.x / tolerance) * tolerance, round(v.y / tolerance) * tolerance)

        edge_owner: dict[tuple, tuple[int, Vec2, Vec2]] = {}
        created = 0
        for poly in self.polygons:
            for va, vb in poly.edges():
                k = tuple(sorted((key(va), key(vb))))
                if k in edge_owner:
                    other, oa, ob = edge_owner[k]
                    if other != poly.poly_id:
                        self.connect(other, poly.poly_id, oa, ob)
                        created += 1
                else:
                    edge_owner[k] = (poly.poly_id, va, vb)
        return created

    # -- point location -------------------------------------------------------------

    def locate(self, x: float, y: float) -> int:
        """Polygon id containing (x, y); raises NavMeshError when outside."""
        found = self.try_locate(x, y)
        if found is None:
            raise NavMeshError(f"point ({x}, {y}) is not on the navmesh")
        return found

    def try_locate(self, x: float, y: float) -> int | None:
        """Like :meth:`locate` but returns None when off-mesh."""
        if self._cell_lookup is not None:
            cell = (
                math.floor(x / self._cell_size),
                math.floor(y / self._cell_size),
            )
            hit = self._cell_lookup.get(cell)
            if hit is not None and self.polygons[hit].contains(x, y):
                return hit
            # fall through: boundary points may sit in a neighbouring cell
        for poly in self.polygons:
            if poly.contains(x, y):
                return poly.poly_id
        return None

    def portals_of(self, poly_id: int) -> list[Portal]:
        """Outgoing portals of a polygon."""
        self._check_poly(poly_id)
        return list(self._portals[poly_id])

    # -- annotation queries ------------------------------------------------------------

    def find_annotated(self, tag: str, value: Any = True) -> list[NavPolygon]:
        """Polygons whose annotation ``tag`` equals ``value``.

        The designer-facing query: "all hiding places", "all defensible
        spots".  Returns polygons, not points; callers usually take
        ``poly.centroid``.
        """
        return [
            p for p in self.polygons if p.annotations.get(tag) == value
        ]

    def nearest_annotated(
        self, x: float, y: float, tag: str, value: Any = True
    ) -> NavPolygon | None:
        """The annotated polygon whose centroid is nearest to (x, y)."""
        candidates = self.find_annotated(tag, value)
        if not candidates:
            return None
        p = Vec2(x, y)
        return min(candidates, key=lambda poly: poly.centroid.distance_to(p))

    # -- pathfinding --------------------------------------------------------------------

    def find_path_polygons(self, start_poly: int, goal_poly: int) -> list[int]:
        """A* over the polygon adjacency graph; returns polygon id chain.

        Heuristic: straight-line centroid distance.  Edge cost: centroid
        to portal-midpoint to centroid, scaled by each polygon's
        ``cost_multiplier`` — so annotated swamps are avoided.
        Raises :class:`NavMeshError` when no path exists.
        """
        self._check_poly(start_poly)
        self._check_poly(goal_poly)
        self.path_queries += 1
        if start_poly == goal_poly:
            return [start_poly]
        goal_c = self.polygons[goal_poly].centroid
        open_heap: list[tuple[float, float, int]] = []
        g_cost: dict[int, float] = {start_poly: 0.0}
        came: dict[int, int] = {}
        start_h = self.polygons[start_poly].centroid.distance_to(goal_c)
        heapq.heappush(open_heap, (start_h, 0.0, start_poly))
        closed: set[int] = set()
        while open_heap:
            _f, g, current = heapq.heappop(open_heap)
            if current in closed:
                continue
            closed.add(current)
            self.nodes_expanded += 1
            if current == goal_poly:
                return self._reconstruct(came, current)
            cur_poly = self.polygons[current]
            for portal in self._portals[current]:
                nxt = portal.to_poly
                if nxt in closed:
                    continue
                nxt_poly = self.polygons[nxt]
                mid = portal.midpoint()
                step = (
                    cur_poly.centroid.distance_to(mid) * cur_poly.cost_multiplier
                    + mid.distance_to(nxt_poly.centroid) * nxt_poly.cost_multiplier
                )
                ng = g + step
                if ng < g_cost.get(nxt, math.inf):
                    g_cost[nxt] = ng
                    came[nxt] = current
                    h = nxt_poly.centroid.distance_to(goal_c)
                    heapq.heappush(open_heap, (ng + h, ng, nxt))
        raise NavMeshError(
            f"no path between polygons {start_poly} and {goal_poly}"
        )

    def find_path(
        self, sx: float, sy: float, gx: float, gy: float, smooth: bool = True
    ) -> list[Vec2]:
        """Full path query: locate, A*, then funnel-smooth.

        Returns waypoints from (sx, sy) to (gx, gy) inclusive.
        """
        start_poly = self.locate(sx, sy)
        goal_poly = self.locate(gx, gy)
        chain = self.find_path_polygons(start_poly, goal_poly)
        start = Vec2(sx, sy)
        goal = Vec2(gx, gy)
        if len(chain) == 1:
            return [start, goal]
        portals = self._portal_chain(chain)
        if smooth:
            return funnel_smooth(start, goal, portals)
        waypoints = [start]
        waypoints.extend(p.midpoint() for p in portals)
        waypoints.append(goal)
        return waypoints

    def path_length(self, path: list[Vec2]) -> float:
        """Total Euclidean length of a waypoint path."""
        return sum(a.distance_to(b) for a, b in zip(path, path[1:]))

    # -- internals -------------------------------------------------------------------------

    def _portal_chain(self, chain: list[int]) -> list[Portal]:
        portals = []
        for a, b in zip(chain, chain[1:]):
            portal = next(
                (p for p in self._portals[a] if p.to_poly == b), None
            )
            if portal is None:
                raise NavMeshError(f"missing portal {a}->{b}")
            portals.append(portal)
        return portals

    def _reconstruct(self, came: dict[int, int], current: int) -> list[int]:
        out = [current]
        while current in came:
            current = came[current]
            out.append(current)
        out.reverse()
        return out

    def _check_poly(self, poly_id: int) -> None:
        if not 0 <= poly_id < len(self.polygons):
            raise NavMeshError(f"no polygon {poly_id}")


def funnel_smooth(start: Vec2, goal: Vec2, portals: list[Portal]) -> list[Vec2]:
    """Simple stupid funnel algorithm: string-pull a path through portals.

    Produces the shortest path through the portal sequence, touching
    portal endpoints only where the funnel collapses.
    """
    # Portal list as (left, right) plus a degenerate goal portal.
    lefts = [p.left for p in portals] + [goal]
    rights = [p.right for p in portals] + [goal]
    path = [start]
    apex = start
    left = lefts[0]
    right = rights[0]
    apex_i = left_i = right_i = 0

    def triarea2(a: Vec2, b: Vec2, c: Vec2) -> float:
        return (b - a).cross(c - a)

    i = 1
    # Guard: the funnel restarts are bounded by O(n^2) steps on valid
    # portal chains; degenerate geometry falls back to portal midpoints.
    steps_left = 4 * len(lefts) * len(lefts) + 16
    while i < len(lefts):
        steps_left -= 1
        if steps_left <= 0:
            mids = [p.midpoint() for p in portals]
            return [start] + mids + [goal]
        new_left, new_right = lefts[i], rights[i]
        # tighten right side
        if triarea2(apex, right, new_right) >= 0:
            if apex == right or triarea2(apex, left, new_right) < 0:
                right = new_right
                right_i = i
            else:
                # right crossed left: left becomes new apex
                path.append(left)
                apex = left
                apex_i = left_i
                left = apex
                right = apex
                left_i = right_i = apex_i
                i = apex_i + 1
                continue
        # tighten left side
        if triarea2(apex, left, new_left) <= 0:
            if apex == left or triarea2(apex, right, new_left) > 0:
                left = new_left
                left_i = i
            else:
                path.append(right)
                apex = right
                apex_i = right_i
                left = apex
                right = apex
                left_i = right_i = apex_i
                i = apex_i + 1
                continue
        i += 1
    if not path or path[-1] != goal:
        path.append(goal)
    return path


def grid_to_navmesh(
    walkable: list[list[bool]],
    cell_size: float = 1.0,
    annotations: dict[tuple[int, int], dict[str, Any]] | None = None,
) -> NavMesh:
    """Build a navmesh from an occupancy grid by greedy rectangle merge.

    ``walkable[row][col]`` marks open cells.  Maximal axis-aligned
    rectangles become convex polygons; shared edges become portals.
    ``annotations`` optionally tags the rectangle containing a given cell.
    This gives E4 a navmesh and a grid over the *same* map.
    """
    rows = len(walkable)
    if rows == 0:
        raise NavMeshError("empty grid")
    cols = len(walkable[0])
    claimed = [[False] * cols for _ in range(rows)]
    polys: list[NavPolygon] = []
    cells: list[tuple[int, int, int, int, int]] = []  # (poly, r, c, h, w)
    for r in range(rows):
        for c in range(cols):
            if claimed[r][c] or not walkable[r][c]:
                continue
            # grow width
            w = 1
            while c + w < cols and walkable[r][c + w] and not claimed[r][c + w]:
                w += 1
            # grow height while the full row strip is free
            h = 1
            while r + h < rows and all(
                walkable[r + h][cc] and not claimed[r + h][cc]
                for cc in range(c, c + w)
            ):
                h += 1
            for rr in range(r, r + h):
                for cc in range(c, c + w):
                    claimed[rr][cc] = True
            x0, y0 = c * cell_size, r * cell_size
            x1, y1 = (c + w) * cell_size, (r + h) * cell_size
            poly = NavPolygon(
                len(polys),
                [Vec2(x0, y0), Vec2(x1, y0), Vec2(x1, y1), Vec2(x0, y1)],
            )
            cells.append((poly.poly_id, r, c, h, w))
            polys.append(poly)
    mesh = NavMesh(polys)
    connect_rectangles(mesh)
    # O(1) point location: each source grid cell knows its polygon.
    lookup: dict[tuple[int, int], int] = {}
    for poly_id, r0, c0, h, w in cells:
        for rr in range(r0, r0 + h):
            for cc in range(c0, c0 + w):
                lookup[(cc, rr)] = poly_id
    mesh._cell_lookup = lookup
    mesh._cell_size = cell_size
    if annotations:
        for (row, col), tags in annotations.items():
            x = (col + 0.5) * cell_size
            y = (row + 0.5) * cell_size
            poly_id = mesh.try_locate(x, y)
            if poly_id is not None:
                mesh.polygons[poly_id].annotations.update(tags)
    return mesh


def connect_rectangles(mesh: NavMesh) -> int:
    """Connect axis-aligned rectangle polygons sharing a boundary interval.

    Unlike :meth:`NavMesh.auto_connect` (which requires *identical* shared
    edges), this handles partial overlaps along an axis — the common case
    for rectangle-decomposed maps.  Returns portals created.
    """
    n = len(mesh.polygons)
    rects = []
    for poly in mesh.polygons:
        xs = [v.x for v in poly.vertices]
        ys = [v.y for v in poly.vertices]
        rects.append((min(xs), min(ys), max(xs), max(ys)))
    created = 0
    for i in range(n):
        ax0, ay0, ax1, ay1 = rects[i]
        for j in range(i + 1, n):
            bx0, by0, bx1, by1 = rects[j]
            # vertical shared edge
            if math.isclose(ax1, bx0) or math.isclose(bx1, ax0):
                x = ax1 if math.isclose(ax1, bx0) else ax0
                lo = max(ay0, by0)
                hi = min(ay1, by1)
                if hi > lo:
                    mesh.connect(i, j, Vec2(x, lo), Vec2(x, hi))
                    created += 1
            # horizontal shared edge
            elif math.isclose(ay1, by0) or math.isclose(by1, ay0):
                y = ay1 if math.isclose(ay1, by0) else ay0
                lo = max(ax0, bx0)
                hi = min(ax1, bx1)
                if hi > lo:
                    mesh.connect(i, j, Vec2(lo, y), Vec2(hi, y))
                    created += 1
    return created
