"""Uniform spatial hash grid — the workhorse index for moving entities.

Games overwhelmingly use uniform grids for dynamic objects because a move
is two O(1) hash operations, while tree structures pay rebalancing costs.
The grid partitions the plane into ``cell_size`` squares keyed by integer
cell coordinates in a dict, so it handles unbounded worlds and is O(1) in
empty space.

Implements the common structure protocol used by
:meth:`repro.core.indexes.IndexManager.attach_spatial`:
``insert``, ``remove``, ``move``, ``query_range``, ``query_circle``,
``query_knn``, plus ``pairs_within`` used by the join algorithms.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Iterator

from repro.errors import SpatialError
from repro.spatial.geometry import AABB


class UniformGrid:
    """Spatial hash grid over 2-D points.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell.  The classic tuning rule — cell size ≈
        the common query radius — makes circle queries examine at most a
        3×3 block of cells.
    bounds:
        Optional world bounds used only for planner selectivity estimates;
        the grid itself is unbounded.
    """

    def __init__(self, cell_size: float, bounds: AABB | None = None):
        if cell_size <= 0:
            raise SpatialError("cell_size must be positive")
        self.cell_size = cell_size
        self.bounds = bounds
        self._cells: dict[tuple[int, int], dict[int, tuple[float, float]]] = (
            defaultdict(dict)
        )
        self._pos: dict[int, tuple[float, float]] = {}

    # -- protocol --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pos)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._pos

    def position_of(self, item_id: int) -> tuple[float, float]:
        """Current stored position of ``item_id``."""
        try:
            return self._pos[item_id]
        except KeyError:
            raise SpatialError(f"id {item_id} not in grid") from None

    def insert(self, item_id: int, x: float, y: float) -> None:
        """Insert a point; raises if the id is already present."""
        if item_id in self._pos:
            raise SpatialError(f"id {item_id} already in grid")
        self._pos[item_id] = (x, y)
        self._cells[self._cell(x, y)][item_id] = (x, y)

    def remove(self, item_id: int, x: float, y: float) -> None:
        """Remove a point (x, y must match the stored position's cell)."""
        cell = self._cell(x, y)
        bucket = self._cells.get(cell)
        if bucket is None or item_id not in bucket:
            raise SpatialError(f"id {item_id} not at cell {cell}")
        del bucket[item_id]
        if not bucket:
            del self._cells[cell]
        del self._pos[item_id]

    def move(self, item_id: int, ox: float, oy: float, nx: float, ny: float) -> None:
        """Relocate a point; O(1) when it stays within its cell."""
        old_cell = self._cell(ox, oy)
        new_cell = self._cell(nx, ny)
        if old_cell == new_cell:
            self._cells[old_cell][item_id] = (nx, ny)
            self._pos[item_id] = (nx, ny)
            return
        self.remove(item_id, ox, oy)
        self.insert(item_id, nx, ny)

    # -- queries -----------------------------------------------------------------

    def query_range(self, box: AABB) -> list[int]:
        """Ids of points inside the closed box."""
        out: list[int] = []
        for bucket in self._buckets_overlapping(box):
            for item_id, (x, y) in bucket.items():
                if box.contains_point(x, y):
                    out.append(item_id)
        return out

    def query_circle(self, cx: float, cy: float, r: float) -> list[int]:
        """Ids of points within distance ``r`` of (cx, cy) (closed)."""
        if r < 0:
            raise SpatialError("radius must be non-negative")
        r2 = r * r
        out: list[int] = []
        box = AABB.around_circle(cx, cy, r)
        for bucket in self._buckets_overlapping(box):
            for item_id, (x, y) in bucket.items():
                dx, dy = x - cx, y - cy
                if dx * dx + dy * dy <= r2:
                    out.append(item_id)
        return out

    def query_knn(self, cx: float, cy: float, k: int) -> list[tuple[int, float]]:
        """K nearest points as ``[(id, distance), ...]``, nearest first.

        Expands a ring of cells outward until ``k`` candidates are found
        and the next ring cannot contain anything closer.
        """
        if k <= 0:
            raise SpatialError("k must be positive")
        if not self._pos:
            return []
        best: list[tuple[float, int]] = []
        ring = 0
        ccx, ccy = self._cell(cx, cy)
        max_ring = self._max_ring()
        while ring <= max_ring:
            for cell in self._ring_cells(ccx, ccy, ring):
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                for item_id, (x, y) in bucket.items():
                    d = math.hypot(x - cx, y - cy)
                    best.append((d, item_id))
            if len(best) >= k:
                best.sort()
                kth = best[min(k, len(best)) - 1][0]
                # Everything in rings > ring is at least (ring)*cell_size away
                # from the query cell border; stop when that bound exceeds kth.
                if ring * self.cell_size >= kth:
                    break
            ring += 1
        best.sort()
        return [(item_id, d) for d, item_id in best[:k]]

    def pairs_within(self, r: float) -> Iterator[tuple[int, int]]:
        """All unordered pairs of points within distance ``r`` of each other.

        The grid-join: each point is compared only against points in its
        own and forward-neighbouring cells, giving O(n · density) instead
        of O(n²).  Requires ``r <= cell_size`` for a single-ring
        neighbourhood; larger radii widen the neighbourhood automatically.
        """
        if r < 0:
            raise SpatialError("radius must be non-negative")
        r2 = r * r
        reach = max(1, math.ceil(r / self.cell_size))
        # Forward half-neighbourhood: lexicographically positive offsets, so
        # each unordered cross-cell pair is produced from exactly one side.
        forward = [
            (dx, dy)
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
            if (dx, dy) > (0, 0)
        ]
        for (cx_, cy_), bucket in self._cells.items():
            items = list(bucket.items())
            for i, (id_a, (ax, ay)) in enumerate(items):
                for id_b, (bx, by) in items[i + 1:]:
                    dx, dy = ax - bx, ay - by
                    if dx * dx + dy * dy <= r2:
                        yield (min(id_a, id_b), max(id_a, id_b))
            for dx_, dy_ in forward:
                other = self._cells.get((cx_ + dx_, cy_ + dy_))
                if not other:
                    continue
                for id_a, (ax, ay) in items:
                    for id_b, (bx, by) in other.items():
                        dx, dy = ax - bx, ay - by
                        if dx * dx + dy * dy <= r2:
                            yield (min(id_a, id_b), max(id_a, id_b))

    def cell_population(self) -> dict[tuple[int, int], int]:
        """Map cell -> point count; the load metric for partitioning."""
        return {cell: len(bucket) for cell, bucket in self._cells.items()}

    def all_ids(self) -> list[int]:
        """All stored ids."""
        return list(self._pos)

    # -- internals -----------------------------------------------------------------

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_size), math.floor(y / self.cell_size))

    def _buckets_overlapping(self, box: AABB) -> Iterator[dict]:
        x0, y0 = self._cell(box.min_x, box.min_y)
        x1, y1 = self._cell(box.max_x, box.max_y)
        # Iterate whichever is smaller: the cell window or the occupied set.
        window = (x1 - x0 + 1) * (y1 - y0 + 1)
        if window <= len(self._cells):
            for cx in range(x0, x1 + 1):
                for cy in range(y0, y1 + 1):
                    bucket = self._cells.get((cx, cy))
                    if bucket:
                        yield bucket
        else:
            for (cx, cy), bucket in self._cells.items():
                if x0 <= cx <= x1 and y0 <= cy <= y1:
                    yield bucket

    def _ring_cells(
        self, ccx: int, ccy: int, ring: int
    ) -> Iterable[tuple[int, int]]:
        if ring == 0:
            return [(ccx, ccy)]
        cells = []
        for dx in range(-ring, ring + 1):
            cells.append((ccx + dx, ccy - ring))
            cells.append((ccx + dx, ccy + ring))
        for dy in range(-ring + 1, ring):
            cells.append((ccx - ring, ccy + dy))
            cells.append((ccx + ring, ccy + dy))
        return cells

    def _max_ring(self) -> int:
        if not self._cells:
            return 0
        xs = [c[0] for c in self._cells]
        ys = [c[1] for c in self._cells]
        return max(max(xs) - min(xs), max(ys) - min(ys)) + 1
