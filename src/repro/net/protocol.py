"""Wire protocol for the client/server replication layer.

Plain dataclasses with explicit size accounting — the simulator bills
bandwidth from ``wire_size()``, so the E7/E12 bandwidth numbers reflect
message content rather than python object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message envelope cost (headers, framing) in bytes.
ENVELOPE_BYTES = 16
#: Approximate encoded size of one field value.
VALUE_BYTES = 8


@dataclass(frozen=True)
class StateUpdate:
    """Server -> client: replicated field values for one entity."""

    entity: int
    fields: dict[str, Any]
    tick: int
    tier: str = "strong"  # consistency tier that scheduled this update

    def wire_size(self) -> int:
        """Simulated encoded size in bytes."""
        return ENVELOPE_BYTES + 8 + len(self.fields) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class EntityEnter:
    """Server -> client: an entity entered the client's area of interest."""

    entity: int
    fields: dict[str, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.fields) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class EntityExit:
    """Server -> client: an entity left the client's area of interest."""

    entity: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8


@dataclass(frozen=True)
class InputCommand:
    """Client -> server: one player input.

    ``seq`` lets the client reconcile its prediction when the
    authoritative result comes back.
    """

    client: str
    seq: int
    action: str
    args: dict[str, Any] = field(default_factory=dict)
    tick: int = 0

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.args) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class InputAck:
    """Server -> client: authoritative result of an input command."""

    seq: int
    accepted: bool
    authoritative: dict[str, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.authoritative) * (VALUE_BYTES + 4)
