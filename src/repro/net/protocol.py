"""Wire protocol for the client/server replication layer.

Plain dataclasses with explicit size accounting — the simulator bills
bandwidth from ``wire_size()``, so the E7/E12 bandwidth numbers reflect
message content rather than python object overhead.

Messages also carry a real encoding: :func:`encode` renders any
registered message as versioned bytes and :func:`decode` round-trips
them exactly (``decode(encode(m)) == m``).  The gateway's socket path
and :class:`~repro.net.simnet.SimNetwork` share this one codec, so a
message costs the same whether it crosses a real TCP connection or the
in-process simulator — the property the E19 bytes/client comparison
rests on.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import NetError
from repro.obs.causal import TraceContext

#: Fixed per-message envelope cost (headers, framing) in bytes.
ENVELOPE_BYTES = 16
#: Approximate encoded size of one field value.
VALUE_BYTES = 8
#: Codec version written as the first byte of every encoded message.
WIRE_VERSION = 1
#: Reserved type id marking a trace-context wrapper around a message.
CTX_TYPE_ID = 255


@dataclass(frozen=True)
class StateUpdate:
    """Server -> client: replicated field values for one entity."""

    entity: int
    fields: dict[str, Any]
    tick: int
    tier: str = "strong"  # consistency tier that scheduled this update

    def wire_size(self) -> int:
        """Simulated encoded size in bytes."""
        return ENVELOPE_BYTES + 8 + len(self.fields) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class EntityEnter:
    """Server -> client: an entity entered the client's area of interest."""

    entity: int
    fields: dict[str, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.fields) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class EntityExit:
    """Server -> client: an entity left the client's area of interest."""

    entity: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8


@dataclass(frozen=True)
class InputCommand:
    """Client -> server: one player input.

    ``seq`` lets the client reconcile its prediction when the
    authoritative result comes back.
    """

    client: str
    seq: int
    action: str
    args: dict[str, Any] = field(default_factory=dict)
    tick: int = 0

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.args) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class InputAck:
    """Server -> client: authoritative result of an input command."""

    seq: int
    accepted: bool
    authoritative: dict[str, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.authoritative) * (VALUE_BYTES + 4)


# ---------------------------------------------------------------------------
# Cluster control plane: entity handoff and two-phase commit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HandoffCommand:
    """Coordinator -> source shard: evict and hand off an entity."""

    entity: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class HandoffRequest:
    """Source shard -> destination shard: the serialized entity.

    ``components`` maps component name to its full row, produced by
    ``GameWorld.snapshot_entity`` — the entity's entire database record
    crossing the wire.
    """

    entity: int
    components: dict[str, dict[str, Any]]
    src_shard: int
    dst_shard: int
    tick: int
    #: ((component, catalog_version), ...) — the schema versions the rows
    #: were serialized at.  During a rolling schema alter the receiver
    #: upgrades payloads from older versions (or defers installs from
    #: newer ones).  Empty = pre-schema-plane peers: install as-is.
    schema_versions: tuple = ()

    def wire_size(self) -> int:
        fields = sum(len(row) for row in self.components.values())
        return (
            ENVELOPE_BYTES + 16 + fields * (VALUE_BYTES + 4)
            + len(self.schema_versions) * (VALUE_BYTES + 4)
        )


@dataclass(frozen=True)
class HandoffAck:
    """Destination shard -> coordinator: entity installed, update the directory."""

    entity: int
    src_shard: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


@dataclass(frozen=True)
class HandoffComplete:
    """Coordinator -> source shard: the handoff is durable, drop the copy.

    Until this arrives the source retains the evicted entity's payload,
    so a handoff whose destination dies mid-flight can be re-sent to the
    promoted replacement (see ``HandoffResend``).
    """

    entity: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class HandoffResend:
    """Coordinator -> source shard: re-ship a retained eviction payload.

    Issued during failover when an in-flight handoff's destination
    crashed before installing the entity; the source re-sends its
    retained ``HandoffRequest`` to the (now promoted) destination.
    """

    entity: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class TxnPrepare:
    """Coordinator -> participant shard: phase-one vote request.

    ``keyed_ops`` is the shard's slice of the transaction as ``(kind,
    key)`` pairs.  When ``local`` is true the shard owns *every* key and
    ``ops`` carries the full op objects so the shard can execute the
    transaction in one round trip (the single-shard fast path; op
    callables never cross a real wire, but this simulator's payloads are
    in-process).
    """

    txn_id: int
    keyed_ops: tuple
    tick: int
    local: bool = False
    ops: tuple = ()
    #: ((component, catalog_version), ...) stamped by the coordinator for
    #: every component the transaction touches; a participant whose
    #: effective version disagrees votes abort (mixed-version window of a
    #: rolling alter).  Empty = unchecked, the pre-schema-plane contract.
    schema_versions: tuple = ()

    def wire_size(self) -> int:
        return (
            ENVELOPE_BYTES + 8 + len(self.keyed_ops) * (VALUE_BYTES + 4)
            + len(self.schema_versions) * (VALUE_BYTES + 4)
        )


@dataclass(frozen=True)
class TxnVote:
    """Participant -> coordinator: phase-one vote.

    ``reads`` carries the values under lock for the keys this vote
    covers; ``applied`` marks the single-shard fast path where the
    participant already executed and no decision round is needed.
    """

    txn_id: int
    shard: int
    commit: bool
    keys: tuple
    reads: dict[Any, Any]
    applied: bool = False

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.reads) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class TxnDecision:
    """Coordinator -> participant: phase-two outcome.

    On commit, ``writes`` holds the coordinator-computed values for the
    keys this participant prepared; on abort it is empty and the
    participant's tables stay untouched.
    """

    txn_id: int
    commit: bool
    writes: dict[Any, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.writes) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class SchemaAlter:
    """Coordinator -> every shard: begin an online schema alter.

    ``steps`` is the serialized step-record tuple (see
    :func:`repro.schema.steps.steps_to_records`); each shard applies it
    through its world's catalog and backfills ``batch_rows`` rows per
    tick, acking with :class:`SchemaAlterAck` once committed.
    """

    component: str
    steps: tuple
    to_version: int
    batch_rows: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16 + len(self.steps) * 4 * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class SchemaAlterAck:
    """Shard -> coordinator: the alter committed at this shard.

    When every shard has acked, the rollout is complete and the
    coordinator's cluster-wide catalog version advances.
    """

    shard: int
    component: str
    to_version: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


# ---------------------------------------------------------------------------
# Primary/replica shard replication: WAL shipping, acks, heartbeats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WalShip:
    """Primary shard -> replica: a batch of journal records.

    ``records`` is a tuple of ``(lsn, payload)`` pairs with contiguous,
    ascending LSNs — the primary's durable journal tail past what it
    believes the replica has.  The wire size bills the encoded payloads,
    so the E15 bytes-shipped numbers reflect what log shipping actually
    costs at each replication factor.
    """

    shard: int
    records: tuple
    tick: int

    def wire_size(self) -> int:
        size = ENVELOPE_BYTES + 8
        for _lsn, payload in self.records:
            size += 8 + len(repr(payload))
        return size


@dataclass(frozen=True)
class WalAck:
    """Replica -> primary shard: journal applied through ``applied_lsn``.

    The primary uses acks both as the semi-sync durability watermark and
    as the gap detector: a replica whose ack stagnates below the shipped
    watermark gets the missing tail re-shipped.
    """

    shard: int
    replica: int
    applied_lsn: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


@dataclass(frozen=True)
class Heartbeat:
    """Primary shard -> coordinator: still alive at this tick barrier.

    Carries the journal's flushed LSN so the coordinator's view of each
    replication group's progress rides on the liveness signal itself.
    Missed heartbeats past the timeout trigger failover.
    """

    shard: int
    tick: int
    flushed_lsn: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


# ---------------------------------------------------------------------------
# Stable wire codec: encode()/decode() with a version byte
# ---------------------------------------------------------------------------
#
# Header layout: byte 0 = WIRE_VERSION, byte 1 = message type id, then a
# canonical JSON body (sorted keys, no whitespace).  Tuples and
# non-string dict keys — both load-bearing in the protocol dataclasses —
# are tagged so the decode restores the exact python types and
# ``decode(encode(m)) == m`` holds for every registered message.

_MESSAGE_TYPES: dict[int, type] = {}
_TYPE_IDS: dict[type, int] = {}


def register_message(type_id: int, cls: type | None = None):
    """Register a frozen-dataclass message under a stable wire type id.

    Usable as a plain call (``register_message(3, EntityExit)``) or a
    decorator (``@register_message(32)``).  Ids are part of the wire
    contract: never renumber a released message, only append.
    """
    def _register(target: type) -> type:
        if not (0 <= type_id <= 255):
            raise NetError(f"message type id {type_id} outside one byte")
        existing = _MESSAGE_TYPES.get(type_id)
        if existing is not None and existing is not target:
            raise NetError(
                f"wire type id {type_id} already taken by {existing.__name__}"
            )
        if not dataclasses.is_dataclass(target):
            raise NetError(f"{target.__name__} must be a dataclass message")
        _MESSAGE_TYPES[type_id] = target
        _TYPE_IDS[target] = type_id
        return target

    return _register if cls is None else _register(cls)


def _to_jsonable(value: Any) -> Any:
    """Lower a message field value to tagged, JSON-safe form."""
    if isinstance(value, tuple):
        return {"__t": [_to_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        plain = all(
            isinstance(k, str) and not k.startswith("__") for k in value
        )
        if plain:
            return {k: _to_jsonable(v) for k, v in value.items()}
        return {
            "__d": [[_to_jsonable(k), _to_jsonable(v)]
                    for k, v in value.items()]
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise NetError(
        f"unencodable value of type {type(value).__name__} "
        f"(in-process-only payloads cannot cross a real wire)"
    )


def _from_jsonable(value: Any) -> Any:
    """Invert :func:`_to_jsonable`."""
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if "__t" in value and len(value) == 1:
            return tuple(_from_jsonable(v) for v in value["__t"])
        if "__d" in value and len(value) == 1:
            return {
                _hashable(_from_jsonable(k)): _from_jsonable(v)
                for k, v in value["__d"]
            }
        return {k: _from_jsonable(v) for k, v in value.items()}
    return value


def _hashable(key: Any) -> Any:
    if isinstance(key, list):
        return tuple(_hashable(k) for k in key)
    return key


def encode(msg: Any, ctx: TraceContext | None = None) -> bytes:
    """Render a registered message as versioned wire bytes.

    With a :class:`~repro.obs.causal.TraceContext` the message is
    wrapped in a context header — type id :data:`CTX_TYPE_ID`, the
    compact context JSON, a NUL terminator, then the inner encoding.
    :func:`decode` unwraps transparently; :func:`decode_with_context`
    hands the context back.
    """
    type_id = _TYPE_IDS.get(type(msg))
    if type_id is None:
        raise NetError(
            f"{type(msg).__name__} is not a registered wire message"
        )
    body = {
        f.name: _to_jsonable(getattr(msg, f.name))
        for f in dataclasses.fields(msg)
    }
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    encoded = bytes((WIRE_VERSION, type_id)) + payload.encode("utf-8")
    if ctx is None:
        return encoded
    header = json.dumps(ctx.to_wire(), sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
    return bytes((WIRE_VERSION, CTX_TYPE_ID)) + header + b"\x00" + encoded


def _unwrap_context(data: bytes) -> tuple[bytes, TraceContext | None]:
    """Split a context wrapper from wire bytes (pass-through when bare)."""
    if len(data) < 2 or data[0] != WIRE_VERSION or data[1] != CTX_TYPE_ID:
        return data, None
    end = data.find(b"\x00", 2)
    if end < 0:
        raise NetError("context wrapper missing its terminator")
    try:
        wire = json.loads(data[2:end].decode("utf-8"))
        if not isinstance(wire, dict):
            raise ValueError("context header is not an object")
        ctx = TraceContext.from_wire(wire)
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError,
            TypeError) as exc:
        raise NetError(f"corrupt context header: {exc}") from None
    inner = data[end + 1:]
    if len(inner) >= 2 and inner[0] == WIRE_VERSION and inner[1] == CTX_TYPE_ID:
        raise NetError("nested context wrappers are not allowed")
    return inner, ctx


# Scalar annotations the decoder type-checks on the way in.  JSON has a
# single number type, so ``float`` fields accept ints; ``int`` fields
# reject bools (a json ``true`` is not a sequence number).  Container
# annotations are left to the message's own consumers.
_SCALAR_CHECKS: dict[str, Callable[[Any], bool]] = {
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: (
        isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
}


def decode(data: bytes) -> Any:
    """Parse wire bytes back into the original message object.

    Hostile input degrades to :class:`NetError`, never an unhandled
    exception: the body must be a JSON object whose keys exactly fill
    the message's fields, and scalar fields are type-checked against
    the dataclass annotations.  Callers (the gateway's byte path, the
    cluster transports) treat ``NetError`` as a protocol violation and
    close the offending connection.  Context-wrapped messages decode
    transparently (the context is dropped; use
    :func:`decode_with_context` to keep it).
    """
    if len(data) < 2:
        raise NetError("message truncated before the codec header")
    data, _ = _unwrap_context(data)
    if len(data) < 2:
        raise NetError("message truncated before the codec header")
    if data[0] != WIRE_VERSION:
        raise NetError(
            f"wire version {data[0]} unsupported (speaking {WIRE_VERSION})"
        )
    cls = _MESSAGE_TYPES.get(data[1])
    if cls is None:
        raise NetError(f"unknown wire message type id {data[1]}")
    try:
        body = json.loads(data[2:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetError(f"corrupt message body: {exc}") from None
    if not isinstance(body, dict):
        raise NetError(
            f"corrupt {cls.__name__} body: expected an object, "
            f"got {type(body).__name__}"
        )
    try:
        msg = cls(**{k: _from_jsonable(v) for k, v in body.items()})
    except (TypeError, ValueError, AttributeError) as exc:
        raise NetError(f"corrupt {cls.__name__} body: {exc}") from None
    for f in dataclasses.fields(cls):
        check = _SCALAR_CHECKS.get(f.type)
        if check is not None and not check(getattr(msg, f.name)):
            raise NetError(
                f"corrupt {cls.__name__} body: field {f.name!r} "
                f"is not {f.type}"
            )
    return msg


def decode_with_context(data: bytes) -> tuple[Any, TraceContext | None]:
    """Like :func:`decode`, but also return the trace context (or None)."""
    inner, ctx = _unwrap_context(data)
    return decode(inner), ctx


def encoded_size(msg: Any) -> int:
    """Exact byte length of :func:`encode`'s output for ``msg``."""
    return len(encode(msg))


def default_size_of(payload: Any, fallback: int = 64) -> int:
    """The deterministic size model shared by sim and socket paths.

    Protocol messages bill their analytic ``wire_size()`` (stable across
    runs and python versions); anything else bills ``fallback`` bytes.
    :class:`~repro.net.simnet.SimNetwork` uses this when a caller does
    not pass an explicit size, so in-process byte counts line up with
    what the gateway's socket path would have charged.
    """
    sizer: Callable[[], int] | None = getattr(payload, "wire_size", None)
    return sizer() if callable(sizer) else fallback


# Stable ids for the released protocol messages.  Client/server plane
# first, cluster control plane from 16, replication plane from 24; the
# gateway session plane registers from 32 (see repro.gateway.messages).
register_message(1, StateUpdate)
register_message(2, EntityEnter)
register_message(3, EntityExit)
register_message(4, InputCommand)
register_message(5, InputAck)
register_message(16, HandoffCommand)
register_message(17, HandoffRequest)
register_message(18, HandoffAck)
register_message(19, HandoffComplete)
register_message(20, HandoffResend)
register_message(21, TxnPrepare)
register_message(22, TxnVote)
register_message(23, TxnDecision)
register_message(24, WalShip)
register_message(25, WalAck)
register_message(26, Heartbeat)
register_message(27, SchemaAlter)
register_message(28, SchemaAlterAck)
