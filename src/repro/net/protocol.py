"""Wire protocol for the client/server replication layer.

Plain dataclasses with explicit size accounting — the simulator bills
bandwidth from ``wire_size()``, so the E7/E12 bandwidth numbers reflect
message content rather than python object overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message envelope cost (headers, framing) in bytes.
ENVELOPE_BYTES = 16
#: Approximate encoded size of one field value.
VALUE_BYTES = 8


@dataclass(frozen=True)
class StateUpdate:
    """Server -> client: replicated field values for one entity."""

    entity: int
    fields: dict[str, Any]
    tick: int
    tier: str = "strong"  # consistency tier that scheduled this update

    def wire_size(self) -> int:
        """Simulated encoded size in bytes."""
        return ENVELOPE_BYTES + 8 + len(self.fields) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class EntityEnter:
    """Server -> client: an entity entered the client's area of interest."""

    entity: int
    fields: dict[str, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.fields) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class EntityExit:
    """Server -> client: an entity left the client's area of interest."""

    entity: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8


@dataclass(frozen=True)
class InputCommand:
    """Client -> server: one player input.

    ``seq`` lets the client reconcile its prediction when the
    authoritative result comes back.
    """

    client: str
    seq: int
    action: str
    args: dict[str, Any] = field(default_factory=dict)
    tick: int = 0

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.args) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class InputAck:
    """Server -> client: authoritative result of an input command."""

    seq: int
    accepted: bool
    authoritative: dict[str, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.authoritative) * (VALUE_BYTES + 4)


# ---------------------------------------------------------------------------
# Cluster control plane: entity handoff and two-phase commit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HandoffCommand:
    """Coordinator -> source shard: evict and hand off an entity."""

    entity: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class HandoffRequest:
    """Source shard -> destination shard: the serialized entity.

    ``components`` maps component name to its full row, produced by
    ``GameWorld.snapshot_entity`` — the entity's entire database record
    crossing the wire.
    """

    entity: int
    components: dict[str, dict[str, Any]]
    src_shard: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        fields = sum(len(row) for row in self.components.values())
        return ENVELOPE_BYTES + 16 + fields * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class HandoffAck:
    """Destination shard -> coordinator: entity installed, update the directory."""

    entity: int
    src_shard: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


@dataclass(frozen=True)
class HandoffComplete:
    """Coordinator -> source shard: the handoff is durable, drop the copy.

    Until this arrives the source retains the evicted entity's payload,
    so a handoff whose destination dies mid-flight can be re-sent to the
    promoted replacement (see ``HandoffResend``).
    """

    entity: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class HandoffResend:
    """Coordinator -> source shard: re-ship a retained eviction payload.

    Issued during failover when an in-flight handoff's destination
    crashed before installing the entity; the source re-sends its
    retained ``HandoffRequest`` to the (now promoted) destination.
    """

    entity: int
    dst_shard: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 16


@dataclass(frozen=True)
class TxnPrepare:
    """Coordinator -> participant shard: phase-one vote request.

    ``keyed_ops`` is the shard's slice of the transaction as ``(kind,
    key)`` pairs.  When ``local`` is true the shard owns *every* key and
    ``ops`` carries the full op objects so the shard can execute the
    transaction in one round trip (the single-shard fast path; op
    callables never cross a real wire, but this simulator's payloads are
    in-process).
    """

    txn_id: int
    keyed_ops: tuple
    tick: int
    local: bool = False
    ops: tuple = ()

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.keyed_ops) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class TxnVote:
    """Participant -> coordinator: phase-one vote.

    ``reads`` carries the values under lock for the keys this vote
    covers; ``applied`` marks the single-shard fast path where the
    participant already executed and no decision round is needed.
    """

    txn_id: int
    shard: int
    commit: bool
    keys: tuple
    reads: dict[Any, Any]
    applied: bool = False

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.reads) * (VALUE_BYTES + 4)


@dataclass(frozen=True)
class TxnDecision:
    """Coordinator -> participant: phase-two outcome.

    On commit, ``writes`` holds the coordinator-computed values for the
    keys this participant prepared; on abort it is empty and the
    participant's tables stay untouched.
    """

    txn_id: int
    commit: bool
    writes: dict[Any, Any]
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 8 + len(self.writes) * (VALUE_BYTES + 4)


# ---------------------------------------------------------------------------
# Primary/replica shard replication: WAL shipping, acks, heartbeats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WalShip:
    """Primary shard -> replica: a batch of journal records.

    ``records`` is a tuple of ``(lsn, payload)`` pairs with contiguous,
    ascending LSNs — the primary's durable journal tail past what it
    believes the replica has.  The wire size bills the encoded payloads,
    so the E15 bytes-shipped numbers reflect what log shipping actually
    costs at each replication factor.
    """

    shard: int
    records: tuple
    tick: int

    def wire_size(self) -> int:
        size = ENVELOPE_BYTES + 8
        for _lsn, payload in self.records:
            size += 8 + len(repr(payload))
        return size


@dataclass(frozen=True)
class WalAck:
    """Replica -> primary shard: journal applied through ``applied_lsn``.

    The primary uses acks both as the semi-sync durability watermark and
    as the gap detector: a replica whose ack stagnates below the shipped
    watermark gets the missing tail re-shipped.
    """

    shard: int
    replica: int
    applied_lsn: int
    tick: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24


@dataclass(frozen=True)
class Heartbeat:
    """Primary shard -> coordinator: still alive at this tick barrier.

    Carries the journal's flushed LSN so the coordinator's view of each
    replication group's progress rides on the liveness signal itself.
    Missed heartbeats past the timeout trigger failover.
    """

    shard: int
    tick: int
    flushed_lsn: int

    def wire_size(self) -> int:
        return ENVELOPE_BYTES + 24
