"""Dead reckoning: replicating motion without replicating every frame.

The sender transmits (position, velocity) samples; the receiver
extrapolates between samples with the same linear model.  A new sample is
sent only when the sender's *own* extrapolation of the last sent state
drifts from truth by more than ``threshold`` — the standard DIS/IEEE-1278
scheme games inherited from military simulation.

Higher thresholds save bandwidth and raise position error; experiment E12
sweeps exactly that trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MotionSample:
    """One transmitted (t, position, velocity) sample."""

    tick: int
    x: float
    y: float
    vx: float
    vy: float

    def extrapolate(self, tick: int, dt: float) -> tuple[float, float]:
        """Predicted position at ``tick`` under constant velocity."""
        elapsed = (tick - self.tick) * dt
        return (self.x + self.vx * elapsed, self.y + self.vy * elapsed)


@dataclass
class DeadReckoningStats:
    """Sender-side accounting plus receiver-side error samples."""

    updates_sent: int = 0
    updates_suppressed: int = 0
    error_samples: list[float] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        """Mean receiver position error (world units)."""
        if not self.error_samples:
            return 0.0
        return sum(self.error_samples) / len(self.error_samples)

    @property
    def max_error(self) -> float:
        """Worst receiver position error."""
        return max(self.error_samples, default=0.0)

    @property
    def send_rate(self) -> float:
        """Fraction of frames that actually sent an update."""
        total = self.updates_sent + self.updates_suppressed
        return self.updates_sent / total if total else 0.0


class DeadReckoningSender:
    """Sender side: decides when the receiver's model has drifted."""

    def __init__(self, threshold: float, dt: float = 1.0 / 30.0):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.dt = dt
        self.last_sent: MotionSample | None = None
        self.stats = DeadReckoningStats()

    def update(
        self, tick: int, x: float, y: float, vx: float, vy: float
    ) -> MotionSample | None:
        """Offer the current true state; returns a sample iff it must be sent."""
        if self.last_sent is None:
            return self._send(tick, x, y, vx, vy)
        px, py = self.last_sent.extrapolate(tick, self.dt)
        drift = math.hypot(px - x, py - y)
        if drift > self.threshold:
            return self._send(tick, x, y, vx, vy)
        self.stats.updates_suppressed += 1
        return None

    def _send(
        self, tick: int, x: float, y: float, vx: float, vy: float
    ) -> MotionSample:
        sample = MotionSample(tick, x, y, vx, vy)
        self.last_sent = sample
        self.stats.updates_sent += 1
        return sample


class DeadReckoningReceiver:
    """Receiver side: extrapolates the last received sample."""

    def __init__(self, dt: float = 1.0 / 30.0):
        self.dt = dt
        self.last_sample: MotionSample | None = None

    def on_sample(self, sample: MotionSample) -> None:
        """Accept a new sample (out-of-order samples are ignored)."""
        if self.last_sample is None or sample.tick >= self.last_sample.tick:
            self.last_sample = sample

    def position_at(self, tick: int) -> tuple[float, float] | None:
        """Predicted position at ``tick``, or None before any sample."""
        if self.last_sample is None:
            return None
        return self.last_sample.extrapolate(tick, self.dt)

    def record_error(
        self, stats: DeadReckoningStats, tick: int, true_x: float, true_y: float
    ) -> float | None:
        """Sample the current prediction error into ``stats``."""
        predicted = self.position_at(tick)
        if predicted is None:
            return None
        err = math.hypot(predicted[0] - true_x, predicted[1] - true_y)
        stats.error_samples.append(err)
        return err
