"""Authoritative replication server.

Owns the truth (a :class:`~repro.core.world.GameWorld`), applies client
inputs, and pushes state to clients through the simulated network under a
:class:`~repro.consistency.levels.ConsistencyPolicy`:

* STRONG fields replicate the tick they change;
* COARSE fields replicate on a cadence, quantised;
* EVENTUAL fields replicate on a slow cadence.

Replication is scoped by an :class:`~repro.consistency.interest.
InterestManager`: clients only hear about entities in their AOI, and get
EntityEnter/EntityExit messages at the boundary.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.consistency.interest import InterestManager
from repro.consistency.levels import ConsistencyLevel, ConsistencyPolicy
from repro.errors import NetError
from repro.net.protocol import (
    EntityEnter,
    EntityExit,
    InputAck,
    InputCommand,
    StateUpdate,
)
from repro.net.simnet import SimNetwork

#: Handler signature for input commands:
#: fn(world, client_name, command) -> dict of authoritative field values.
InputHandler = Callable[[Any, str, InputCommand], dict[str, Any]]


class ReplicationServer:
    """The server endpoint of the replication protocol."""

    def __init__(
        self,
        world: Any,
        network: SimNetwork,
        policy: ConsistencyPolicy,
        interest: InterestManager | None = None,
        replicated_components: tuple[str, ...] = ("Position",),
        coarse_interval: int = 5,
        eventual_interval: int = 30,
        quantum: float = 0.5,
        name: str = "server",
    ):
        self.world = world
        self.network = network
        self.policy = policy
        self.interest = interest
        self.replicated_components = replicated_components
        self.coarse_interval = coarse_interval
        self.eventual_interval = eventual_interval
        self.quantum = quantum
        self.name = name
        network.add_endpoint(name)
        self._clients: dict[str, int] = {}  # client name -> avatar entity
        self._input_handlers: dict[str, InputHandler] = {}
        self._dirty: dict[int, dict[str, Any]] = defaultdict(dict)
        self._known: dict[str, set[int]] = defaultdict(set)  # client -> entities
        self._tick = 0
        world.add_change_hook(self._on_change)

    # -- registration ----------------------------------------------------------------

    def register_client(self, client_name: str, avatar_entity: int) -> None:
        """Attach a client endpoint and its avatar entity."""
        if client_name in self._clients:
            raise NetError(f"client {client_name!r} already registered")
        self._clients[client_name] = avatar_entity

    def register_input(self, action: str, handler: InputHandler) -> None:
        """Install the authoritative handler for one input action."""
        self._input_handlers[action] = handler

    def avatar_of(self, client_name: str) -> int:
        """The avatar entity of a client."""
        try:
            return self._clients[client_name]
        except KeyError:
            raise NetError(f"unknown client {client_name!r}") from None

    # -- change capture -----------------------------------------------------------------

    def _on_change(
        self, op: str, entity_id: int, component: str | None, payload: Any
    ) -> None:
        if op in ("update", "attach") and component in self.replicated_components:
            self._dirty[entity_id].update(payload or {})
        elif op == "destroy":
            self._dirty.pop(entity_id, None)

    # -- per-tick driver -----------------------------------------------------------------

    def tick(self) -> None:
        """One server frame: apply inputs, update AOIs, replicate."""
        self._tick += 1
        self._process_inputs()
        self._update_interest()
        self._replicate()

    def _process_inputs(self) -> None:
        for msg in self.network.receive(self.name):
            cmd = msg.payload
            if not isinstance(cmd, InputCommand):
                continue
            handler = self._input_handlers.get(cmd.action)
            if handler is None:
                ack = InputAck(cmd.seq, False, {}, self._tick)
            else:
                authoritative = handler(self.world, cmd.client, cmd)
                ack = InputAck(cmd.seq, True, authoritative, self._tick)
            self.network.send(self.name, cmd.client, ack, ack.wire_size())

    def _update_interest(self) -> None:
        if self.interest is None:
            return
        positions = {}
        table = self.world.table("Position")
        for eid in table.entity_ids:
            row = table.get(eid)
            positions[eid] = (row["x"], row["y"])
        observers = list(self._clients.values())
        events = self.interest.update(observers, positions)
        avatar_to_client = {v: k for k, v in self._clients.items()}
        for event in events:
            client = avatar_to_client.get(event.observer)
            if client is None:
                continue
            if event.kind == "enter":
                fields = self._full_state(event.subject)
                self._known[client].add(event.subject)
                msg = EntityEnter(event.subject, fields, self._tick)
            else:
                self._known[client].discard(event.subject)
                msg = EntityExit(event.subject, self._tick)
            self.network.send(self.name, client, msg, msg.wire_size())

    def _replicate(self) -> None:
        if not self._dirty:
            return
        for entity_id, fields in list(self._dirty.items()):
            due: dict[str, Any] = {}
            tiers: set[str] = set()
            for fname, value in list(fields.items()):
                level = self.policy.level_of(fname)
                if level == ConsistencyLevel.STRONG:
                    due[fname] = value
                    tiers.add("strong")
                    del fields[fname]
                elif level == ConsistencyLevel.COARSE:
                    if self._tick % self.coarse_interval == 0:
                        due[fname] = self._quantise(value)
                        tiers.add("coarse")
                        del fields[fname]
                else:
                    if self._tick % self.eventual_interval == 0:
                        due[fname] = value
                        tiers.add("eventual")
                        del fields[fname]
            if not fields:
                del self._dirty[entity_id]
            if not due:
                continue
            tier = sorted(tiers)[0]
            update = StateUpdate(entity_id, due, self._tick, tier)
            for client in self._recipients(entity_id):
                self.network.send(self.name, client, update, update.wire_size())

    def _recipients(self, entity_id: int) -> list[str]:
        if self.interest is None:
            return list(self._clients)
        out = []
        for client, avatar in self._clients.items():
            if entity_id == avatar or entity_id in self.interest.aoi_of(avatar):
                out.append(client)
        return out

    def _full_state(self, entity_id: int) -> dict[str, Any]:
        fields: dict[str, Any] = {}
        for comp in self.replicated_components:
            if self.world.has(entity_id, comp):
                fields.update(self.world.get(entity_id, comp))
        return fields

    def _quantise(self, value: Any) -> Any:
        if isinstance(value, (int, float)) and self.quantum > 0:
            return round(value / self.quantum) * self.quantum
        return value
