"""Deterministic discrete-event network simulator.

Models the transport between game clients and the authoritative server:
per-link latency (fixed + deterministic jitter), drop probability, and
bandwidth accounting.  Time is the server tick; a message sent at tick t
over a link with latency L arrives in the recipient's inbox at tick
``t + L`` (or never, if dropped).

Determinism: jitter and loss come from a seeded ``random.Random`` per
link, so runs replay exactly — a property every test in
:mod:`tests.net` leans on.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any

from repro.errors import NetError


@dataclass(frozen=True)
class Message:
    """One message on the wire."""

    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_tick: int
    deliver_tick: int
    seq: int

    def __repr__(self) -> str:
        """Stable one-line form for debugging traces.

        Identifies the payload by type name instead of dumping it, so
        trace lines stay short and identical across runs — diffing two
        same-seed traces is the cluster's first debugging tool.
        """
        return (
            f"Message#{self.seq} {self.src}->{self.dst} "
            f"{type(self.payload).__name__} t{self.sent_tick}->t{self.deliver_tick} "
            f"{self.size_bytes}B"
        )


@dataclass
class LinkConfig:
    """Link parameters between two endpoints.

    latency_ticks:
        Base one-way latency in ticks.
    jitter_ticks:
        Uniform extra delay in [0, jitter_ticks].
    loss_rate:
        Probability a message is silently dropped.
    """

    latency_ticks: int = 2
    jitter_ticks: int = 0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ticks < 0 or self.jitter_ticks < 0:
            raise NetError("latency/jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise NetError("loss_rate must be in [0, 1)")


@dataclass
class LinkStats:
    """Per-link accounting."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0


class SimNetwork:
    """The message fabric between named endpoints."""

    def __init__(self, seed: int = 0):
        self._links: dict[tuple[str, str], LinkConfig] = {}
        self._rngs: dict[tuple[str, str], random.Random] = {}
        self.stats: dict[tuple[str, str], LinkStats] = {}
        self._in_flight: list[tuple[int, int, Message]] = []  # (deliver, seq, msg)
        self._inboxes: dict[str, list[Message]] = {}
        self._seq = 0
        self._seed = seed
        self.now = 0

    # -- topology -----------------------------------------------------------------

    def add_endpoint(self, name: str) -> None:
        """Register an endpoint (idempotent)."""
        self._inboxes.setdefault(name, [])

    def connect(self, a: str, b: str, config: LinkConfig | None = None) -> None:
        """Create a bidirectional link between two endpoints."""
        self.add_endpoint(a)
        self.add_endpoint(b)
        cfg = config or LinkConfig()
        for pair in ((a, b), (b, a)):
            self._links[pair] = cfg
            self._rngs[pair] = random.Random(
                (self._seed, pair[0], pair[1]).__hash__()
            )
            self.stats[pair] = LinkStats()

    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        return sorted(self._inboxes)

    # -- send/receive ----------------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 64) -> bool:
        """Send a message; returns False when the link dropped it."""
        link = self._links.get((src, dst))
        if link is None:
            raise NetError(f"no link {src} -> {dst}")
        stats = self.stats[(src, dst)]
        stats.sent += 1
        stats.bytes_sent += size_bytes
        rng = self._rngs[(src, dst)]
        if link.loss_rate and rng.random() < link.loss_rate:
            stats.dropped += 1
            return False
        jitter = rng.randint(0, link.jitter_ticks) if link.jitter_ticks else 0
        deliver = self.now + max(1, link.latency_ticks + jitter)
        self._seq += 1
        msg = Message(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            sent_tick=self.now,
            deliver_tick=deliver,
            seq=self._seq,
        )
        heapq.heappush(self._in_flight, (deliver, msg.seq, msg))
        return True

    def broadcast(
        self, src: str, dsts: list[str], payload: Any, size_bytes: int = 64
    ) -> int:
        """Send to many endpoints; returns messages actually queued."""
        return sum(
            1 for dst in dsts if self.send(src, dst, payload, size_bytes)
        )

    def advance(self, ticks: int = 1) -> int:
        """Advance simulated time, moving due messages into inboxes."""
        delivered = 0
        for _ in range(ticks):
            self.now += 1
            while self._in_flight and self._in_flight[0][0] <= self.now:
                _d, _s, msg = heapq.heappop(self._in_flight)
                self._inboxes[msg.dst].append(msg)
                self.stats[(msg.src, msg.dst)].delivered += 1
                delivered += 1
        return delivered

    def receive(self, endpoint: str) -> list[Message]:
        """Drain the endpoint's inbox (delivery order)."""
        if endpoint not in self._inboxes:
            raise NetError(f"unknown endpoint {endpoint!r}")
        msgs = self._inboxes[endpoint]
        self._inboxes[endpoint] = []
        return msgs

    def in_flight_count(self) -> int:
        """Messages currently on the wire."""
        return len(self._in_flight)

    def total_bytes(self) -> int:
        """Total bytes offered to the network across all links."""
        return sum(s.bytes_sent for s in self.stats.values())
