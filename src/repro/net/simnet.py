"""Deterministic discrete-event network simulator.

Models the transport between game clients and the authoritative server:
per-link latency (fixed + deterministic jitter), drop probability, and
bandwidth accounting.  Time is the server tick; a message sent at tick t
over a link with latency L arrives in the recipient's inbox at tick
``t + L`` (or never, if dropped).

Determinism: jitter and loss come from a seeded ``random.Random`` per
link, so runs replay exactly — a property every test in
:mod:`tests.net` leans on.

Failures are first-class: an endpoint can be marked **down** (a crashed
host — sends from it fail, deliveries to it are dropped), a directed
link can be **blocked** (a message-drop burst), and a pair of endpoints
can be **partitioned** (blocked both ways).  Every fault drop is counted
separately from random loss so tests can assert on exactly what the
network did; :class:`~repro.net.faults.FaultInjector` schedules these
faults against simulated time.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any

from repro.errors import NetError
from repro.net.protocol import default_size_of
from repro.obs.metrics import MetricsRegistry, StatView


@dataclass(frozen=True)
class Message:
    """One message on the wire.

    ``ctx`` is the optional causal :class:`~repro.obs.causal.TraceContext`
    riding the message — in-process it travels as the object itself (the
    socket paths use the ``net.protocol`` context wrapper instead).
    """

    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_tick: int
    deliver_tick: int
    seq: int
    ctx: Any = None

    def __repr__(self) -> str:
        """Stable one-line form for debugging traces.

        Identifies the payload by type name instead of dumping it, so
        trace lines stay short and identical across runs — diffing two
        same-seed traces is the cluster's first debugging tool.
        """
        return (
            f"Message#{self.seq} {self.src}->{self.dst} "
            f"{type(self.payload).__name__} t{self.sent_tick}->t{self.deliver_tick} "
            f"{self.size_bytes}B"
        )


@dataclass
class LinkConfig:
    """Link parameters between two endpoints.

    latency_ticks:
        Base one-way latency in ticks.
    jitter_ticks:
        Uniform extra delay in [0, jitter_ticks].
    loss_rate:
        Probability a message is silently dropped.
    """

    latency_ticks: int = 2
    jitter_ticks: int = 0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ticks < 0 or self.jitter_ticks < 0:
            raise NetError("latency/jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise NetError("loss_rate must be in [0, 1)")


#: LinkStats field names, in the order :meth:`LinkStats.as_dict` emits.
_LINK_FIELDS = (
    "sent", "delivered", "dropped", "dropped_fault", "delayed",
    "delay_ticks", "bytes_sent", "bytes_recv",
)


class LinkStats(StatView):
    """Per-link accounting, backed by :class:`~repro.obs.metrics.MetricsRegistry`.

    ``dropped`` counts random (loss-rate) drops; ``dropped_fault``
    counts drops caused by injected faults (down endpoints, blocked
    links, partitions); ``delayed`` counts messages that drew non-zero
    jitter and ``delay_ticks`` sums the extra ticks they waited — the
    counters the fault injector and the replication benchmarks assert
    against.  ``bytes_sent`` bills at send time, ``bytes_recv`` at
    delivery, so their difference is exactly the bytes lost to drops
    plus bytes still on the wire — the in-process baseline the E19
    gateway bytes/client numbers are compared against.  Fields read and
    write like plain attributes; the storage is registry counters
    (``net.link.<field>`` labelled by link), so the network's metrics
    snapshot and these stats can never disagree.
    """

    __slots__ = ()

    def __init__(self, registry: MetricsRegistry | None = None, link: str = ""):
        registry = registry if registry is not None else MetricsRegistry()
        super().__init__(
            {
                f: registry.counter(f"net.link.{f}", link=link)
                for f in _LINK_FIELDS
            }
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form used by :meth:`SimNetwork.stats`."""
        return {f: getattr(self, f) for f in _LINK_FIELDS}


class SimNetwork:
    """The message fabric between named endpoints."""

    def __init__(self, seed: int = 0, registry: MetricsRegistry | None = None):
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._links: dict[tuple[str, str], LinkConfig] = {}
        self._rngs: dict[tuple[str, str], random.Random] = {}
        self.link_stats: dict[tuple[str, str], LinkStats] = {}
        self._in_flight: list[tuple[int, int, Message]] = []  # (deliver, seq, msg)
        self._inboxes: dict[str, list[Message]] = {}
        self._down: set[str] = set()
        self._blocked: set[tuple[str, str]] = set()
        self._seq = 0
        self._seed = seed
        self.now = 0

    # -- topology -----------------------------------------------------------------

    def add_endpoint(self, name: str) -> None:
        """Register an endpoint (idempotent)."""
        self._inboxes.setdefault(name, [])

    def connect(self, a: str, b: str, config: LinkConfig | None = None) -> None:
        """Create a bidirectional link between two endpoints."""
        self.add_endpoint(a)
        self.add_endpoint(b)
        cfg = config or LinkConfig()
        for pair in ((a, b), (b, a)):
            self._links[pair] = cfg
            self._rngs[pair] = random.Random(
                (self._seed, pair[0], pair[1]).__hash__()
            )
            if pair not in self.link_stats:
                self.link_stats[pair] = LinkStats(
                    self.metrics, link=f"{pair[0]}->{pair[1]}"
                )

    def endpoints(self) -> list[str]:
        """All registered endpoint names."""
        return sorted(self._inboxes)

    # -- fault plane --------------------------------------------------------------

    def set_down(self, endpoint: str) -> None:
        """Mark an endpoint crashed: sends fail, deliveries are dropped."""
        if endpoint not in self._inboxes:
            raise NetError(f"unknown endpoint {endpoint!r}")
        self._down.add(endpoint)

    def set_up(self, endpoint: str) -> None:
        """Bring a crashed endpoint back (a replacement host took over)."""
        self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        """Whether the endpoint is currently marked down."""
        return endpoint in self._down

    def block(self, src: str, dst: str) -> None:
        """Start dropping every message on the directed link src→dst."""
        self._blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        """Stop dropping on the directed link src→dst."""
        self._blocked.discard((src, dst))

    def partition(self, a: str, b: str) -> None:
        """Sever the pair in both directions (a network partition)."""
        self.block(a, b)
        self.block(b, a)

    def heal(self, a: str, b: str) -> None:
        """Undo :meth:`partition` for the pair."""
        self.unblock(a, b)
        self.unblock(b, a)

    def _faulted(self, src: str, dst: str) -> bool:
        return (
            src in self._down
            or dst in self._down
            or (src, dst) in self._blocked
        )

    # -- send/receive ----------------------------------------------------------------

    def send(
        self, src: str, dst: str, payload: Any, size_bytes: int | None = 64,
        ctx: Any = None,
    ) -> bool:
        """Send a message; returns False when the link dropped it.

        ``size_bytes=None`` bills the shared deterministic size model
        (:func:`~repro.net.protocol.default_size_of`): protocol messages
        cost their ``wire_size()``, everything else the 64-byte default —
        the same accounting the gateway's socket path reports.
        """
        link = self._links.get((src, dst))
        if link is None:
            raise NetError(f"no link {src} -> {dst}")
        if size_bytes is None:
            size_bytes = default_size_of(payload)
        stats = self.link_stats[(src, dst)]
        stats.sent += 1
        stats.bytes_sent += size_bytes
        if self._faulted(src, dst):
            stats.dropped_fault += 1
            return False
        rng = self._rngs[(src, dst)]
        if link.loss_rate and rng.random() < link.loss_rate:
            stats.dropped += 1
            return False
        jitter = rng.randint(0, link.jitter_ticks) if link.jitter_ticks else 0
        if jitter:
            stats.delayed += 1
            stats.delay_ticks += jitter
        deliver = self.now + max(1, link.latency_ticks + jitter)
        self._seq += 1
        msg = Message(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            sent_tick=self.now,
            deliver_tick=deliver,
            seq=self._seq,
            ctx=ctx,
        )
        heapq.heappush(self._in_flight, (deliver, msg.seq, msg))
        return True

    def broadcast(
        self, src: str, dsts: list[str], payload: Any, size_bytes: int | None = 64,
        ctx: Any = None,
    ) -> int:
        """Send to many endpoints; returns messages actually queued."""
        return sum(
            1 for dst in dsts if self.send(src, dst, payload, size_bytes, ctx)
        )

    def advance(self, ticks: int = 1) -> int:
        """Advance simulated time, moving due messages into inboxes.

        A message whose destination went down while it was on the wire
        is dropped at delivery time — exactly what happens to packets
        addressed to a crashed host.
        """
        delivered = 0
        for _ in range(ticks):
            self.now += 1
            while self._in_flight and self._in_flight[0][0] <= self.now:
                _d, _s, msg = heapq.heappop(self._in_flight)
                if msg.dst in self._down:
                    self.link_stats[(msg.src, msg.dst)].dropped_fault += 1
                    continue
                self._inboxes[msg.dst].append(msg)
                stats = self.link_stats[(msg.src, msg.dst)]
                stats.delivered += 1
                stats.bytes_recv += msg.size_bytes
                delivered += 1
        return delivered

    def receive(self, endpoint: str) -> list[Message]:
        """Drain the endpoint's inbox (delivery order)."""
        if endpoint not in self._inboxes:
            raise NetError(f"unknown endpoint {endpoint!r}")
        msgs = self._inboxes[endpoint]
        self._inboxes[endpoint] = []
        return msgs

    def in_flight_count(self) -> int:
        """Messages currently on the wire."""
        return len(self._in_flight)

    def total_bytes(self) -> int:
        """Total bytes offered to the network across all links."""
        return sum(s.bytes_sent for s in self.link_stats.values())

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Summary dict of everything the network actually did.

        ``links`` maps ``"src->dst"`` to that link's counters (see
        :class:`LinkStats`), ``totals`` sums them, and the fault state
        (down endpoints, blocked directed links) is included so tests
        and benchmarks can assert drops against the injected faults.
        """
        links = {
            f"{src}->{dst}": stats.as_dict()
            for (src, dst), stats in sorted(self.link_stats.items())
        }
        totals = LinkStats()
        for stats in self.link_stats.values():
            for fname in _LINK_FIELDS:
                setattr(totals, fname, getattr(totals, fname) + getattr(stats, fname))
        return {
            "now": self.now,
            "in_flight": len(self._in_flight),
            "down": sorted(self._down),
            "blocked": sorted(self._blocked),
            "links": links,
            "totals": totals.as_dict(),
        }
