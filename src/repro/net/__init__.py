"""Network simulation substrate: deterministic message fabric with
first-class fault injection, replication protocol, authoritative server,
predicting client, dead reckoning."""

from repro.net.client import ClientStats, ReplicationClient
from repro.net.deadreckon import (
    DeadReckoningReceiver,
    DeadReckoningSender,
    DeadReckoningStats,
    MotionSample,
)
from repro.net.faults import CrashFault, DropBurst, FaultInjector, PartitionFault
from repro.net.protocol import (
    ENVELOPE_BYTES,
    EntityEnter,
    EntityExit,
    HandoffAck,
    HandoffCommand,
    HandoffComplete,
    HandoffRequest,
    HandoffResend,
    Heartbeat,
    InputAck,
    InputCommand,
    StateUpdate,
    TxnDecision,
    TxnPrepare,
    TxnVote,
    VALUE_BYTES,
    WalAck,
    WalShip,
)
from repro.net.server import ReplicationServer
from repro.net.simnet import LinkConfig, LinkStats, Message, SimNetwork

__all__ = [
    "ClientStats",
    "ReplicationClient",
    "DeadReckoningReceiver",
    "DeadReckoningSender",
    "DeadReckoningStats",
    "MotionSample",
    "CrashFault",
    "DropBurst",
    "FaultInjector",
    "PartitionFault",
    "ENVELOPE_BYTES",
    "EntityEnter",
    "EntityExit",
    "HandoffAck",
    "HandoffCommand",
    "HandoffComplete",
    "HandoffRequest",
    "HandoffResend",
    "Heartbeat",
    "InputAck",
    "InputCommand",
    "StateUpdate",
    "TxnDecision",
    "TxnPrepare",
    "TxnVote",
    "VALUE_BYTES",
    "WalAck",
    "WalShip",
    "ReplicationServer",
    "LinkConfig",
    "LinkStats",
    "Message",
    "SimNetwork",
]
