"""Network simulation substrate: deterministic message fabric, replication
protocol, authoritative server, predicting client, dead reckoning."""

from repro.net.client import ClientStats, ReplicationClient
from repro.net.deadreckon import (
    DeadReckoningReceiver,
    DeadReckoningSender,
    DeadReckoningStats,
    MotionSample,
)
from repro.net.protocol import (
    ENVELOPE_BYTES,
    EntityEnter,
    EntityExit,
    HandoffAck,
    HandoffCommand,
    HandoffRequest,
    InputAck,
    InputCommand,
    StateUpdate,
    TxnDecision,
    TxnPrepare,
    TxnVote,
    VALUE_BYTES,
)
from repro.net.server import ReplicationServer
from repro.net.simnet import LinkConfig, LinkStats, Message, SimNetwork

__all__ = [
    "ClientStats",
    "ReplicationClient",
    "DeadReckoningReceiver",
    "DeadReckoningSender",
    "DeadReckoningStats",
    "MotionSample",
    "ENVELOPE_BYTES",
    "EntityEnter",
    "EntityExit",
    "HandoffAck",
    "HandoffCommand",
    "HandoffRequest",
    "InputAck",
    "InputCommand",
    "StateUpdate",
    "TxnDecision",
    "TxnPrepare",
    "TxnVote",
    "VALUE_BYTES",
    "ReplicationServer",
    "LinkConfig",
    "LinkStats",
    "Message",
    "SimNetwork",
]
