"""Scheduled fault injection for :class:`~repro.net.simnet.SimNetwork`.

Failures become first-class test inputs: a :class:`FaultInjector` holds
a deterministic schedule of faults — host crashes, link partitions, and
message-drop bursts — and applies them to the network as simulated time
passes.  The replicated cluster coordinator consults the injector every
global tick, so a run with a fault plan replays exactly like any other
seeded run (the fault tests and the E15 failover benchmark depend on
this).

Faults are expressed against endpoint names (``shard:0``,
``replica:0:1``, ``coord``), the same names the cluster uses, so a test
reads like an incident report::

    injector = FaultInjector()
    injector.crash("shard:0", at_tick=40)
    injector.partition_link("coord", "shard:1", at_tick=10, until_tick=20)
    injector.drop_burst("shard:1", "replica:1:0", at_tick=25, until_tick=30)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetError
from repro.net.simnet import SimNetwork


@dataclass(frozen=True)
class CrashFault:
    """Kill an endpoint at a tick (it never comes back by itself)."""

    endpoint: str
    at_tick: int


@dataclass(frozen=True)
class PartitionFault:
    """Sever a pair of endpoints both ways for [at_tick, until_tick)."""

    a: str
    b: str
    at_tick: int
    until_tick: int


@dataclass(frozen=True)
class DropBurst:
    """Drop every message on one directed link for [at_tick, until_tick)."""

    src: str
    dst: str
    at_tick: int
    until_tick: int


@dataclass
class FaultInjector:
    """Deterministic fault schedule applied to a :class:`SimNetwork`.

    :meth:`apply` is called once per simulated tick (after the network
    advanced to that tick); it turns scheduled faults on and off and
    returns the endpoints that crashed *this* tick so the caller — the
    replicated cluster coordinator — can take the host out of the tick
    barrier.  All bookkeeping is ordered, so fault runs replay.
    """

    crashes: list[CrashFault] = field(default_factory=list)
    partitions: list[PartitionFault] = field(default_factory=list)
    bursts: list[DropBurst] = field(default_factory=list)
    applied_crashes: int = 0
    applied_partitions: int = 0
    applied_bursts: int = 0

    # -- schedule building --------------------------------------------------------

    def crash(self, endpoint: str, at_tick: int) -> "FaultInjector":
        """Schedule a crash; returns self for chaining."""
        if at_tick < 0:
            raise NetError("crash tick must be non-negative")
        self.crashes.append(CrashFault(endpoint, at_tick))
        return self

    def partition_link(
        self, a: str, b: str, at_tick: int, until_tick: int
    ) -> "FaultInjector":
        """Schedule a bidirectional partition for [at_tick, until_tick)."""
        if until_tick <= at_tick:
            raise NetError("partition must end after it starts")
        self.partitions.append(PartitionFault(a, b, at_tick, until_tick))
        return self

    def drop_burst(
        self, src: str, dst: str, at_tick: int, until_tick: int
    ) -> "FaultInjector":
        """Schedule a one-way message-drop burst for [at_tick, until_tick)."""
        if until_tick <= at_tick:
            raise NetError("drop burst must end after it starts")
        self.bursts.append(DropBurst(src, dst, at_tick, until_tick))
        return self

    # -- application --------------------------------------------------------------

    def crashes_due(self, tick: int) -> list[str]:
        """Endpoints whose scheduled crash tick is exactly ``tick``."""
        return sorted(f.endpoint for f in self.crashes if f.at_tick == tick)

    def apply(self, net: SimNetwork, tick: int) -> list[str]:
        """Apply the schedule for one tick; returns endpoints crashing now.

        The caller is responsible for the host-level consequences of a
        crash (skipping its tick, discarding its inbox); the injector
        only flips the network-level fault state.
        """
        crashed = self.crashes_due(tick)
        for endpoint in crashed:
            net.set_down(endpoint)
            self.applied_crashes += 1
        for fault in self.partitions:
            if fault.at_tick == tick:
                net.partition(fault.a, fault.b)
                self.applied_partitions += 1
            elif fault.until_tick == tick:
                net.heal(fault.a, fault.b)
        for burst in self.bursts:
            if burst.at_tick == tick:
                net.block(burst.src, burst.dst)
                self.applied_bursts += 1
            elif burst.until_tick == tick:
                net.unblock(burst.src, burst.dst)
        return crashed
