"""Game client: local replica, input prediction, and reconciliation.

The client keeps a dictionary replica of the entities the server has
shown it.  For its *own* avatar it practises client-side prediction: an
input is applied locally the moment it is sent, and when the
authoritative :class:`~repro.net.protocol.InputAck` arrives, the replica
snaps to the server value and unacknowledged inputs replay on top — the
standard technique that hides round-trip latency from the player.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NetError
from repro.net.protocol import (
    EntityEnter,
    EntityExit,
    InputAck,
    InputCommand,
    StateUpdate,
)
from repro.net.simnet import SimNetwork

#: Local predictor: fn(current_fields, command) -> new fields (partial).
Predictor = Callable[[dict[str, Any], InputCommand], dict[str, Any]]


@dataclass
class ClientStats:
    """Client-side protocol accounting."""

    updates_applied: int = 0
    enters: int = 0
    exits: int = 0
    inputs_sent: int = 0
    reconciliations: int = 0
    mispredictions: int = 0


class ReplicationClient:
    """One client endpoint of the replication protocol."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        server: str = "server",
        avatar: int | None = None,
    ):
        self.name = name
        self.network = network
        self.server = server
        self.avatar = avatar
        network.add_endpoint(name)
        #: entity -> replicated field values as last seen/predicted
        self.replica: dict[int, dict[str, Any]] = {}
        self._predictors: dict[str, Predictor] = {}
        self._pending: list[InputCommand] = []  # unacked inputs, seq order
        self._seq = 0
        self._tick = 0
        self.stats = ClientStats()

    # -- configuration ------------------------------------------------------------

    def register_predictor(self, action: str, predictor: Predictor) -> None:
        """Install the local prediction function for one action."""
        self._predictors[action] = predictor

    # -- input ----------------------------------------------------------------------

    def send_input(self, action: str, **args: Any) -> InputCommand:
        """Send an input, applying local prediction immediately."""
        self._seq += 1
        cmd = InputCommand(
            client=self.name, seq=self._seq, action=action, args=args, tick=self._tick
        )
        self.network.send(self.name, self.server, cmd, cmd.wire_size())
        self.stats.inputs_sent += 1
        if self.avatar is not None:
            predictor = self._predictors.get(action)
            if predictor is not None:
                current = self.replica.setdefault(self.avatar, {})
                current.update(predictor(dict(current), cmd))
                self._pending.append(cmd)
        return cmd

    # -- receive loop -----------------------------------------------------------------

    def tick(self) -> None:
        """Drain the inbox and apply messages to the replica."""
        self._tick += 1
        for msg in self.network.receive(self.name):
            payload = msg.payload
            if isinstance(payload, StateUpdate):
                self._apply_update(payload)
            elif isinstance(payload, EntityEnter):
                self.replica[payload.entity] = dict(payload.fields)
                self.stats.enters += 1
            elif isinstance(payload, EntityExit):
                self.replica.pop(payload.entity, None)
                self.stats.exits += 1
            elif isinstance(payload, InputAck):
                self._reconcile(payload)

    def _apply_update(self, update: StateUpdate) -> None:
        # Updates for the predicted avatar are handled via acks; applying
        # them blindly would undo prediction.
        if update.entity == self.avatar and self._pending:
            return
        state = self.replica.setdefault(update.entity, {})
        state.update(update.fields)
        self.stats.updates_applied += 1

    def _reconcile(self, ack: InputAck) -> None:
        self._pending = [c for c in self._pending if c.seq > ack.seq]
        if self.avatar is None:
            return
        state = self.replica.setdefault(self.avatar, {})
        predicted = dict(state)
        state.clear()
        state.update(ack.authoritative)
        # Replay unacknowledged inputs on top of the authoritative state.
        for cmd in self._pending:
            predictor = self._predictors.get(cmd.action)
            if predictor is not None:
                state.update(predictor(dict(state), cmd))
        self.stats.reconciliations += 1
        if predicted != state:
            self.stats.mispredictions += 1

    # -- inspection --------------------------------------------------------------------

    def known_entities(self) -> list[int]:
        """Entities currently in the replica."""
        return sorted(self.replica)

    def field_of(self, entity: int, field_name: str) -> Any:
        """One replicated field value."""
        try:
            return self.replica[entity][field_name]
        except KeyError:
            raise NetError(
                f"client {self.name!r} has no {field_name!r} for entity {entity}"
            ) from None
