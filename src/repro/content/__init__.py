"""Content pipeline: schemas, templates, XML UI specs, loaders, expansions."""

from repro.content.expansion import ExpansionManager, ExpansionPack
from repro.content.loader import ContentDatabase
from repro.content.schema import (
    ContentField,
    ContentSchema,
    standard_game_schemas,
)
from repro.content.templates import (
    EntityTemplate,
    TemplateLibrary,
    library_from_records,
)
from repro.content.xmlui import (
    ANCHOR_POINTS,
    SCRIPT_HOOKS,
    WIDGET_TAGS,
    LayoutRect,
    UIDocument,
    Widget,
    parse_ui,
)

__all__ = [
    "ExpansionManager",
    "ExpansionPack",
    "ContentDatabase",
    "ContentField",
    "ContentSchema",
    "standard_game_schemas",
    "EntityTemplate",
    "TemplateLibrary",
    "library_from_records",
    "ANCHOR_POINTS",
    "SCRIPT_HOOKS",
    "WIDGET_TAGS",
    "LayoutRect",
    "UIDocument",
    "Widget",
    "parse_ui",
]
