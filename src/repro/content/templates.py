"""Entity archetype templates with inheritance.

Templates are the bridge from content to the entity world: a template
names a set of components with default field values, optionally
inheriting from a parent ("elite_orc extends orc, hp ×3").  Expansion
packs ship almost entirely as new templates (tutorial: "expansion packs
typically contain new content, but … very few modifications to the
underlying software").

``TemplateLibrary.instantiate(world, name, **overrides)`` spawns an
entity with the fully-resolved component set.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TemplateError


class EntityTemplate:
    """One named archetype: component -> field defaults, plus a parent."""

    def __init__(
        self,
        name: str,
        components: Mapping[str, Mapping[str, Any]],
        parent: str | None = None,
        tags: tuple[str, ...] = (),
    ):
        self.name = name
        self.components = {c: dict(v) for c, v in components.items()}
        self.parent = parent
        self.tags = tuple(tags)

    def __repr__(self) -> str:  # pragma: no cover
        return f"EntityTemplate({self.name}, parent={self.parent})"


class TemplateLibrary:
    """Registry of templates with inheritance resolution and spawning."""

    def __init__(self) -> None:
        self._templates: dict[str, EntityTemplate] = {}
        self._resolved_cache: dict[str, dict[str, dict[str, Any]]] = {}

    # -- registration ------------------------------------------------------------

    def add(self, template: EntityTemplate) -> EntityTemplate:
        """Register a template (name must be unique)."""
        if template.name in self._templates:
            raise TemplateError(f"template {template.name!r} already exists")
        self._templates[template.name] = template
        self._resolved_cache.clear()
        return template

    def define(
        self,
        name: str,
        parent: str | None = None,
        tags: tuple[str, ...] = (),
        **components: Mapping[str, Any],
    ) -> EntityTemplate:
        """Convenience constructor + :meth:`add`."""
        return self.add(EntityTemplate(name, components, parent, tags))

    def get(self, name: str) -> EntityTemplate:
        """Look up a template by name."""
        try:
            return self._templates[name]
        except KeyError:
            raise TemplateError(f"no template named {name!r}") from None

    def names(self) -> list[str]:
        """All registered template names."""
        return sorted(self._templates)

    def with_tag(self, tag: str) -> list[str]:
        """Names of templates carrying ``tag`` (inherited tags count)."""
        out = []
        for name in self._templates:
            tags: set[str] = set()
            for tpl in self._chain(name):
                tags.update(tpl.tags)
            if tag in tags:
                out.append(name)
        return sorted(out)

    # -- resolution ----------------------------------------------------------------

    def resolve(self, name: str) -> dict[str, dict[str, Any]]:
        """Fully-resolved component map for ``name`` (parents applied).

        Child values override parent values field-by-field; a child may
        add whole new components.  Cycles raise :class:`TemplateError`.
        """
        cached = self._resolved_cache.get(name)
        if cached is not None:
            return {c: dict(v) for c, v in cached.items()}
        merged: dict[str, dict[str, Any]] = {}
        for tpl in self._chain(name):
            for comp, values in tpl.components.items():
                merged.setdefault(comp, {}).update(values)
        self._resolved_cache[name] = {c: dict(v) for c, v in merged.items()}
        return merged

    def _chain(self, name: str) -> list[EntityTemplate]:
        """Root-first inheritance chain for ``name``."""
        chain: list[EntityTemplate] = []
        seen: set[str] = set()
        current: str | None = name
        while current is not None:
            if current in seen:
                raise TemplateError(
                    f"template inheritance cycle at {current!r}"
                )
            seen.add(current)
            tpl = self.get(current)
            chain.append(tpl)
            current = tpl.parent
        chain.reverse()
        return chain

    # -- spawning ---------------------------------------------------------------------

    def instantiate(
        self,
        world: Any,
        name: str,
        overrides: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> int:
        """Spawn an entity from a template into ``world``.

        ``overrides`` maps component -> field overrides applied on top of
        the resolved template (e.g. a spawn position).
        """
        components = self.resolve(name)
        for comp, values in (overrides or {}).items():
            components.setdefault(comp, {}).update(values)
        missing = [
            comp for comp in components if comp not in world.component_names()
        ]
        if missing:
            raise TemplateError(
                f"template {name!r} needs unregistered component(s) "
                f"{missing}; register them before instantiating"
            )
        return world.spawn(**components)


def library_from_records(
    records: Mapping[str, Mapping[str, Any]]
) -> TemplateLibrary:
    """Build a library from plain dict records (the loader's output).

    Record format::

        {"orc": {"parent": null, "tags": ["monster"],
                 "components": {"Health": {"hp": 30}, ...}}}
    """
    library = TemplateLibrary()
    for name, rec in records.items():
        library.add(
            EntityTemplate(
                name,
                rec.get("components", {}),
                parent=rec.get("parent"),
                tags=tuple(rec.get("tags", ())),
            )
        )
    # Validate all chains eagerly so content errors surface at load time.
    for name in library.names():
        library.resolve(name)
    return library
