"""Expansion packs: layered content without code changes.

    "Game expansion packs typically contain new content, but they include
    very few modifications to the underlying software."

An :class:`ExpansionPack` is a named content layer: new records, record
*patches* (field overrides on base-game records), and new templates.
:class:`ExpansionManager` applies packs in order onto a base
:class:`~repro.content.loader.ContentDatabase`, tracks provenance (which
layer last touched each record), and can diff two layer stacks — the
tooling a live game needs when content patches collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.content.loader import ContentDatabase
from repro.errors import ContentError


@dataclass
class ExpansionPack:
    """One content layer.

    Attributes
    ----------
    name:
        Pack name ("burning_legion").
    new_records:
        type -> id -> record for brand-new content.
    patches:
        type -> id -> partial field overrides for existing content.
    new_templates:
        Template records (see ``library_from_records`` format).
    """

    name: str
    new_records: dict[str, dict[str, dict[str, Any]]] = field(default_factory=dict)
    patches: dict[str, dict[str, dict[str, Any]]] = field(default_factory=dict)
    new_templates: dict[str, dict[str, Any]] = field(default_factory=dict)


class ExpansionManager:
    """Applies expansion packs onto a content database, in order."""

    def __init__(self, base: ContentDatabase):
        self.base = base
        self.applied: list[str] = []
        #: (type, id) -> name of the layer that last wrote the record.
        self.provenance: dict[tuple[str, str], str] = {}
        for type_name in base.schemas:
            for record_id in base.ids(type_name):
                self.provenance[(type_name, record_id)] = "base"

    def apply(self, pack: ExpansionPack) -> dict[str, int]:
        """Apply one pack; returns counts of added/patched records.

        New records must not collide with existing ids; patches must hit
        existing ids.  Both rules catch the most common content-merge
        mistakes at build time.
        """
        if pack.name in self.applied:
            raise ContentError(f"expansion {pack.name!r} already applied")
        added = patched = 0
        for type_name, records in pack.new_records.items():
            for record_id, data in records.items():
                self.base.add_record(type_name, record_id, data)
                self.provenance[(type_name, record_id)] = pack.name
                added += 1
        for type_name, patches in pack.patches.items():
            schema = self.base.schemas.get(type_name)
            if schema is None:
                raise ContentError(
                    f"{pack.name}: patch targets unknown type {type_name!r}"
                )
            for record_id, overrides in patches.items():
                current = self.base.get(type_name, record_id)  # raises if absent
                current.update(overrides)
                validated = schema.validate(current, record_id)
                self.base._records[type_name][record_id] = validated
                self.provenance[(type_name, record_id)] = pack.name
                patched += 1
        if pack.new_templates:
            self.base.load_templates(pack.new_templates)
        self.base.finalize()
        self.applied.append(pack.name)
        return {"added": added, "patched": patched}

    def owned_by(self, layer: str) -> list[tuple[str, str]]:
        """All (type, id) records last written by ``layer``."""
        return sorted(
            key for key, owner in self.provenance.items() if owner == layer
        )

    def layer_summary(self) -> dict[str, int]:
        """Layer name -> number of records it currently owns."""
        out: dict[str, int] = {}
        for owner in self.provenance.values():
            out[owner] = out.get(owner, 0) + 1
        return out
