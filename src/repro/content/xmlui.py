"""WoW-style XML UI specifications.

    "World of Warcraft contains an XML specification language that allows
    players to define the look of their user interface, from window
    positions to button functionality." (tutorial, §Data-Driven Design)

This module parses a small dialect of that idea: a ``<Ui>`` document of
nested frames/buttons/labels with anchors, sizes, and script hooks
(``onClick``, ``onShow`` …) that reference GSL handler functions.  The
loader validates structure, resolves anchors into absolute layout
rectangles, and surfaces dangling script references — the class of bug a
player-authored addon hits constantly.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import UISpecError

#: Widget tags the dialect accepts.
WIDGET_TAGS = ("Frame", "Button", "Label", "Bar")

#: Anchor points, WoW-style.
ANCHOR_POINTS = (
    "TOPLEFT", "TOP", "TOPRIGHT",
    "LEFT", "CENTER", "RIGHT",
    "BOTTOMLEFT", "BOTTOM", "BOTTOMRIGHT",
)

#: Script hooks widgets may declare.
SCRIPT_HOOKS = ("onClick", "onShow", "onHide", "onUpdate", "onValueChanged")


@dataclass
class Widget:
    """One parsed UI widget."""

    kind: str
    name: str
    width: float
    height: float
    anchor: str = "CENTER"
    relative_to: str | None = None
    offset_x: float = 0.0
    offset_y: float = 0.0
    text: str = ""
    scripts: dict[str, str] = field(default_factory=dict)
    children: list["Widget"] = field(default_factory=list)

    def walk(self) -> Iterator["Widget"]:
        """This widget and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class LayoutRect:
    """Resolved absolute rectangle for one widget."""

    name: str
    x: float
    y: float
    width: float
    height: float


class UIDocument:
    """A parsed ``<Ui>`` document."""

    def __init__(self, roots: list[Widget]):
        self.roots = roots
        self._by_name: dict[str, Widget] = {}
        for root in roots:
            for w in root.walk():
                if w.name in self._by_name:
                    raise UISpecError(f"duplicate widget name {w.name!r}")
                self._by_name[w.name] = w

    def widget(self, name: str) -> Widget:
        """Look up a widget by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UISpecError(f"no widget named {name!r}") from None

    def widgets(self) -> list[Widget]:
        """All widgets, document order."""
        out: list[Widget] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    def script_handlers(self) -> dict[str, str]:
        """Map ``widget.hook`` -> handler function name."""
        out = {}
        for w in self.widgets():
            for hook, handler in w.scripts.items():
                out[f"{w.name}.{hook}"] = handler
        return out

    def validate_handlers(self, known: set[str]) -> list[str]:
        """Handler names referenced but not in ``known`` (dangling refs)."""
        missing = []
        for key, handler in sorted(self.script_handlers().items()):
            if handler not in known:
                missing.append(f"{key} -> {handler}")
        return missing

    def layout(self, screen_w: float, screen_h: float) -> dict[str, LayoutRect]:
        """Resolve anchors into absolute rectangles on a screen.

        Children anchor within their parent (or the named ``relativeTo``
        widget); roots anchor within the screen.
        """
        rects: dict[str, LayoutRect] = {}

        def place(widget: Widget, px: float, py: float, pw: float, ph: float) -> None:
            base = rects.get(widget.relative_to) if widget.relative_to else None
            if widget.relative_to and base is None:
                raise UISpecError(
                    f"{widget.name}: relativeTo {widget.relative_to!r} "
                    "not yet laid out (forward reference?)"
                )
            if base is not None:
                bx, by, bw, bh = base.x, base.y, base.width, base.height
            else:
                bx, by, bw, bh = px, py, pw, ph
            ax, ay = _anchor_fraction(widget.anchor)
            x = bx + bw * ax - widget.width * ax + widget.offset_x
            y = by + bh * ay - widget.height * ay + widget.offset_y
            rects[widget.name] = LayoutRect(
                widget.name, x, y, widget.width, widget.height
            )
            for child in widget.children:
                place(child, x, y, widget.width, widget.height)

        for root in self.roots:
            place(root, 0.0, 0.0, screen_w, screen_h)
        return rects


def _anchor_fraction(anchor: str) -> tuple[float, float]:
    xs = {"LEFT": 0.0, "CENTER": 0.5, "RIGHT": 1.0}
    ys = {"TOP": 0.0, "CENTER": 0.5, "BOTTOM": 1.0}
    fx, fy = 0.5, 0.5
    for key, v in xs.items():
        if key in anchor:
            fx = v
    for key, v in ys.items():
        if key in anchor:
            fy = v
    return fx, fy


def parse_ui(source: str) -> UIDocument:
    """Parse an XML UI document string into a validated :class:`UIDocument`."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise UISpecError(f"malformed XML: {exc}") from exc
    if root.tag != "Ui":
        raise UISpecError(f"root element must be <Ui>, found <{root.tag}>")
    widgets = [_parse_widget(child) for child in root]
    if not widgets:
        raise UISpecError("<Ui> document declares no widgets")
    return UIDocument(widgets)


def _parse_widget(elem: ET.Element) -> Widget:
    if elem.tag not in WIDGET_TAGS:
        raise UISpecError(
            f"unknown widget tag <{elem.tag}>; expected one of {WIDGET_TAGS}"
        )
    name = elem.get("name")
    if not name:
        raise UISpecError(f"<{elem.tag}> is missing the name attribute")
    try:
        width = float(elem.get("width", "0"))
        height = float(elem.get("height", "0"))
        offset_x = float(elem.get("x", "0"))
        offset_y = float(elem.get("y", "0"))
    except ValueError as exc:
        raise UISpecError(f"{name}: non-numeric size/offset: {exc}") from exc
    if width < 0 or height < 0:
        raise UISpecError(f"{name}: negative size")
    anchor = elem.get("anchor", "CENTER")
    if anchor not in ANCHOR_POINTS:
        raise UISpecError(
            f"{name}: unknown anchor {anchor!r}; expected one of {ANCHOR_POINTS}"
        )
    scripts: dict[str, str] = {}
    children: list[Widget] = []
    for child in elem:
        if child.tag == "Scripts":
            for hook_elem in child:
                if hook_elem.tag not in SCRIPT_HOOKS:
                    raise UISpecError(
                        f"{name}: unknown script hook <{hook_elem.tag}>"
                    )
                handler = (hook_elem.text or "").strip()
                if not handler:
                    raise UISpecError(
                        f"{name}: empty handler for {hook_elem.tag}"
                    )
                scripts[hook_elem.tag] = handler
        else:
            children.append(_parse_widget(child))
    return Widget(
        kind=elem.tag,
        name=name,
        width=width,
        height=height,
        anchor=anchor,
        relative_to=elem.get("relativeTo"),
        offset_x=offset_x,
        offset_y=offset_y,
        text=elem.get("text", ""),
        scripts=scripts,
        children=children,
    )
