"""The content database: loading, validating, and cross-referencing
designer-authored records.

A :class:`ContentDatabase` holds typed content records (validated against
:mod:`repro.content.schema`), entity templates, UI documents, and GSL
scripts.  Records load from XML files/strings (the industry-standard
interchange the tutorial describes) or directly from dicts (tests,
procedural content).

Referential integrity — every ``ref`` field resolving to a real record —
is checked at load *completion*, not per record, so files may reference
each other in any order, exactly like a real data build.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any, Mapping

from repro.content.schema import ContentSchema, standard_game_schemas
from repro.content.templates import TemplateLibrary, library_from_records
from repro.content.xmlui import UIDocument, parse_ui
from repro.errors import ContentError, ValidationError


class ContentDatabase:
    """All loaded game content, indexed by (type, id)."""

    def __init__(self, schemas: Mapping[str, ContentSchema] | None = None):
        self.schemas: dict[str, ContentSchema] = dict(
            schemas if schemas is not None else standard_game_schemas()
        )
        self._records: dict[str, dict[str, dict[str, Any]]] = {
            t: {} for t in self.schemas
        }
        self.templates = TemplateLibrary()
        self.ui_documents: dict[str, UIDocument] = {}
        self.scripts: dict[str, str] = {}
        self._finalized = False

    # -- record API --------------------------------------------------------------

    def add_record(self, type_name: str, record_id: str, data: Mapping[str, Any]) -> dict:
        """Validate and store one content record."""
        schema = self._schema(type_name)
        if record_id in self._records[type_name]:
            raise ContentError(
                f"duplicate {type_name} id {record_id!r}"
            )
        normalized = schema.validate(data, record_id)
        self._records[type_name][record_id] = normalized
        self._finalized = False
        return normalized

    def get(self, type_name: str, record_id: str) -> dict[str, Any]:
        """Fetch one record (copy)."""
        records = self._records.get(type_name)
        if records is None:
            raise ContentError(f"unknown content type {type_name!r}")
        try:
            return dict(records[record_id])
        except KeyError:
            raise ContentError(
                f"no {type_name} record with id {record_id!r}"
            ) from None

    def ids(self, type_name: str) -> list[str]:
        """All record ids of a type."""
        if type_name not in self._records:
            raise ContentError(f"unknown content type {type_name!r}")
        return sorted(self._records[type_name])

    def count(self, type_name: str | None = None) -> int:
        """Record count for one type, or total."""
        if type_name is not None:
            return len(self._records.get(type_name, {}))
        return sum(len(r) for r in self._records.values())

    def where(self, type_name: str, **field_equals: Any) -> list[str]:
        """Record ids whose fields equal the given values (content query)."""
        out = []
        for record_id, rec in self._records.get(type_name, {}).items():
            if all(rec.get(k) == v for k, v in field_equals.items()):
                out.append(record_id)
        return sorted(out)

    # -- XML loading -----------------------------------------------------------------

    def load_xml_string(self, source: str) -> int:
        """Load a ``<Content>`` XML document; returns records loaded.

        Format::

            <Content>
              <item id="sword"><name>Sword</name><damage>7</damage></item>
              <monster id="orc"><name>Orc</name><hp>30</hp></monster>
            </Content>
        """
        try:
            root = ET.fromstring(source)
        except ET.ParseError as exc:
            raise ContentError(f"malformed content XML: {exc}") from exc
        if root.tag != "Content":
            raise ContentError(
                f"root element must be <Content>, found <{root.tag}>"
            )
        loaded = 0
        for elem in root:
            type_name = elem.tag
            record_id = elem.get("id")
            if not record_id:
                raise ContentError(f"<{type_name}> record missing id attribute")
            data = _element_to_record(elem, self._schema(type_name))
            self.add_record(type_name, record_id, data)
            loaded += 1
        return loaded

    def load_xml_file(self, path: str | Path) -> int:
        """Load a content XML file from disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.load_xml_string(text)

    def load_directory(self, path: str | Path) -> int:
        """Load every ``*.xml`` content file under a directory (sorted)."""
        base = Path(path)
        if not base.is_dir():
            raise ContentError(f"{base} is not a directory")
        loaded = 0
        for file in sorted(base.rglob("*.xml")):
            loaded += self.load_xml_file(file)
        return loaded

    # -- templates / UI / scripts -------------------------------------------------------

    def load_templates(self, records: Mapping[str, Mapping[str, Any]]) -> None:
        """Install entity templates (see ``library_from_records``)."""
        fresh = library_from_records(records)
        for name in fresh.names():
            self.templates.add(fresh.get(name))

    def load_ui(self, name: str, source: str) -> UIDocument:
        """Parse and store an XML UI document."""
        if name in self.ui_documents:
            raise ContentError(f"UI document {name!r} already loaded")
        doc = parse_ui(source)
        self.ui_documents[name] = doc
        return doc

    def load_script(self, name: str, source: str) -> None:
        """Store a named GSL script (compiled lazily by consumers)."""
        if name in self.scripts:
            raise ContentError(f"script {name!r} already loaded")
        self.scripts[name] = source

    # -- integrity -------------------------------------------------------------------------

    def finalize(self) -> None:
        """Run cross-record integrity checks; raises with all failures."""
        errors: list[str] = []
        for type_name, schema in self.schemas.items():
            ref_fields = schema.ref_fields()
            if not ref_fields:
                continue
            for record_id, rec in self._records[type_name].items():
                for fdef in ref_fields:
                    target = rec.get(fdef.name)
                    if target is None:
                        continue
                    if fdef.ref_type is None:
                        errors.append(
                            f"{type_name}[{record_id}].{fdef.name}: ref field "
                            "without ref_type in schema"
                        )
                    elif target not in self._records.get(fdef.ref_type, {}):
                        errors.append(
                            f"{type_name}[{record_id}].{fdef.name}: dangling "
                            f"reference to {fdef.ref_type}[{target}]"
                        )
        if errors:
            raise ValidationError("; ".join(errors))
        self._finalized = True

    @property
    def finalized(self) -> bool:
        """Whether integrity checks have passed since the last mutation."""
        return self._finalized

    def _schema(self, type_name: str) -> ContentSchema:
        schema = self.schemas.get(type_name)
        if schema is None:
            raise ContentError(
                f"unknown content type {type_name!r}; "
                f"known: {sorted(self.schemas)}"
            )
        return schema


def _element_to_record(elem: ET.Element, schema: ContentSchema) -> dict[str, Any]:
    """Convert a record element's children into typed field values."""
    data: dict[str, Any] = {}
    for child in elem:
        fdef = schema.fields.get(child.tag)
        text = (child.text or "").strip()
        if fdef is None:
            # Let schema.validate report it as unknown with full context.
            data[child.tag] = text
            continue
        data[child.tag] = _coerce(text, fdef.type_name, child)
    return data


def _coerce(text: str, type_name: str, elem: ET.Element) -> Any:
    if type_name == "int":
        try:
            return int(text)
        except ValueError as exc:
            raise ContentError(f"<{elem.tag}>: {text!r} is not an int") from exc
    if type_name == "float":
        try:
            return float(text)
        except ValueError as exc:
            raise ContentError(f"<{elem.tag}>: {text!r} is not a float") from exc
    if type_name == "bool":
        lowered = text.lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise ContentError(f"<{elem.tag}>: {text!r} is not a bool")
    if type_name == "list":
        return [part.strip() for part in text.split(",") if part.strip()]
    if type_name == "dict":
        out: dict[str, str] = {}
        for pair in text.split(";"):
            if not pair.strip():
                continue
            if "=" not in pair:
                raise ContentError(
                    f"<{elem.tag}>: dict entry {pair!r} missing '='"
                )
            k, v = pair.split("=", 1)
            out[k.strip()] = v.strip()
        return out
    return text
