"""Content-type schemas: validation for designer-authored data.

Game content (items, spells, monsters, quests) is data, and data needs a
schema.  A :class:`ContentSchema` declares typed, constrained fields for
one content type; :meth:`validate` returns a normalized record or raises
:class:`ValidationError` with *every* problem found (designers fix batches
of errors, so first-error-only validators waste iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import ValidationError


@dataclass(frozen=True)
class ContentField:
    """One field of a content type.

    Parameters
    ----------
    name:
        Field name.
    type_name:
        ``int`` | ``float`` | ``str`` | ``bool`` | ``list`` | ``dict`` |
        ``ref`` (a reference to another content record by id).
    required:
        Whether the field must be present (no default).
    default:
        Value used when absent (implies not required).
    choices:
        Closed set of allowed values.
    min_value / max_value:
        Numeric bounds (inclusive).
    ref_type:
        For ``ref`` fields: the content type the id must resolve into.
    """

    name: str
    type_name: str = "str"
    required: bool = False
    default: Any = None
    choices: tuple | None = None
    min_value: float | None = None
    max_value: float | None = None
    ref_type: str | None = None

    _TYPES = {
        "int": int,
        "float": (int, float),
        "str": str,
        "bool": bool,
        "list": list,
        "dict": dict,
        "ref": str,
    }

    def check(self, value: Any, errors: list[str]) -> Any:
        """Validate one value, appending messages to ``errors``."""
        expected = self._TYPES.get(self.type_name)
        if expected is None:
            errors.append(f"{self.name}: unknown field type {self.type_name!r}")
            return value
        if self.type_name in ("int", "float") and isinstance(value, bool):
            errors.append(f"{self.name}: expected {self.type_name}, got bool")
            return value
        if not isinstance(value, expected):
            errors.append(
                f"{self.name}: expected {self.type_name}, "
                f"got {type(value).__name__}"
            )
            return value
        if self.type_name == "float":
            value = float(value)
        if self.choices is not None and value not in self.choices:
            errors.append(
                f"{self.name}: {value!r} not in allowed choices "
                f"{list(self.choices)}"
            )
        if self.min_value is not None and isinstance(value, (int, float)):
            if value < self.min_value:
                errors.append(
                    f"{self.name}: {value} below minimum {self.min_value}"
                )
        if self.max_value is not None and isinstance(value, (int, float)):
            if value > self.max_value:
                errors.append(
                    f"{self.name}: {value} above maximum {self.max_value}"
                )
        return value


class ContentSchema:
    """Schema for one content type (e.g. ``item``, ``monster``, ``spell``)."""

    def __init__(self, type_name: str, fields: Iterable[ContentField]):
        self.type_name = type_name
        self.fields: dict[str, ContentField] = {}
        for f in fields:
            if f.name in self.fields:
                raise ValidationError(
                    f"content type {type_name!r} declares {f.name!r} twice"
                )
            self.fields[f.name] = f

    def validate(self, record: Mapping[str, Any], record_id: str = "?") -> dict[str, Any]:
        """Validate one record, returning the normalized dict.

        Collects all errors before raising.
        """
        errors: list[str] = []
        out: dict[str, Any] = {}
        unknown = set(record) - set(self.fields) - {"id"}
        for name in sorted(unknown):
            errors.append(f"unknown field {name!r}")
        for name, fdef in self.fields.items():
            # A present-but-None optional field means "unset" — this is what
            # re-validating a stored record (expansion patches) produces.
            if record.get(name) is not None:
                out[name] = fdef.check(record[name], errors)
            elif fdef.required:
                errors.append(f"missing required field {name!r}")
            else:
                out[name] = fdef.default
        if errors:
            raise ValidationError(
                f"{self.type_name}[{record_id}]: " + "; ".join(errors)
            )
        return out

    def ref_fields(self) -> list[ContentField]:
        """Fields holding cross-record references."""
        return [f for f in self.fields.values() if f.type_name == "ref"]


def standard_game_schemas() -> dict[str, ContentSchema]:
    """The schema set used by examples and benchmarks.

    Covers the content the tutorial's games revolve around: items,
    monsters (with behavior-tree refs), spells, zones, and quests.
    """
    return {
        "item": ContentSchema(
            "item",
            [
                ContentField("name", "str", required=True),
                ContentField("slot", "str", choices=(
                    "weapon", "head", "chest", "legs", "trinket",
                )),
                ContentField("damage", "int", default=0, min_value=0),
                ContentField("armor", "int", default=0, min_value=0),
                ContentField("value", "int", default=0, min_value=0),
                ContentField("stackable", "bool", default=False),
            ],
        ),
        "monster": ContentSchema(
            "monster",
            [
                ContentField("name", "str", required=True),
                ContentField("hp", "int", required=True, min_value=1),
                ContentField("damage", "int", default=1, min_value=0),
                ContentField("speed", "float", default=1.0, min_value=0),
                ContentField("aggro_radius", "float", default=10.0, min_value=0),
                ContentField("behavior", "dict", default=None),
                ContentField("loot", "list", default=None),
                ContentField("faction", "str", default="hostile"),
            ],
        ),
        "spell": ContentSchema(
            "spell",
            [
                ContentField("name", "str", required=True),
                ContentField("cost", "int", default=0, min_value=0),
                ContentField("damage", "int", default=0),
                ContentField("healing", "int", default=0, min_value=0),
                ContentField("radius", "float", default=0.0, min_value=0),
                ContentField("cooldown", "float", default=0.0, min_value=0),
                ContentField("script", "str", default=None),
            ],
        ),
        "zone": ContentSchema(
            "zone",
            [
                ContentField("name", "str", required=True),
                ContentField("level_min", "int", default=1, min_value=1),
                ContentField("level_max", "int", default=60, min_value=1),
                ContentField("spawns", "list", default=None),
            ],
        ),
        "quest": ContentSchema(
            "quest",
            [
                ContentField("name", "str", required=True),
                ContentField("zone", "ref", ref_type="zone"),
                ContentField("reward_item", "ref", ref_type="item"),
                ContentField("target_monster", "ref", ref_type="monster"),
                ContentField("target_count", "int", default=1, min_value=1),
                ContentField("xp", "int", default=0, min_value=0),
            ],
        ),
    }
