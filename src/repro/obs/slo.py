"""Service-level objectives over per-request latency, with breach dumps.

An :class:`SLObjective` names a latency threshold (in ticks) and a
target fraction of requests that must meet it; the :class:`SLOPlane`
ingests every completed request from the
:class:`~repro.obs.causal.RequestTracker`, maintains a sliding
good/bad window per objective, and computes the *error-budget burn
rate* — bad fraction divided by the budget ``1 − target``.  A burn
rate of 1.0 means the budget is being spent exactly as fast as it
accrues; above the objective's ``burn_threshold`` the objective is
*breached*.

Breaches are latched: the first breach of each objective arms the
watchdog exactly once — it dumps the flight recorder with the
breaching ``trace_id`` in the dump reason (so the offending trace is
preserved for Perfetto) and invokes the optional ``on_breach``
callback.  :meth:`SLOPlane.reset` re-arms an objective after the
operator has looked.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ObsError
from repro.obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import Observability

#: Bucket bounds for the end-to-end latency histogram, in ticks.
LATENCY_BOUNDS_TICKS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
                        32.0, 48.0, 64.0)


@dataclass(frozen=True)
class SLObjective:
    """One latency objective: ``target`` of requests within ``threshold_ticks``.

    ``window`` caps the sliding sample window; ``min_samples`` keeps a
    cold window from breaching on its first bad request;
    ``burn_threshold`` is the burn rate at which the watchdog fires
    (1.0 = spending budget exactly as fast as it accrues).
    """

    name: str
    threshold_ticks: float
    target: float = 0.99
    window: int = 256
    min_samples: int = 16
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ObsError(f"SLO target must be in (0, 1), got {self.target}")
        if self.window < 1 or self.min_samples < 1:
            raise ObsError("SLO window and min_samples must be >= 1")


class SLOPlane:
    """Sliding-window SLO accounting with a latched breach watchdog."""

    def __init__(
        self,
        objectives: list[SLObjective] | tuple[SLObjective, ...],
        obs: "Observability | None" = None,
        on_breach: Callable[[str, str], None] | None = None,
    ):
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ObsError(f"duplicate SLO objective names: {names}")
        self.objectives = tuple(objectives)
        self.obs = obs
        self.on_breach = on_breach
        self._windows: dict[str, deque[bool]] = {
            o.name: deque(maxlen=o.window) for o in self.objectives
        }
        self._breached: dict[str, str] = {}
        self.samples = 0
        self.latency = Histogram("slo.e2e_ticks", {},
                                 bounds=LATENCY_BOUNDS_TICKS)

    def record(self, e2e_ticks: float, trace_id: str = "") -> None:
        """Ingest one completed request's end-to-end latency."""
        self.samples += 1
        self.latency.observe(e2e_ticks)
        for objective in self.objectives:
            window = self._windows[objective.name]
            good = e2e_ticks <= objective.threshold_ticks
            window.append(good)
            if good or objective.name in self._breached:
                continue
            if len(window) < objective.min_samples:
                continue
            if self.burn_rate(objective.name) > objective.burn_threshold:
                self._breach(objective.name, trace_id)

    def _breach(self, name: str, trace_id: str) -> None:
        self._breached[name] = trace_id
        reason = f"slo-breach:{name}:{trace_id or 'unknown'}"
        if self.obs is not None:
            self.obs.flight_dump(reason)
        if self.on_breach is not None:
            self.on_breach(name, trace_id)

    def burn_rate(self, name: str) -> float:
        """Error-budget burn rate for one objective (0.0 when cold)."""
        objective = self._objective(name)
        window = self._windows[name]
        if not window:
            return 0.0
        bad = sum(1 for good in window if not good) / len(window)
        return bad / (1.0 - objective.target)

    def _objective(self, name: str) -> SLObjective:
        for objective in self.objectives:
            if objective.name == name:
                return objective
        raise ObsError(f"unknown SLO objective {name!r}")

    def reset(self, name: str) -> None:
        """Re-arm a breached objective and clear its window."""
        self._objective(name)
        self._breached.pop(name, None)
        self._windows[name].clear()

    @property
    def breached(self) -> dict[str, str]:
        """Latched breaches: objective name → breaching trace_id."""
        return dict(self._breached)

    def state(self) -> dict[str, Any]:
        """The full SLO picture, as streamed on the telemetry channel."""
        objectives: dict[str, Any] = {}
        for objective in self.objectives:
            window = self._windows[objective.name]
            bad = sum(1 for good in window if not good)
            objectives[objective.name] = {
                "threshold_ticks": objective.threshold_ticks,
                "target": objective.target,
                "window": len(window),
                "bad": bad,
                "burn_rate": round(self.burn_rate(objective.name), 4),
                "breached": self._breached.get(objective.name),
            }
        return {
            "samples": self.samples,
            "p50_ticks": round(self.latency.quantile(0.5), 3),
            "p99_ticks": round(self.latency.quantile(0.99), 3),
            "objectives": objectives,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SLOPlane({len(self.objectives)} objectives, "
            f"samples={self.samples}, breached={sorted(self._breached)})"
        )
