"""Chrome ``trace_event`` export: spans/events → about:tracing / Perfetto.

The exporter renders spans as complete events (``ph: "X"``) and instant
events (``ph: "i"``) in the JSON-object flavour of the Trace Event
Format, so a dump loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Timestamps are microseconds (the format's
unit); with the default logical clock one tick spans
:data:`~repro.obs.tracer.TICK_STRIDE_US` fake microseconds, which makes
ticks visually uniform in the timeline.

:func:`validate_chrome_trace` is the shape check CI runs against
exported artifacts, and :func:`spans_from_chrome_trace` is the parse
half of the round-trip tests.

**Lanes and flows.** Spans from forked per-host tracers carry a *lane*
(``"shard:0"``, ``"coord"``, ``"gw"``); the exporter maps each lane to
its own ``tid`` with a ``thread_name`` metadata row, so merged
multi-host traces render as parallel timelines instead of interleaving
on colliding tick-derived timestamps.  :class:`~repro.obs.tracer.FlowPoint`
pairs become flow events (``ph: "s"`` / ``ph: "f"``) sharing an ``id``
— Perfetto draws an arrow from the slice enclosing the start point to
the slice enclosing the finish.  Unbound flow ids (a message still in
flight when the window was dumped) are dropped at export so every
emitted document passes the binding check in
:func:`validate_chrome_trace`.

:func:`render_text` / :func:`parse_text` are the Prometheus-style text
exposition of a metrics registry — scrapeable and diffable snapshots.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.tracer import FlowPoint, Span, TraceEvent

#: pid stamped on every exported event (one simulated process).
TRACE_PID = 1


def _lane_tids(lanes: set[str]) -> dict[str, int]:
    """Stable lane → tid mapping; the default lane is always tid 0."""
    tids = {"": 0}
    for i, lane in enumerate(sorted(lane for lane in lanes if lane)):
        tids[lane] = i + 1
    return tids


def match_flows(
    flows: Iterable[FlowPoint],
) -> tuple[list[FlowPoint], list[str]]:
    """Split flow points into bound pairs and orphan ids.

    Returns ``(bound, orphans)`` where *bound* holds every point whose
    ``flow_id`` has both a start and a finish, and *orphans* lists the
    ids that have only one end — messages still in flight, or whose
    other end fell off the flight-recorder ring.
    """
    by_id: dict[str, set[str]] = {}
    points = list(flows)
    for fp in points:
        by_id.setdefault(fp.flow_id, set()).add(fp.phase)
    complete = {fid for fid, phases in by_id.items() if phases >= {"s", "f"}}
    bound = [fp for fp in points if fp.flow_id in complete]
    orphans = sorted(fid for fid in by_id if fid not in complete)
    return bound, orphans


def to_chrome_trace(
    spans: Iterable[Span],
    events: Iterable[TraceEvent] = (),
    label: str = "repro",
    metadata: Mapping[str, Any] | None = None,
    flows: Iterable[FlowPoint] = (),
) -> dict[str, Any]:
    """Render spans + instant events as a Chrome trace_event document.

    Events are sorted by timestamp with parents before their children
    (longer duration first at equal start), so the JSON reads in
    timeline order.  ``metadata`` lands in the document's ``metadata``
    key — the flight recorder stamps the dump reason there.  Lanes map
    to tids (named via ``thread_name`` metadata when any non-default
    lane appears); flow points whose ids lack a matching other end are
    dropped so the document always passes the binding check.
    """
    spans = list(spans)
    events = list(events)
    bound_flows, _ = match_flows(flows)
    lanes = {s.lane for s in spans}
    lanes.update(e.lane for e in events)
    lanes.update(fp.lane for fp in bound_flows)
    tids = _lane_tids(lanes)
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    if len(tids) > 1:
        for lane, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": lane or "main"},
                }
            )
    for span in sorted(spans, key=lambda s: (s.ts, -s.dur, s.span_id)):
        out.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat or "repro",
                "ts": span.ts,
                "dur": span.dur,
                "pid": TRACE_PID,
                "tid": tids.get(span.lane, 0),
                "args": {
                    "tick": span.tick,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.args,
                },
            }
        )
    for event in sorted(events, key=lambda e: e.ts):
        out.append(
            {
                "ph": "i",
                "s": "g",
                "name": event.name,
                "cat": event.cat or "repro",
                "ts": event.ts,
                "pid": TRACE_PID,
                "tid": tids.get(event.lane, 0),
                "args": {"tick": event.tick, **event.args},
            }
        )
    for fp in sorted(bound_flows, key=lambda f: (f.ts, f.phase)):
        entry: dict[str, Any] = {
            "ph": fp.phase,
            "id": fp.flow_id,
            "name": fp.name or "flow",
            "cat": fp.cat or "net",
            "ts": fp.ts,
            "pid": TRACE_PID,
            "tid": tids.get(fp.lane, 0),
        }
        if fp.phase == "f":
            entry["bp"] = "e"  # bind to the enclosing slice, not the next
        out.append(entry)
    doc: dict[str, Any] = {"traceEvents": out, "displayTimeUnit": "ms"}
    if metadata:
        doc["metadata"] = dict(metadata)
    return doc


def validate_chrome_trace(doc: Any) -> int:
    """Validate a document against the Chrome trace_event shape.

    Checks the JSON-object form: a ``traceEvents`` list whose entries
    carry the fields their phase requires (``X`` needs ``dur``, ``i``
    needs a valid scope, flow events ``s``/``t``/``f`` need an ``id``,
    every event needs ``name``/``ph``/``pid``/``ts``), plus flow
    *binding*: every flow ``id`` must have both a start and a finish.
    Returns the event count; raises ``ValueError`` on the first
    violation.  This is the check CI runs on exported artifacts.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document needs a traceEvents list")
    flow_phases: dict[Any, set[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"traceEvents[{i}] missing phase 'ph'")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}] missing 'name'")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"traceEvents[{i}] missing integer 'pid'")
        if ph == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}] missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}]: complete event needs dur >= 0"
                )
        elif ph == "i":
            if event.get("s") not in ("g", "p", "t"):
                raise ValueError(
                    f"traceEvents[{i}]: instant event needs scope s in g/p/t"
                )
        elif ph in ("s", "t", "f"):
            fid = event.get("id")
            if not isinstance(fid, (str, int)) or fid == "":
                raise ValueError(
                    f"traceEvents[{i}]: flow event needs an 'id'"
                )
            flow_phases.setdefault(fid, set()).add(ph)
        elif ph not in ("B", "E", "C", "b", "e", "n"):
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
    for fid, phases in flow_phases.items():
        if "s" not in phases:
            raise ValueError(f"flow {fid!r} has no start ('s') event")
        if "f" not in phases:
            raise ValueError(f"flow {fid!r} has no finish ('f') event")
    return len(events)


def spans_from_chrome_trace(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The complete (``ph: "X"``) events of a trace document.

    The parse half of the exporter round-trip: returns the raw event
    dicts (name, cat, ts, dur, and ``args`` with tick/span_id/parent_id)
    in document order.
    """
    return [e for e in doc.get("traceEvents", ()) if e.get("ph") == "X"]


def events_from_chrome_trace(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The instant (``ph: "i"``) events of a trace document."""
    return [e for e in doc.get("traceEvents", ()) if e.get("ph") == "i"]


def flows_from_chrome_trace(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The flow (``ph`` in s/t/f) events of a trace document."""
    return [
        e for e in doc.get("traceEvents", ()) if e.get("ph") in ("s", "t", "f")
    ]


# -- Prometheus-style text exposition ---------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Mapping[str, Any], extra: str = "") -> str:
    parts = [
        '{}="{}"'.format(
            _prom_name(str(k)),
            str(labels[k]).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"),
        )
        for k in sorted(labels)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_text(registry: Any) -> str:
    """Render a :class:`~repro.obs.metrics.MetricsRegistry` as Prometheus text.

    The classic exposition format: ``# TYPE`` headers, one sample per
    line, labels escaped, histograms expanded into cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``.  Snapshots are
    scrapeable by anything Prometheus-shaped and diffable line-by-line
    across same-seed runs.  :func:`parse_text` is the inverse.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for cell in registry.cells():
        name = _prom_name(cell.name)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {cell.kind}")
        if cell.kind == "histogram":
            cumulative = 0
            for bound, n in zip(cell.bounds, cell.bucket_counts):
                cumulative += n
                labels = _prom_labels(cell.labels, f'le="{bound}"')
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _prom_labels(cell.labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{labels} {cell.count}")
            lines.append(f"{name}_sum{_prom_labels(cell.labels)} {cell.total}")
            lines.append(
                f"{name}_count{_prom_labels(cell.labels)} {cell.count}"
            )
        else:
            lines.append(f"{name}{_prom_labels(cell.labels)} {cell.value}")
    return "\n".join(lines) + "\n"


def parse_text(text: str) -> dict[str, dict[str, float]]:
    """Parse Prometheus exposition text back into nested dicts.

    Returns ``{metric_name: {label_string: value}}`` where
    ``label_string`` is the rendered ``{k="v",...}`` group (``""`` for
    unlabelled samples).  The verify half of the exposition round-trip
    test; intentionally minimal — handles exactly the subset
    :func:`render_text` emits.
    """
    out: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        if "{" in body:
            name, _, rest = body.partition("{")
            labels = "{" + rest
        else:
            name, labels = body, ""
        out.setdefault(name, {})[labels] = float(value)
    return out
