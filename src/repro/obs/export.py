"""Chrome ``trace_event`` export: spans/events → about:tracing / Perfetto.

The exporter renders spans as complete events (``ph: "X"``) and instant
events (``ph: "i"``) in the JSON-object flavour of the Trace Event
Format, so a dump loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Timestamps are microseconds (the format's
unit); with the default logical clock one tick spans
:data:`~repro.obs.tracer.TICK_STRIDE_US` fake microseconds, which makes
ticks visually uniform in the timeline.

:func:`validate_chrome_trace` is the shape check CI runs against
exported artifacts, and :func:`spans_from_chrome_trace` is the parse
half of the round-trip tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.tracer import Span, TraceEvent

#: pid stamped on every exported event (one simulated process).
TRACE_PID = 1


def to_chrome_trace(
    spans: Iterable[Span],
    events: Iterable[TraceEvent] = (),
    label: str = "repro",
    metadata: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Render spans + instant events as a Chrome trace_event document.

    Events are sorted by timestamp with parents before their children
    (longer duration first at equal start), so the JSON reads in
    timeline order.  ``metadata`` lands in the document's ``metadata``
    key — the flight recorder stamps the dump reason there.
    """
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for span in sorted(spans, key=lambda s: (s.ts, -s.dur, s.span_id)):
        out.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat or "repro",
                "ts": span.ts,
                "dur": span.dur,
                "pid": TRACE_PID,
                "tid": 0,
                "args": {
                    "tick": span.tick,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.args,
                },
            }
        )
    for event in sorted(events, key=lambda e: e.ts):
        out.append(
            {
                "ph": "i",
                "s": "g",
                "name": event.name,
                "cat": event.cat or "repro",
                "ts": event.ts,
                "pid": TRACE_PID,
                "tid": 0,
                "args": {"tick": event.tick, **event.args},
            }
        )
    doc: dict[str, Any] = {"traceEvents": out, "displayTimeUnit": "ms"}
    if metadata:
        doc["metadata"] = dict(metadata)
    return doc


def validate_chrome_trace(doc: Any) -> int:
    """Validate a document against the Chrome trace_event shape.

    Checks the JSON-object form: a ``traceEvents`` list whose entries
    carry the fields their phase requires (``X`` needs ``dur``, ``i``
    needs a valid scope, every event needs ``name``/``ph``/``pid``/
    ``ts``).  Returns the event count; raises ``ValueError`` on the
    first violation.  This is the check CI runs on exported artifacts.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document needs a traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"traceEvents[{i}] missing phase 'ph'")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}] missing 'name'")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"traceEvents[{i}] missing integer 'pid'")
        if ph == "M":
            continue  # metadata events carry no timestamp
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}] missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}]: complete event needs dur >= 0"
                )
        elif ph == "i":
            if event.get("s") not in ("g", "p", "t"):
                raise ValueError(
                    f"traceEvents[{i}]: instant event needs scope s in g/p/t"
                )
        elif ph not in ("B", "E", "C", "b", "e", "n"):
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
    return len(events)


def spans_from_chrome_trace(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The complete (``ph: "X"``) events of a trace document.

    The parse half of the exporter round-trip: returns the raw event
    dicts (name, cat, ts, dur, and ``args`` with tick/span_id/parent_id)
    in document order.
    """
    return [e for e in doc.get("traceEvents", ()) if e.get("ph") == "X"]


def events_from_chrome_trace(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The instant (``ph: "i"``) events of a trace document."""
    return [e for e in doc.get("traceEvents", ()) if e.get("ph") == "i"]
